#!/usr/bin/env python
"""Diff a fresh ``BENCH_perf.json`` against the committed baseline.

Used by the CI ``perf-smoke`` job: the checked-out (committed) record is
the baseline, the record the job just produced is the candidate, and any
*micro*-benchmark whose throughput regressed more than the threshold
(default 30%) fails the job.

The baseline and candidate generally come from different machines
(developer box vs shared CI runner), so raw throughput ratios measure
hardware as much as code.  The check therefore normalizes each
benchmark's candidate/baseline ratio by the **median ratio across all
micro benchmarks**: a uniformly slower or faster machine shifts every
ratio equally and cancels out, while a single benchmark that regressed
relative to its peers stands out exactly as it would on identical
hardware.  (With fewer than three shared micro benchmarks there is no
robust median and raw ratios are used.)

Macro cells (``macro_*``, ``scale_*``) are compared and reported but —
with one exception — never fail the check: their multi-second runs are
sensitive to runner class and co-tenancy beyond what median
normalization corrects, and the micro suite plus the golden metric pins
inside the macro cells already catch both slow-downs in a layer and
fast-but-wrong changes.

The exception is the ``scale_network_size_n4096`` cell: large-N
regressions are exactly what the flat-cost-in-N work defends, and the
micro suite cannot see them (a change that is O(N) per event looks flat
at micro scale).  That cell is therefore gated too, against the same
median machine factor but with its own, looser threshold
(``--macro-threshold``, default 50%) to absorb macro-run noise.

Exit status: 0 when no gated benchmark regressed, 1 otherwise, 2 on
malformed input.

Usage::

    python scripts/check_perf_regression.py BASELINE.json CANDIDATE.json \
        [--threshold 0.30] [--macro-threshold 0.50]
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path

#: Benchmark-name prefixes excluded from the hard regression gate.
MACRO_PREFIXES = ("macro_", "scale_")

#: Macro cells gated anyway (looser threshold): the scale cell CI can
#: afford per run, so large-N per-event regressions fail the job
#: instead of hiding behind info-only reporting.
GATED_MACRO = ("scale_network_size_n4096",)

#: Minimum shared micro benchmarks for a meaningful median ratio.
MIN_SAMPLES_FOR_NORMALIZATION = 3


def load_benchmarks(path: Path) -> dict:
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        raise SystemExit(2)
    benchmarks = payload.get("benchmarks")
    if not isinstance(benchmarks, dict):
        print(f"error: {path} has no 'benchmarks' mapping", file=sys.stderr)
        raise SystemExit(2)
    return benchmarks


def is_macro(name: str) -> bool:
    return name.startswith(MACRO_PREFIXES)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path)
    parser.add_argument("candidate", type=Path)
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="maximum tolerated fractional throughput drop relative to "
             "the suite median (default 0.30)",
    )
    parser.add_argument(
        "--macro-threshold",
        type=float,
        default=0.50,
        help="threshold for the gated macro scale cell(s) "
             f"({', '.join(GATED_MACRO)}; default 0.50)",
    )
    args = parser.parse_args(argv)

    baseline = load_benchmarks(args.baseline)
    candidate = load_benchmarks(args.candidate)

    ratios = {}
    for name in sorted(set(baseline) & set(candidate)):
        base_rate = baseline[name].get("throughput_per_sec")
        cand_rate = candidate[name].get("throughput_per_sec")
        if not base_rate or cand_rate is None:
            continue
        ratios[name] = (base_rate, cand_rate, cand_rate / base_rate)

    micro_ratios = [r for name, (_, _, r) in ratios.items()
                    if not is_macro(name)]
    if len(micro_ratios) >= MIN_SAMPLES_FOR_NORMALIZATION:
        machine_factor = statistics.median(micro_ratios)
        print(f"machine normalization factor (median micro ratio): "
              f"{machine_factor:.3f}")
    else:
        machine_factor = 1.0
        print("too few shared micro benchmarks to normalize; "
              "using raw ratios")

    regressions = []
    rows = []
    for name, (base_rate, cand_rate, ratio) in sorted(ratios.items()):
        normalized = ratio / machine_factor - 1.0
        if not is_macro(name):
            gated, threshold = True, args.threshold
        elif name in GATED_MACRO:
            gated, threshold = True, args.macro_threshold
        else:
            gated, threshold = False, None
        regressed = gated and normalized < -threshold
        rows.append((name, base_rate, cand_rate, normalized, gated, regressed))
        if regressed:
            regressions.append(name)

    missing = sorted(
        name for name in baseline
        if name not in candidate
        and (not is_macro(name) or name in GATED_MACRO)
    )

    width = max((len(r[0]) for r in rows), default=20)
    print(f"{'benchmark':<{width}}  {'baseline/s':>14}  {'candidate/s':>14}"
          f"  {'vs median':>9}  verdict")
    for name, base_rate, cand_rate, normalized, gated, regressed in rows:
        verdict = ("REGRESSED" if regressed
                   else "ok" if gated else "info-only")
        print(f"{name:<{width}}  {base_rate:>14,.0f}  {cand_rate:>14,.0f}"
              f"  {normalized:>+8.1%}  {verdict}")
    for name in missing:
        print(f"{name:<{width}}  missing from candidate record  REGRESSED")

    if regressions or missing:
        print(
            f"\nFAIL: {len(regressions) + len(missing)} gated benchmark(s) "
            f"regressed beyond their threshold (micro {args.threshold:.0%}, "
            f"macro {args.macro_threshold:.0%}) or went missing: "
            + ", ".join(regressions + missing)
        )
        return 1
    print(f"\nOK: no gated benchmark regressed beyond its threshold "
          f"(micro {args.threshold:.0%}, macro {args.macro_threshold:.0%} "
          "of the suite median).")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
