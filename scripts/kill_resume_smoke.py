#!/usr/bin/env python3
"""Kill-resume drill: SIGKILL the macro cell mid-run, resume, compare.

The end-to-end crash test behind ``docs/robustness.md``'s runbook and
the ``kill-resume-smoke`` CI job:

1. run the macro cell uninterrupted and record its summary;
2. start the same cell with auto-checkpointing, wait for the first
   checkpoint file to land, then ``SIGKILL`` the process — no warning,
   no cleanup, exactly what the OOM killer or a pre-empted runner does;
3. resume from the latest checkpoint and finish;
4. assert the resumed summary is **byte-identical** to the
   uninterrupted one.

Exit status 0 means the drill passed.  Any checkpoint bug that loses,
duplicates, or reorders simulation state shows up as a byte diff here.
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import time


def macro_cmd(args, *extra):
    return [
        sys.executable, "-m", "repro", "run", "macro",
        "--scale", args.scale,
        "--nodes", str(args.nodes),
        "--seed", str(args.seed),
        *extra,
    ]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=4096)
    parser.add_argument("--scale", default="small",
                        choices=["tiny", "small", "paper"])
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--every-events", type=int, default=50_000,
        help="auto-checkpoint cadence (events); small enough that a "
             "checkpoint lands well before the run finishes",
    )
    parser.add_argument(
        "--workdir", default="kill-resume-smoke",
        help="where summaries and the checkpoint are written",
    )
    parser.add_argument(
        "--timeout", type=float, default=1800.0,
        help="wall-clock budget for each phase (seconds)",
    )
    args = parser.parse_args()

    os.makedirs(args.workdir, exist_ok=True)
    straight = os.path.join(args.workdir, "straight.json")
    resumed = os.path.join(args.workdir, "resumed.json")
    ckpt = os.path.join(args.workdir, "macro.ckpt")
    if os.path.exists(ckpt):
        os.unlink(ckpt)

    print(f"[1/4] uninterrupted run (n={args.nodes}, "
          f"scale={args.scale}, seed={args.seed})")
    subprocess.run(
        macro_cmd(args, "--summary-json", straight),
        check=True, timeout=args.timeout,
    )

    print(f"[2/4] checkpointed run, SIGKILL after the first snapshot "
          f"(cadence {args.every_events} events)")
    victim = subprocess.Popen(macro_cmd(
        args, "--checkpoint", ckpt,
        "--checkpoint-every-events", str(args.every_events),
    ))
    deadline = time.monotonic() + args.timeout
    while not os.path.exists(ckpt):
        if victim.poll() is not None:
            print("FAIL: run finished before its first checkpoint — "
                  "lower --every-events so the kill lands mid-run",
                  file=sys.stderr)
            return 1
        if time.monotonic() > deadline:
            victim.kill()
            print("FAIL: no checkpoint appeared within the timeout",
                  file=sys.stderr)
            return 1
        time.sleep(0.05)
    os.kill(victim.pid, signal.SIGKILL)
    victim.wait()
    if victim.returncode != -signal.SIGKILL:
        print(f"FAIL: victim exited {victim.returncode}, not SIGKILL",
              file=sys.stderr)
        return 1
    print(f"      killed pid {victim.pid}; checkpoint survives at {ckpt}")

    print("[3/4] resume from the latest checkpoint")
    subprocess.run(
        macro_cmd(args, "--resume", "--checkpoint", ckpt,
                  "--summary-json", resumed),
        check=True, timeout=args.timeout,
    )

    print("[4/4] compare summaries byte for byte")
    with open(straight, "rb") as handle:
        expected = handle.read()
    with open(resumed, "rb") as handle:
        observed = handle.read()
    if expected != observed:
        a = json.loads(expected)
        b = json.loads(observed)
        diff = [k for k in sorted(set(a) | set(b)) if a.get(k) != b.get(k)]
        print(f"FAIL: summaries differ in fields: {diff}", file=sys.stderr)
        return 1
    print(f"PASS: resumed summary is byte-identical "
          f"({len(expected)} bytes)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
