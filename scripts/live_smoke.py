#!/usr/bin/env python3
"""Three-node live cluster drill: serve, join, put, propagate, audit.

The end-to-end proof that the live stack (``repro node``) runs the same
protocol core as the simulator, over real sockets:

1. launch one founding daemon (``repro node serve``) and two joiners
   (``repro node join``) as separate OS processes on localhost;
2. wait until every node reports the same three-member view;
3. ``put`` a replica at node A — the birth routes to the key's
   authority — and ``get`` it from every node: each must return the
   entry, and CUP's first-time update must leave the subscribers with a
   *local* copy (the second get reports ``hit``);
4. ``put`` a refresh and watch the new sequence number propagate to a
   subscriber without it asking again (push, not pull);
5. run the invariant checker's quiescence audit on every node — zero
   violations — then stop all three gracefully.

Exit status 0 means the drill passed.
"""

import argparse
import os
import socket
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
sys.path.insert(0, SRC)

from repro.net.client import NodeClient  # noqa: E402


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def spawn(argv) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "node", *argv],
        env=env, cwd=REPO_ROOT,
    )


def wait_ready(address: str, deadline: float) -> dict:
    last_error = None
    while time.monotonic() < deadline:
        try:
            with NodeClient(address, timeout=2.0) as client:
                return client.info()
        except OSError as exc:
            last_error = exc
            time.sleep(0.1)
    raise TimeoutError(f"node {address} never came up ({last_error})")


def wait_members(addresses, deadline: float) -> None:
    want = set(addresses)
    views = []
    while time.monotonic() < deadline:
        views = []
        try:
            for address in addresses:
                with NodeClient(address, timeout=2.0) as client:
                    views.append(set(client.info()["members"]))
        except OSError:
            time.sleep(0.1)
            continue
        if all(view == want for view in views):
            return
        time.sleep(0.1)
    raise TimeoutError(f"membership never converged to {sorted(want)}: "
                       f"last views {[sorted(v) for v in views]}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--timeout", type=float, default=60.0,
                        help="wall-clock budget for the whole drill")
    parser.add_argument("--lifetime", type=float, default=120.0)
    args = parser.parse_args()
    deadline = time.monotonic() + args.timeout

    ports = [free_port() for _ in range(3)]
    addresses = [f"127.0.0.1:{port}" for port in ports]
    daemons = []
    failures = []
    try:
        print(f"[1/5] launching 3 daemons on {addresses}")
        daemons.append(spawn(["serve", "--port", str(ports[0])]))
        wait_ready(addresses[0], deadline)
        for port, address in zip(ports[1:], addresses[1:]):
            daemons.append(spawn(
                ["join", "--port", str(port), addresses[0]]
            ))
            wait_ready(address, deadline)

        print("[2/5] waiting for a converged 3-member view everywhere")
        wait_members(addresses, deadline)

        print("[3/5] put at node A, get everywhere")
        key = "live-smoke/key"
        with NodeClient(addresses[0]) as client:
            put_reply = client.put(key, "replica-1", address="host-a",
                                   lifetime=args.lifetime)
        if put_reply.get("t") != "ok":
            failures.append(f"put failed: {put_reply}")
        authority = put_reply.get("authority")
        print(f"      authority for {key!r}: {authority}")
        for address in addresses:
            with NodeClient(address) as client:
                reply = client.get(key, timeout=10.0)
            entries = reply.get("entries", [])
            if not reply.get("ok") or not entries:
                failures.append(f"get at {address} failed: {reply}")
                continue
            print(f"      get@{address}: {len(entries)} entry(ies), "
                  f"hit={reply.get('hit')}")

        # CUP's first-time update must have left subscribers a local
        # copy: a repeat get is a hit (no second traversal).
        subscriber = next(a for a in addresses if a != authority)
        with NodeClient(subscriber) as client:
            repeat = client.get(key, timeout=5.0)
        if not repeat.get("hit"):
            failures.append(
                f"repeat get at subscriber {subscriber} was not a local "
                f"hit: {repeat}"
            )

        print("[4/5] refresh the replica; the push must reach a "
              "subscriber unprompted")
        with NodeClient(addresses[0]) as client:
            client.put(key, "replica-1", address="host-a",
                       lifetime=args.lifetime)
        want_sequence = 2
        got = None
        while time.monotonic() < deadline:
            with NodeClient(subscriber) as client:
                reply = client.get(key, timeout=2.0)
            entries = reply.get("entries", [])
            got = max((e["sequence"] for e in entries), default=None)
            if reply.get("hit") and got is not None \
                    and got >= want_sequence:
                break
            time.sleep(0.2)
        else:
            failures.append(
                f"refresh (sequence {want_sequence}) never reached "
                f"subscriber {subscriber} as a local hit; last={got}"
            )
        print(f"      subscriber {subscriber} holds sequence {got} "
              f"as a local hit")

        print("[5/5] quiescence audit on every node, then stop")
        for address in addresses:
            with NodeClient(address) as client:
                audit = client.audit()
            if audit.get("ok") is not True:
                failures.append(
                    f"audit at {address} found violations: "
                    f"{audit.get('violations')}"
                )
            else:
                print(f"      audit@{address}: clean "
                      f"({audit.get('audits_run')} audits)")
        for address in reversed(addresses):
            with NodeClient(address) as client:
                client.stop()
        for daemon in daemons:
            daemon.wait(timeout=15.0)
            if daemon.returncode != 0:
                failures.append(
                    f"daemon pid {daemon.pid} exited {daemon.returncode}"
                )
        daemons.clear()
    finally:
        for daemon in daemons:
            daemon.kill()
            daemon.wait()

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("PASS: 3-node live cluster propagated updates end-to-end "
          "with a clean invariant audit")
    return 0


if __name__ == "__main__":
    sys.exit(main())
