#!/usr/bin/env python3
"""Live cluster crash drill: kill -9, restart warm, verify convergence.

The end-to-end proof of the live stack's crash durability, run against
real processes and real sockets:

1. launch a 4-node localhost cluster — three daemons with a
   ``--state-dir`` (durable) and one stateless joiner (the cold-restart
   control);
2. put a handful of keys, get them everywhere so subscribers hold
   local copies, and record the victim's pre-crash view of one key it
   is *not* the authority for (extra keys are seeded until one also
   avoids the stateless node, whose cold crash forgets its own
   replica directory);
3. open invariant hazard windows on the survivors, then ``kill -9``
   the durable victim and wait for suspicion to evict it from every
   surviving member view;
4. restart the victim from its state dir alone (no seed peers): it
   must rejoin warm — full member view reconverges everywhere, the
   restarted daemon reports ``rejoined`` with restored keys, and a
   repeat get of the pre-crash key is a *local hit* (no network pull);
5. repeat the kill/restart on the stateless node (cold path): it
   rejoins via a seed and serves gets again, proving the drill works
   without ``--state-dir`` too;
6. quiesce (all recovery gaps closed), close the hazard windows, run
   the invariant audit on every node — zero violations — and stop the
   cluster gracefully.

Exit status 0 means the drill passed.  Per-node daemon logs land in
``--workdir`` (kept on failure; CI uploads them as an artifact).
"""

import argparse
import os
import shutil
import socket
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
sys.path.insert(0, SRC)

from repro.net.client import NodeClient  # noqa: E402

KEYS = ["chaos/alpha", "chaos/beta", "chaos/gamma"]
LIFETIME = 600.0


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class Cluster:
    """Process bookkeeping: spawn daemons, log to files, kill hard."""

    def __init__(self, workdir: str):
        self.workdir = workdir
        self.procs = {}  # address -> Popen
        self.logs = {}  # address -> log path

    def spawn(self, address: str, argv) -> subprocess.Popen:
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        log_path = self.logs.setdefault(
            address,
            os.path.join(self.workdir,
                         f"node-{address.replace(':', '-')}.log"),
        )
        log = open(log_path, "ab")
        try:
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro", "node", *argv],
                env=env, cwd=REPO_ROOT, stdout=log, stderr=log,
            )
        finally:
            log.close()
        self.procs[address] = proc
        return proc

    def kill9(self, address: str) -> None:
        proc = self.procs.pop(address)
        proc.kill()  # SIGKILL: no leaving frame, no final snapshot
        proc.wait()

    def reap(self):
        for proc in self.procs.values():
            proc.kill()
            proc.wait()
        self.procs.clear()

    def tails(self, lines: int = 30):
        for address, path in sorted(self.logs.items()):
            print(f"--- last {lines} lines of {path} ---", file=sys.stderr)
            try:
                with open(path, "r", errors="replace") as handle:
                    for line in handle.readlines()[-lines:]:
                        print(f"  {line.rstrip()}", file=sys.stderr)
            except OSError as exc:
                print(f"  (unreadable: {exc})", file=sys.stderr)


def rpc(address: str, call, timeout: float = 10.0):
    with NodeClient(address, timeout=timeout) as client:
        return call(client)


def wait_ready(address: str, deadline: float) -> dict:
    last_error = None
    while time.monotonic() < deadline:
        try:
            return rpc(address, lambda c: c.info(), timeout=2.0)
        except OSError as exc:
            last_error = exc
            time.sleep(0.1)
    raise TimeoutError(f"node {address} never came up ({last_error})")


def wait_members(addresses, want, deadline: float) -> None:
    want = set(want)
    views = []
    while time.monotonic() < deadline:
        views = []
        try:
            for address in addresses:
                info = rpc(address, lambda c: c.info(), timeout=2.0)
                views.append(set(info["members"]))
        except OSError:
            time.sleep(0.1)
            continue
        if all(view == want for view in views):
            return
        time.sleep(0.1)
    raise TimeoutError(
        f"membership never converged to {sorted(want)}: "
        f"last views {[sorted(v) for v in views]}"
    )


def wait_quiesced(addresses, deadline: float) -> None:
    """All recovery gaps closed everywhere (counters reconciled)."""
    last = {}
    while time.monotonic() < deadline:
        last = {}
        try:
            for address in addresses:
                info = rpc(address, lambda c: c.info(), timeout=2.0)
                last[address] = info.get("open_gaps", 0)
        except OSError:
            time.sleep(0.1)
            continue
        if all(gaps == 0 for gaps in last.values()):
            return
        time.sleep(0.2)
    raise TimeoutError(f"recovery gaps never closed: {last}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--timeout", type=float, default=180.0,
                        help="wall-clock budget for the whole drill")
    parser.add_argument("--workdir", default=None,
                        help="directory for per-node logs and state "
                             "dirs (default: a temp dir)")
    parser.add_argument("--keep-workdir", action="store_true",
                        help="keep the workdir even on success")
    args = parser.parse_args()
    deadline = time.monotonic() + args.timeout

    workdir = args.workdir or tempfile.mkdtemp(prefix="cup-chaos-")
    os.makedirs(workdir, exist_ok=True)
    print(f"workdir (logs + state dirs): {workdir}")

    ports = [free_port() for _ in range(4)]
    addresses = [f"127.0.0.1:{port}" for port in ports]
    durable = addresses[:3]  # founder + 2 durable joiners
    cold = addresses[3]  # the stateless control node
    state_dirs = {
        address: os.path.join(workdir, f"state-{port}")
        for address, port in zip(durable, ports[:3])
    }
    tuning = [
        "--keepalive-period", "0.5", "--keepalive-misses", "3",
        "--pfu-timeout", "1.0",
    ]

    def durable_args(address, port):
        return tuning + ["--port", str(port), "--state-dir",
                         state_dirs[address], "--snapshot-interval", "0.5"]

    cluster = Cluster(workdir)
    failures = []
    try:
        print(f"[1/8] launching 4 daemons on {addresses} "
              f"(3 durable, 1 stateless)")
        cluster.spawn(durable[0],
                      ["serve"] + durable_args(durable[0], ports[0]))
        wait_ready(durable[0], deadline)
        for address, port in zip(durable[1:], ports[1:3]):
            cluster.spawn(
                address,
                ["join"] + durable_args(address, port) + [durable[0]],
            )
            wait_ready(address, deadline)
        cluster.spawn(cold, ["join"] + tuning
                      + ["--port", str(ports[3]), durable[0]])
        wait_ready(cold, deadline)
        wait_members(addresses, addresses, deadline)

        print("[2/8] seeding keys and spreading local copies")
        victim = durable[1]
        authorities = {}
        seeded = []

        def seed(key):
            reply = rpc(durable[0],
                        lambda c: c.put(key, f"replica-{key}",
                                        address="origin",
                                        lifetime=LIFETIME))
            if reply.get("t") != "ok":
                failures.append(f"put {key} failed: {reply}")
            authorities[key] = reply.get("authority")
            seeded.append(key)

        def pick(avoid):
            return next(
                (k for k in seeded if authorities.get(k) != avoid), None
            )

        for key in KEYS:
            seed(key)
        # The warm check needs a key the victim is not the authority
        # for, and the cold drill needs one the stateless node is not
        # the authority for (a crashed stateless authority forgets its
        # replica directory, by design).  Seed extras until both exist.
        extra = 0
        while (pick(victim) is None or pick(cold) is None) and extra < 8:
            seed(f"chaos/extra-{extra}")
            extra += 1
        for address in addresses:
            for key in seeded:
                reply = rpc(address,
                            lambda c, k=key: c.get(k, timeout=10.0))
                if not reply.get("ok"):
                    failures.append(f"get {key}@{address} failed: {reply}")
        if failures:
            raise RuntimeError("seeding failed; aborting the drill")

        check_key = pick(victim)
        cold_key = pick(cold)
        if check_key is None or cold_key is None:
            failures.append(
                f"no check key clear of victim {victim} and stateless "
                f"node {cold}: {authorities}"
            )
            raise RuntimeError("cannot pick check keys")
        before = rpc(victim, lambda c: c.get(check_key, timeout=5.0))
        if not before.get("hit"):
            failures.append(
                f"victim {victim} has no local copy of {check_key} "
                f"before the crash: {before}"
            )
        pre_seq = max((e["sequence"] for e in before.get("entries", [])),
                      default=None)
        print(f"      victim={victim} check_key={check_key!r} "
              f"(authority {authorities[check_key]}) "
              f"pre-crash sequence={pre_seq}")
        # Let the write-behind cadence (0.5s) capture the seeded state.
        time.sleep(1.5)

        print("[3/8] opening hazard windows on survivors, then kill -9 "
              f"{victim}")
        survivors = [a for a in addresses if a != victim]
        for address in survivors:
            reply = rpc(address,
                        lambda c: c.hazard(["loss"], duration=120.0))
            if reply.get("t") != "ok":
                failures.append(f"hazard open at {address}: {reply}")
        cluster.kill9(victim)
        wait_members(survivors, survivors, deadline)
        print(f"      survivors evicted {victim}")

        print(f"[4/8] restarting {victim} warm from its state dir "
              "(no seed peers)")
        cluster.spawn(victim,
                      ["serve"] + durable_args(victim, ports[1]))
        info = wait_ready(victim, deadline)
        if not info.get("rejoined"):
            failures.append(
                f"restarted {victim} did not report a warm rejoin: "
                f"{info.get('rejoined')!r}"
            )
        restored = info.get("livenode", {}).get("state_restored_keys", 0)
        if restored < 1:
            failures.append(
                f"restarted {victim} restored {restored} keys"
            )
        wait_members(addresses, addresses, deadline)
        print(f"      member view reconverged; {restored} keys restored")

        print("[5/8] repeat get at the restarted node must be a local "
              "hit at the pre-crash sequence")
        after = rpc(victim, lambda c: c.get(check_key, timeout=5.0))
        post_seq = max((e["sequence"] for e in after.get("entries", [])),
                       default=None)
        if not after.get("ok") or not after.get("hit"):
            failures.append(
                f"get {check_key}@{victim} after warm restart was not "
                f"a local hit: {after}"
            )
        elif pre_seq is not None and (post_seq is None
                                      or post_seq < pre_seq):
            failures.append(
                f"restored sequence regressed: {post_seq} < {pre_seq}"
            )
        else:
            print(f"      local hit at sequence {post_seq}")

        print(f"[6/8] cold drill: kill -9 the stateless node {cold}, "
              "restart via seed")
        cluster.kill9(cold)
        others = [a for a in addresses if a != cold]
        wait_members(others, others, deadline)
        cluster.spawn(cold, ["join"] + tuning
                      + ["--port", str(ports[3]), durable[0]])
        info = wait_ready(cold, deadline)
        if info.get("rejoined"):
            failures.append(
                f"stateless node {cold} claims a warm rejoin: {info}"
            )
        wait_members(addresses, addresses, deadline)
        reply = rpc(cold, lambda c: c.get(cold_key, timeout=10.0))
        if not reply.get("ok"):
            failures.append(
                f"get {cold_key}@{cold} after cold restart failed: "
                f"{reply}"
            )

        print("[7/8] quiescing: waiting for recovery gaps to close, "
              "then closing hazard windows")
        wait_quiesced(addresses, deadline)
        for address in addresses:
            try:
                rpc(address, lambda c: c.hazard([], action="close"))
            except OSError as exc:
                failures.append(f"hazard close at {address}: {exc}")

        print("[8/8] invariant audit everywhere, then graceful stop")
        for address in addresses:
            audit = rpc(address, lambda c: c.audit())
            if audit.get("ok") is not True:
                failures.append(
                    f"audit at {address} found violations: "
                    f"{audit.get('violations')}"
                )
            else:
                print(f"      audit@{address}: clean "
                      f"({audit.get('audits_run')} audits)")
        for address in reversed(addresses):
            rpc(address, lambda c: c.stop())
        for address, proc in list(cluster.procs.items()):
            proc.wait(timeout=15.0)
            if proc.returncode != 0:
                failures.append(
                    f"daemon {address} exited {proc.returncode}"
                )
        cluster.procs.clear()
    except (TimeoutError, RuntimeError, OSError) as exc:
        failures.append(str(exc))
    finally:
        cluster.reap()

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        cluster.tails()
        print(f"logs kept in {workdir}", file=sys.stderr)
        return 1
    print("PASS: kill -9 -> warm restart reconverged with local hits, "
          "cold restart recovered via seed, zero audit violations")
    if not args.keep_workdir and args.workdir is None:
        shutil.rmtree(workdir, ignore_errors=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
