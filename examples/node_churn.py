#!/usr/bin/env python3
"""Node arrivals and departures during operation (§2.9).

The peer-to-peer model assumes continuous membership churn.  This
example runs a 64-node CAN under a steady query workload while nodes
join and leave (some gracefully — handing over their slice of the global
index — and some by failing outright), and shows that:

* queries keep resolving throughout (CUP re-routes around churn);
* graceful departures hand their index entries to the new authorities;
* ungraceful failures lose entries, which replicas re-announce on their
  next refresh — the paper's "subsequent queries will restart update
  propagations".

Run:  python examples/node_churn.py
"""

from repro import CupConfig, CupNetwork
from repro.workload.churn import ChurnSchedule


def main() -> None:
    config = CupConfig(
        num_nodes=64,
        total_keys=8,
        replicas_per_key=2,
        entry_lifetime=100.0,
        query_rate=10.0,
        query_start=200.0,
        query_duration=1000.0,
        drain=200.0,
        seed=5,
    )
    net = CupNetwork(config)
    churn = ChurnSchedule(net.sim, net)

    # Scripted churn: a wave of joins, a graceful wave, then failures.
    for i, at in enumerate((300.0, 380.0, 460.0, 540.0)):
        churn.schedule_join(at, f"late-{i}")
    churn.schedule_leave(650.0, 3, graceful=True)
    churn.schedule_leave(700.0, 17, graceful=True)
    churn.schedule_leave(750.0, 42, graceful=False)   # crash
    churn.schedule_leave(800.0, "late-1", graceful=False)  # crash
    # Plus background Poisson churn for the rest of the run.
    churn.poisson(
        rate=0.01, start=850.0, end=1100.0,
        rng=net.streams.get("churn"),
    )

    snapshot = {}
    net.sim.schedule_at(
        250.0,  # replicas have all announced by now; churn not yet begun
        lambda: snapshot.update(
            before=sum(
                n.authority_index.entry_count() for n in net.nodes.values()
            )
        ),
    )
    summary = net.run()
    entries_before = snapshot["before"]
    entries_after = sum(
        n.authority_index.entry_count() for n in net.nodes.values()
    )

    print("Churn log:")
    for at, event, node_id in churn.log:
        print(f"  t={at:7.1f}s  {event:5s}  {node_id}")

    print()
    print(f"Members: started with 64, ended with {len(net.nodes)}")
    print(f"Authority index entries: {entries_before} before churn, "
          f"{entries_after} at end")
    print(f"(crashed nodes lose entries; replicas re-announce on their "
          f"next refresh)")

    print()
    resolved = summary.local_hits + summary.answers_delivered
    print(f"Queries posted:   {summary.queries_posted}")
    print(f"Queries resolved: {resolved} "
          f"({resolved / summary.queries_posted:.1%})")
    print(f"Messages dropped in flight (departed nodes): "
          f"{net.transport.dropped}")
    print(f"Total cost: {summary.total_cost} hops  "
          f"(miss {summary.miss_cost} + overhead {summary.overhead_cost})")
    print()
    print("CUP absorbed the churn: routing epochs invalidated cached "
          "parents, interest bits were patched, and the PFU timeout "
          "recovered queries whose responses died with a departed node.")


if __name__ == "__main__":
    main()
