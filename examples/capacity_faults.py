#!/usr/bin/env python3
"""Degraded update capacity: the §3.7 fault scenarios, narrated.

A fifth of the nodes periodically lose most of their outgoing update
capacity (the Up-And-Down schedule).  CUP's promise: the subtrees below
degraded nodes fall back to plain expiration-based caching — no errors,
no storms — and recover as soon as capacity returns.

Run:  python examples/capacity_faults.py
"""

from repro import (
    CapacityFaultSchedule,
    CupConfig,
    CupNetwork,
    up_and_down,
)
from repro.metrics.timeseries import TimeSeriesSampler


def run(reduced: float, narrate: bool = False):
    config = CupConfig(
        num_nodes=256,
        total_keys=1,
        entry_lifetime=100.0,
        query_rate=5.0,
        query_start=200.0,
        query_duration=1200.0,
        drain=200.0,
        seed=13,
    )
    net = CupNetwork(config)
    schedule = CapacityFaultSchedule(
        net.sim,
        list(net.nodes),
        net.set_node_capacity,
        fraction=0.2,
        reduced=reduced,
        rng=net.streams.get("faults"),
    )
    up_and_down(
        schedule,
        start=config.query_start,
        end=config.query_end,
        warmup=150.0,
        down_for=300.0,
        stable_for=150.0,
    )
    sampler = TimeSeriesSampler(
        net.sim, 25.0,
        {
            "miss hops": lambda: float(net.metrics.miss_cost),
            "update hops": lambda: float(net.metrics.overhead_cost),
        },
    )
    summary = net.run()
    if narrate:
        print("  Fault timeline:")
        for at, event in schedule.log:
            print(f"    t={at:7.1f}s  {event}")
        print()
        print("  Activity over time (each column = 25 s; darker = more "
              "hops in that window):")
        print(sampler.render(["miss hops", "update hops"], width=56))
    return summary


def main() -> None:
    print("Baseline: standard caching on the same workload...")
    config = CupConfig(
        num_nodes=256, total_keys=1, entry_lifetime=100.0, query_rate=5.0,
        query_start=200.0, query_duration=1200.0, drain=200.0, seed=13,
        mode="standard",
    )
    std = CupNetwork(config).run()

    print("CUP at full capacity...")
    full = run(reduced=1.0)

    print("CUP with 20% of nodes dropping to c=0.25 (Up-And-Down)...\n")
    degraded = run(reduced=0.25, narrate=True)

    print()
    print(f"{'variant':38s}{'miss cost':>10s}{'overhead':>10s}"
          f"{'total':>8s}")
    for label, s in [
        ("standard caching", std),
        ("CUP, full capacity", full),
        ("CUP, Up-And-Down episodes (c=0.25)", degraded),
    ]:
        print(f"{label:38s}{s.miss_cost:>10d}{s.overhead_cost:>10d}"
              f"{s.total_cost:>8d}")

    print()
    lost = degraded.miss_cost - full.miss_cost
    saved = full.overhead_cost - degraded.overhead_cost
    print(f"Degradation is graceful: the episodes cost {lost} extra miss "
          f"hops but also saved {saved} overhead hops —")
    print("subtrees below degraded nodes quietly fell back to standard "
          "caching and re-subscribed on recovery.")


if __name__ == "__main__":
    main()
