#!/usr/bin/env python3
"""Trace capture and replay: paired protocol comparisons.

The paper's evaluation compares protocols on identical synthetic
workloads; this library can also *capture* any run's query stream and
replay it verbatim — into a different protocol, a different policy, or
from a hand-authored TSV trace file (the import path for real-world
traces the paper wished it had, §3.2).

This example captures one CUP run's trace, replays it into standard
caching and into every cut-off policy family, and prints a paired
comparison — every variant sees byte-identical queries.

Run:  python examples/trace_replay.py
"""

import tempfile
from pathlib import Path

from repro import CupConfig, CupNetwork, QueryTrace


def base_config(**overrides):
    config = dict(
        num_nodes=128,
        total_keys=1,
        entry_lifetime=100.0,
        query_rate=3.0,
        query_start=200.0,
        query_duration=1000.0,
        drain=200.0,
        seed=31,
    )
    config.update(overrides)
    return CupConfig(**config)


def replay(trace: QueryTrace, **overrides):
    net = CupNetwork(base_config(**overrides))
    trace.replay_into(net)
    net.sim.run_until(net.config.sim_end)
    return net.metrics.summary()


def main() -> None:
    print("Capturing a CUP run's query stream...")
    source = CupNetwork(base_config())
    trace = QueryTrace.capture(source)
    cup = source.run()
    lo, hi = trace.span()
    print(f"  captured {len(trace)} queries over t=[{lo:.0f}s, {hi:.0f}s]")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "queries.tsv"
        trace.save(path)
        print(f"  saved to {path.name} "
              f"({path.stat().st_size} bytes) and reloaded")
        trace = QueryTrace.load(path)

    print("\nReplaying the identical stream into other configurations...")
    variants = {
        "CUP / second-chance (source run)": cup,
        "standard caching": replay(trace, mode="standard"),
        "CUP / linear alpha=0.25": replay(trace, policy="linear:0.25"),
        "CUP / logarithmic alpha=0.25": replay(trace, policy="log:0.25"),
        "CUP / all-out push": replay(trace, policy="all-out"),
    }

    print()
    print(f"{'variant':36s}{'miss':>8s}{'overhead':>10s}{'total':>8s}"
          f"{'latency':>9s}")
    for label, summary in variants.items():
        print(f"{label:36s}{summary.miss_cost:>8d}"
              f"{summary.overhead_cost:>10d}{summary.total_cost:>8d}"
              f"{summary.miss_latency:>9.2f}")

    std = variants["standard caching"]
    print()
    print("Every variant answered the exact same queries — differences "
          "above are pure protocol economics.")
    print(f"(second-chance saved {std.miss_cost - cup.miss_cost} miss hops "
          f"for {cup.overhead_cost} update hops on this trace)")


if __name__ == "__main__":
    main()
