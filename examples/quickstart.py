#!/usr/bin/env python3
"""Quickstart: CUP versus standard caching on a small CAN.

Builds a 64-node content-addressable network serving one content key
from two replicas, drives it with a Poisson query workload, and compares
full CUP (second-chance cut-off policy) against standard expiration-based
caching on the paper's cost metrics.

Run:  python examples/quickstart.py
"""

from repro import CupConfig, CupNetwork


def main() -> None:
    config = CupConfig(
        num_nodes=64,           # 8x8 CAN grid
        total_keys=1,           # one CUP tree, like the paper's cost model
        replicas_per_key=2,     # two replicas serve the content
        entry_lifetime=100.0,   # index entries live 100 s
        query_rate=2.0,         # aggregate Poisson rate (queries/s)
        query_start=200.0,      # warm-up before the query phase
        query_duration=1000.0,  # ten refresh cycles of querying
        drain=200.0,
        seed=7,
    )

    print("Running full CUP (second-chance cut-off policy)...")
    cup = CupNetwork(config).run()

    print("Running standard caching (same workload, same seeds)...")
    std = CupNetwork(config.variant(mode="standard")).run()

    print()
    print(f"{'':24s}{'CUP':>10s}{'standard':>12s}")
    rows = [
        ("queries posted", cup.queries_posted, std.queries_posted),
        ("answered from local", cup.local_hits, std.local_hits),
        ("misses", cup.misses, std.misses),
        ("miss cost (hops)", cup.miss_cost, std.miss_cost),
        ("update overhead (hops)", cup.overhead_cost, std.overhead_cost),
        ("total cost (hops)", cup.total_cost, std.total_cost),
    ]
    for label, c, s in rows:
        print(f"{label:24s}{c:>10d}{s:>12d}")
    print(f"{'miss latency (hops)':24s}{cup.miss_latency:>10.2f}"
          f"{std.miss_latency:>12.2f}")

    print()
    saved = std.miss_cost - cup.miss_cost
    print(f"CUP saved {saved} miss hops while spending "
          f"{cup.overhead_cost} hops pushing updates:")
    print(f"  -> {cup.saved_miss_ratio(std):.2f} miss hops saved per "
          f"overhead hop invested")
    print(f"  -> {cup.justified_fraction:.0%} of resolved update windows "
          f"were justified by a subsequent query")
    print(f"     (the paper's break-even point is 50%)")


if __name__ == "__main__":
    main()
