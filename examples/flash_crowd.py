#!/usr/bin/env python3
"""Flash crowd: a key becomes suddenly hot.

The paper motivates CUP with exactly this scenario (§2.8, §3.2): "queries
for keys that become suddenly hot not only justify the propagation
overhead, but also enjoy a significant reduction in latency."

This example runs a 256-node CAN with 16 keys under a background Zipf
workload; halfway through, one previously-cold key captures 80% of all
queries for 200 seconds.  It compares CUP and standard caching over the
whole run and inside the flash-crowd window, and shows how query
coalescing protects the authority node from the burst.

Run:  python examples/flash_crowd.py
"""

from repro import CupConfig, CupNetwork, FlashCrowdKeys, ZipfKeys


FLASH_START = 800.0
FLASH_END = 1000.0
HOT_KEY_INDEX = 15  # the coldest Zipf rank becomes the hot key


def build_and_run(mode: str):
    config = CupConfig(
        num_nodes=256,
        total_keys=16,
        replicas_per_key=3,
        entry_lifetime=100.0,
        query_rate=20.0,
        query_start=200.0,
        query_duration=1200.0,
        drain=200.0,
        seed=21,
        mode=mode,
    )
    net = CupNetwork(config)
    base = ZipfKeys(net.keys, s=1.0, rng=net.streams.get("workload-keys"))
    selector = FlashCrowdKeys(
        base,
        hot_key=net.keys[HOT_KEY_INDEX],
        start=FLASH_START,
        end=FLASH_END,
        hot_share=0.8,
        rng=net.streams.get("flash"),
    )
    net.attach_workload(key_selector=selector)

    # Sample the metrics right before and right after the flash window so
    # we can report the burst in isolation.
    window = {}
    net.sim.schedule_at(
        FLASH_START, lambda: window.update(
            start=(net.metrics.misses, net.metrics.miss_cost,
                   net.metrics.queries_posted)
        )
    )
    net.sim.schedule_at(
        FLASH_END + 5.0, lambda: window.update(
            end=(net.metrics.misses, net.metrics.miss_cost,
                 net.metrics.queries_posted)
        )
    )
    summary = net.run()
    in_window = tuple(e - s for s, e in zip(window["start"], window["end"]))
    return summary, in_window


def main() -> None:
    print("Driving flash-crowd workloads (this takes a few seconds)...")
    cup, cup_window = build_and_run("cup")
    std, std_window = build_and_run("standard")

    print()
    print("Whole run:")
    print(f"  CUP      total {cup.total_cost:7d} hops   "
          f"miss latency {cup.miss_latency:5.2f} hops")
    print(f"  standard total {std.total_cost:7d} hops   "
          f"miss latency {std.miss_latency:5.2f} hops")

    cup_m, cup_cost, cup_q = cup_window
    std_m, std_cost, std_q = std_window
    print()
    print(f"Inside the flash window ({FLASH_START:.0f}s-{FLASH_END:.0f}s, "
          f"hot key = 80% of queries):")
    print(f"  CUP      {cup_q:6d} queries  {cup_m:5d} misses  "
          f"{cup_cost:6d} miss hops  ({cup_cost / max(cup_q, 1):.2f}/query)")
    print(f"  standard {std_q:6d} queries  {std_m:5d} misses  "
          f"{std_cost:6d} miss hops  ({std_cost / max(std_q, 1):.2f}/query)")

    print()
    print(f"Query coalescing during the whole run: CUP collapsed "
          f"{cup.coalesced_queries} queries into pending ones;")
    print(f"standard caching forwarded every one of them individually "
          f"({std.coalesced_queries} coalesced).")
    factor = (std_cost / max(std_q, 1)) / max(cup_cost / max(cup_q, 1), 1e-9)
    print(f"\nPer-query miss cost inside the burst: CUP is "
          f"{factor:.1f}x cheaper.")


if __name__ == "__main__":
    main()
