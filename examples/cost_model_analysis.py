#!/usr/bin/env python3
"""The §3.1 cost model, analytically and empirically.

Walks through the paper's economic argument on a real overlay:

1. build the virtual query spanning tree V(A, K) for a key on a 256-node
   CAN;
2. compute, for each depth, the subtree's aggregate Poisson rate Λ and
   the analytical justification probability 1 - e^(-ΛT);
3. find the break-even depth — where pushed updates stop paying for
   themselves — and compare it against the push level the simulator
   actually finds optimal (Figure 3's turning point);
4. compare the analytical justified fraction with the fraction the
   simulator measures.

Run:  python examples/cost_model_analysis.py
"""

from collections import defaultdict

from repro import (
    CupConfig,
    CupNetwork,
    QueryTree,
    justification_probability,
)
from repro.core.policies import AllOutPolicy
from repro.overlay.can import CanOverlay

NUM_NODES = 256
RATE = 0.5           # aggregate queries/second for the key
LIFETIME = 100.0     # refresh window T = entry lifetime
KEY = "k00000"


def analytical_profile():
    overlay = CanOverlay.perfect_grid(NUM_NODES)
    tree = QueryTree.virtual(overlay, KEY)
    per_node_rate = {node: RATE / NUM_NODES for node in tree.nodes}

    print(f"Virtual query spanning tree for {KEY!r}: root "
          f"{tree.root}, {len(tree)} nodes, depth {tree.max_depth()}")
    print()
    print(f"{'depth':>5s} {'nodes':>6s} {'mean subtree Λ':>15s} "
          f"{'P(justified)':>13s}")

    by_depth = defaultdict(list)
    for node in tree.nodes:
        by_depth[tree.depth[node]].append(node)

    break_even_depth = None
    for depth in sorted(by_depth):
        nodes = by_depth[depth]
        rates = [tree.aggregate_rate(n, per_node_rate) for n in nodes]
        mean_rate = sum(rates) / len(rates)
        p = justification_probability(mean_rate, LIFETIME)
        print(f"{depth:>5d} {len(nodes):>6d} {mean_rate:>15.4f} "
              f"{p:>13.2%}")
        if p >= 0.5 and (break_even_depth is None or depth > break_even_depth):
            break_even_depth = depth
    print()
    print(f"Analytical break-even (P >= 50%) holds through depth "
          f"{break_even_depth}: updates pushed deeper than that are "
          f"unlikely to recover their cost.")
    return break_even_depth


def empirical_check(break_even_depth):
    base = CupConfig(
        num_nodes=NUM_NODES, total_keys=1, entry_lifetime=LIFETIME,
        query_rate=RATE, query_start=200.0, query_duration=1000.0,
        drain=200.0, seed=3,
    )
    print()
    print("Simulated total cost by push level (Figure 3 procedure):")
    best_level, best_total = None, None
    for level in (0, 2, 4, 6, 8, 10, 12, 16):
        summary = CupNetwork(
            base.variant(policy=AllOutPolicy(push_level=level))
        ).run()
        marker = ""
        if best_total is None or summary.total_cost < best_total:
            best_level, best_total = level, summary.total_cost
            marker = "  <- best so far"
        print(f"  push level {level:>2d}: total {summary.total_cost:6d} "
              f"hops (miss {summary.miss_cost}, overhead "
              f"{summary.overhead_cost}){marker}")

    print()
    print(f"Simulator's best push level: {best_level} "
          f"(analytical break-even depth: {break_even_depth})")

    summary = CupNetwork(base).run()
    print()
    print(f"Full CUP with second-chance measures a justified-update "
          f"fraction of {summary.justified_fraction:.0%} "
          f"(break-even is 50%) — the adaptive policy keeps propagation "
          f"inside the profitable region without knowing Λ.")


def main() -> None:
    break_even_depth = analytical_profile()
    empirical_check(break_even_depth)


if __name__ == "__main__":
    main()
