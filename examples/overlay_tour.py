#!/usr/bin/env python3
"""A tour of the overlay substrates: CAN geometry and Chord routing.

Renders a small CAN's zone partition as ASCII art while nodes join and
leave, traces greedy routes across the torus, and contrasts them with
Chord's logarithmic finger paths — the two substrates CUP runs on
unchanged (§2.2).

Run:  python examples/overlay_tour.py
"""

from repro import CanOverlay, ChordOverlay, QueryTree


def render_can(overlay: CanOverlay, resolution: int = 32) -> str:
    """ASCII heat-map of zone ownership over the unit square."""
    ids = sorted(overlay.node_ids(), key=str)
    glyphs = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
    glyph_of = {nid: glyphs[i % len(glyphs)] for i, nid in enumerate(ids)}
    rows = []
    for row in range(resolution - 1, -1, -1):
        y = (row + 0.5) / resolution
        line = []
        for col in range(resolution):
            x = (col + 0.5) / resolution
            owner = overlay._owner_of((x, y))
            line.append(glyph_of[owner])
        rows.append("".join(line))
    return "\n".join(rows)


def can_tour() -> None:
    print("=" * 64)
    print("CAN: zones split as nodes join (each glyph = one node's zone)")
    print("=" * 64)
    overlay = CanOverlay(dims=2)
    for i, node in enumerate(["n0", "n1", "n2", "n3", "n4", "n5", "n6"]):
        overlay.join(node)
    print(render_can(overlay, resolution=24))
    print()
    print("Members and their zones:")
    for node_id in sorted(overlay.node_ids()):
        state = overlay.state(node_id)
        neighbors = ", ".join(sorted(map(str, state.neighbors)))
        print(f"  {node_id}: {state.zones[0]}  neighbors: {neighbors}")

    key = "music/track-42.mp3"
    point = overlay.key_point(key)
    authority = overlay.authority(key)
    print(f"\nKey {key!r} hashes to ({point[0]:.3f}, {point[1]:.3f}) "
          f"-> authority {authority}")
    for start in sorted(overlay.node_ids()):
        if start == authority:
            continue
        route = overlay.route(start, key)
        print(f"  greedy route from {start}: {' -> '.join(map(str, route))}")
        break

    victim = "n3"
    print(f"\n{victim} departs; a neighbor takes over its zone:")
    takers = overlay.leave(victim)
    for taker, zone in takers:
        print(f"  {taker} absorbed {zone}")
    print(render_can(overlay, resolution=24))


def chord_tour() -> None:
    print()
    print("=" * 64)
    print("Chord: the same keys, identifier-ring routing")
    print("=" * 64)
    overlay = ChordOverlay.build([f"peer-{i}" for i in range(16)], bits=16)
    ring = sorted(
        (overlay.ring_position(n), n) for n in overlay.node_ids()
    )
    print("Ring (position: node):")
    for position, name in ring:
        print(f"  {position:>6d}: {name}")

    key = "music/track-42.mp3"
    authority = overlay.authority(key)
    print(f"\nKey {key!r} -> position {overlay.key_position(key)} "
          f"-> authority {authority}")
    start = ring[0][1] if ring[0][1] != authority else ring[1][1]
    route = overlay.route(start, key)
    print(f"Finger route from {start} ({len(route) - 1} hops):")
    print("  " + " -> ".join(map(str, route)))


def tree_tour() -> None:
    print()
    print("=" * 64)
    print("The CUP tree both substrates induce (§2.10)")
    print("=" * 64)
    overlay = CanOverlay.perfect_grid(64)
    key = "music/track-42.mp3"
    tree = QueryTree.virtual(overlay, key)
    print(f"Virtual query spanning tree on a 64-node grid: root "
          f"{tree.root}, depth {tree.max_depth()}")
    by_depth = {}
    for node in tree.nodes:
        by_depth.setdefault(tree.depth[node], []).append(node)
    for depth in sorted(by_depth):
        print(f"  depth {depth}: {len(by_depth[depth])} nodes")
    print("\nQueries climb this tree; updates cascade down exactly its "
          "edges — that is CUP.")


def main() -> None:
    can_tour()
    chord_tour()
    tree_tour()


if __name__ == "__main__":
    main()
