"""Tests for the scenario DSL, the built-in library and the runner.

Acceptance-critical: every built-in scenario runs end to end with the
runtime invariant checker attached and reports zero violations; the
scenario abstraction integrates with the parallel executor as a
first-class cell.
"""

import pytest

from repro.experiments.executor import Cell, FaultSpec, cell_key, execute
from repro.scenarios import (
    SCENARIOS,
    CapacityFault,
    ChurnBurst,
    FlashCrowd,
    Partition,
    PopularityDrift,
    Quiet,
    Scenario,
    default_base_config,
    run_scenario,
)
from repro.workload.keyspace import RotatingHotKeys, UniformKeys

import numpy as np


class TestRotatingHotKeys:
    def build(self, share=1.0, period=10.0):
        base = UniformKeys(["cold"], np.random.default_rng(1))
        return RotatingHotKeys(
            base, ["h0", "h1", "h2"], start=100.0, end=160.0,
            period=period, hot_share=share, rng=np.random.default_rng(2),
        )

    def test_rotation_follows_period(self):
        selector = self.build()
        assert selector.hot_key_at(100.0) == "h0"
        assert selector.hot_key_at(111.0) == "h1"
        assert selector.hot_key_at(125.0) == "h2"
        assert selector.hot_key_at(133.0) == "h0"  # wraps around

    def test_outside_window_falls_through(self):
        selector = self.build()
        assert selector.select(50.0) == "cold"
        assert selector.select(200.0) == "cold"
        assert selector.select(105.0) == "h0"

    def test_share_splits_traffic(self):
        selector = self.build(share=0.5)
        picks = [selector.select(101.0) for _ in range(4000)]
        share = sum(p == "h0" for p in picks) / len(picks)
        assert 0.45 <= share <= 0.55

    def test_validation(self):
        base = UniformKeys(["c"], np.random.default_rng(1))
        rng = np.random.default_rng(2)
        with pytest.raises(ValueError, match="hot key"):
            RotatingHotKeys(base, [], 0.0, 10.0, 1.0, 0.5, rng)
        with pytest.raises(ValueError, match="period"):
            RotatingHotKeys(base, ["h"], 0.0, 10.0, 0.0, 0.5, rng)
        with pytest.raises(ValueError, match="hot_share"):
            RotatingHotKeys(base, ["h"], 0.0, 10.0, 1.0, 1.5, rng)
        with pytest.raises(ValueError, match="window"):
            RotatingHotKeys(base, ["h"], 10.0, 5.0, 1.0, 0.5, rng)


class TestPhaseValidation:
    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            Quiet(0.0).validate()

    def test_churn_rate_must_be_positive(self):
        with pytest.raises(ValueError, match="rate"):
            ChurnBurst(10.0, rate=0.0).validate()

    def test_partition_needs_two_groups(self):
        with pytest.raises(ValueError, match="groups"):
            Partition(10.0, groups=1).validate()

    def test_flash_crowd_share_bounds(self):
        with pytest.raises(ValueError, match="share"):
            FlashCrowd(10.0, share=1.5).validate()

    def test_drift_period_positive(self):
        with pytest.raises(ValueError, match="period"):
            PopularityDrift(10.0, period=0.0).validate()

    def test_capacity_bounds(self):
        with pytest.raises(ValueError, match="reduced"):
            CapacityFault(10.0, reduced=-0.1).validate()

    def test_scenario_validates_phases_on_construction(self):
        with pytest.raises(ValueError, match="duration"):
            Scenario("bad", "", phases=(Quiet(-1.0),))

    def test_scenario_needs_phases(self):
        with pytest.raises(ValueError, match="no phases"):
            Scenario("empty", "", phases=())

    def test_duplicate_overrides_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Scenario(
                "dup", "", phases=(Quiet(10.0),),
                overrides=(("seed", 1), ("seed", 2)),
            )


class TestScenarioDerivation:
    def test_total_duration_and_config_window(self):
        scenario = Scenario(
            "win", "", phases=(Quiet(30.0), FlashCrowd(45.0), Quiet(25.0)),
        )
        assert scenario.total_duration == 100.0
        config = scenario.build_config(seed=9)
        assert config.query_duration == 100.0
        assert config.seed == 9

    def test_overrides_apply(self):
        scenario = Scenario(
            "ov", "", phases=(Quiet(10.0),),
            overrides=(("total_keys", 3), ("query_rate", 2.5)),
        )
        config = scenario.build_config()
        assert config.resolved_total_keys() == 3
        assert config.query_rate == 2.5

    def test_hazards_union(self):
        scenario = Scenario(
            "hz", "",
            phases=(Quiet(10.0), ChurnBurst(10.0), CapacityFault(10.0)),
        )
        assert scenario.hazards() == {"churn", "capacity"}

    def test_key_is_stable_and_discriminating(self):
        a = Scenario("x", "", phases=(Quiet(10.0), ChurnBurst(20.0, rate=0.1)))
        b = Scenario("x", "", phases=(Quiet(10.0), ChurnBurst(20.0, rate=0.1)))
        c = Scenario("x", "", phases=(Quiet(10.0), ChurnBurst(20.0, rate=0.2)))
        assert a.key() == b.key()
        assert a.key() != c.key()

    def test_scenarios_are_hashable(self):
        assert len({s for s in SCENARIOS.values()}) == len(SCENARIOS)


class TestBuiltinLibrary:
    def test_at_least_six_builtins(self):
        assert len(SCENARIOS) >= 6

    def test_every_stressor_covered(self):
        covered = {
            type(phase)
            for scenario in SCENARIOS.values()
            for phase in scenario.phases
        }
        assert {
            Quiet, ChurnBurst, Partition, FlashCrowd,
            PopularityDrift, CapacityFault,
        } <= covered

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_builtin_runs_clean_under_invariants(self, name):
        """Acceptance: each built-in scenario, invariant-checked."""
        result = run_scenario(SCENARIOS[name], seed=42)
        assert result.ok, result.checker.report()
        assert result.summary.queries_posted > 0
        assert result.checker.audits_run > 0
        report = result.report()
        assert name in report
        assert "invariants: OK" in report

    def test_partition_scenario_actually_blocks_traffic(self):
        result = run_scenario(SCENARIOS["partition-heal"], seed=42)
        assert result.network.transport.blocked > 0
        assert any("partition cut" in text for _, text in result.events)
        assert any("healed" in text for _, text in result.events)

    def test_churn_scenario_actually_churns(self):
        result = run_scenario(SCENARIOS["churn-storm"], seed=42)
        assert result.checker.membership_events > 0

    def test_capacity_scenario_degrades_and_restores(self):
        result = run_scenario(SCENARIOS["capacity-sag"], seed=42)
        texts = [text for _, text in result.events]
        assert sum("capacity fault" in t for t in texts) == 2
        assert sum("capacity restored" in t for t in texts) == 2

    def test_flash_crowd_concentrates_queries(self):
        scenario = SCENARIOS["flash-crowd"]
        result = run_scenario(scenario, seed=42)
        flash = next(
            p for p in scenario.phases if isinstance(p, FlashCrowd)
        )
        network = result.network
        hot_key = network.keys[flash.hot_key_index]
        # An 85% crowd drags nearly every node into the hot key's
        # propagation tree; cold keys reach far fewer nodes.
        reach = {
            key: sum(1 for node in network.nodes.values()
                     if key in node.cache)
            for key in network.keys
        }
        cold = [count for key, count in reach.items() if key != hot_key]
        assert reach[hot_key] >= len(network.nodes) // 2
        assert reach[hot_key] >= max(cold)

    def test_without_invariants_checker_absent(self):
        result = run_scenario(
            SCENARIOS["steady-state"], seed=1, invariants=False
        )
        assert result.checker is None
        assert not result.ok


class TestDeterminism:
    def test_same_seed_same_summary(self):
        a = run_scenario(SCENARIOS["perfect-storm"], seed=5)
        b = run_scenario(SCENARIOS["perfect-storm"], seed=5)
        assert a.summary == b.summary
        assert a.events == b.events

    def test_invariant_checker_does_not_change_metrics(self):
        checked = run_scenario(SCENARIOS["churn-storm"], seed=6)
        plain = run_scenario(
            SCENARIOS["churn-storm"], seed=6, invariants=False
        )
        assert checked.summary == plain.summary


class TestExecutorIntegration:
    def test_cell_rejects_faults_plus_scenario(self):
        base = default_base_config()
        with pytest.raises(ValueError, match="not both"):
            Cell(
                "x", base,
                faults=FaultSpec("up-and-down", reduced=0.5),
                scenario=SCENARIOS["steady-state"],
            )

    def test_scenario_changes_cell_key(self):
        base = default_base_config()
        plain = Cell("a", base)
        with_scenario = Cell("b", base, scenario=SCENARIOS["steady-state"])
        other_scenario = Cell("c", base, scenario=SCENARIOS["flash-crowd"])
        keys = {cell_key(plain), cell_key(with_scenario),
                cell_key(other_scenario)}
        assert len(keys) == 3

    def test_serial_parallel_and_runner_agree(self):
        base = default_base_config()
        names = ["steady-state", "partition-heal"]
        cells = [
            Cell(name, base, scenario=SCENARIOS[name]) for name in names
        ]
        serial = execute(cells, workers=1, use_cache=False)
        parallel = execute(cells, workers=2, use_cache=False)
        assert serial == parallel
        for name in names:
            checked = run_scenario(SCENARIOS[name], seed=base.seed)
            assert checked.summary == serial[name]
