"""Targeted tests for remaining coverage gaps across modules."""

import pytest

from repro.core.cache import KeyState
from repro.core.policies import CutoffPolicy
from repro.overlay.can import CanOverlay
from repro.sim.engine import Simulator


class TestPolicyBaseDefaults:
    def test_default_new_state_is_none(self):
        class Minimal(CutoffPolicy):
            name = "minimal"

            def should_keep_receiving(self, state, distance):
                return True

        policy = Minimal()
        assert policy.new_state() is None
        policy.observe_update(KeyState("k"))  # default no-op
        assert policy.may_forward(999)
        assert "minimal" in repr(policy)


class TestCanMemoization:
    def test_key_point_is_memoized(self):
        overlay = CanOverlay.perfect_grid(4)
        first = overlay.key_point("k")
        assert overlay.key_point("k") is first

    def test_authority_cache_invalidated_by_churn(self):
        overlay = CanOverlay.perfect_grid(4)
        owner = overlay.authority("somekey")
        overlay.leave(owner)
        assert overlay.authority("somekey") != owner

    def test_perfect_grid_rejects_other_dims(self):
        with pytest.raises(ValueError):
            CanOverlay.perfect_grid(4, dims=3)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            CanOverlay(dims=0)

    def test_add_first_node_twice_rejected(self):
        overlay = CanOverlay()
        overlay.add_first_node("a")
        with pytest.raises(ValueError):
            overlay.add_first_node("b")


class TestCapacityHelpers:
    def test_monotone_rev_helper(self):
        from repro.experiments.capacity import monotone_nonincreasing_rev

        assert monotone_nonincreasing_rev([10, 8, 8, 3])
        assert not monotone_nonincreasing_rev([3, 10])


class TestCliRunAll:
    def test_run_all_tiny(self, capsys):
        from repro.cli import main

        status = main(["run", "all", "--scale", "tiny", "--seed", "7"])
        out = capsys.readouterr().out
        assert status == 0
        for artifact in ("Figure 3", "Figure 4", "Table 1", "Table 2",
                         "Table 3", "Figure 5", "Figure 6", "§3.1"):
            assert artifact in out, f"missing {artifact}"
        assert "FAIL" not in out


class TestSimulatorDrainGuarantees:
    def test_run_until_with_empty_heap_just_advances_clock(self):
        sim = Simulator()
        assert sim.run_until(100.0) == 0
        assert sim.now == 100.0

    def test_events_processed_persists_across_calls(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 2


class TestOverlayKeyDistribution:
    def test_keys_spread_across_authorities(self):
        overlay = CanOverlay.perfect_grid(64)
        owners = {overlay.authority(f"key-{i}") for i in range(256)}
        # 256 uniform keys over 64 zones: expect wide coverage.
        assert len(owners) >= 55
