"""Node-level tests for the §3.6 authority-side mitigation techniques."""

import pytest
from helpers import MicroNet

from repro.core.messages import ReplicaEvent, ReplicaMessage, UpdateType
from repro.core.node import CupNode
from repro.core.policies import AllOutPolicy


def subscribe(net, key="k", lifetime=100.0, replicas=1):
    net.seed_authority(key, lifetime=lifetime, replicas=replicas)
    net.node(3).post_local_query(key)
    net.settle()


class TestRefreshAggregation:
    def make_net(self, window):
        net = MicroNet(policy=AllOutPolicy())
        for node in net.nodes.values():
            node.refresh_aggregation_window = window
        return net

    def test_refreshes_within_window_batch_into_one_update(self):
        net = self.make_net(window=2.0)
        subscribe(net, replicas=3)
        hops_before = net.metrics.update_hops[UpdateType.REFRESH]
        for replica in range(3):
            net.refresh_authority("k", replica=replica)
        net.settle(5.0)
        # One batched refresh per hop of the 3-node chain, not three.
        assert (
            net.metrics.update_hops[UpdateType.REFRESH] == hops_before + 3
        )

    def test_batched_update_carries_all_replicas(self):
        net = self.make_net(window=2.0)
        subscribe(net, replicas=3)
        for replica in range(3):
            net.refresh_authority("k", replica=replica)
        net.settle(5.0)
        state = net.node(3).cache.get("k")
        timestamps = {
            e.replica_id: e.timestamp for e in state.entries.values()
        }
        refresh_time = min(timestamps.values())
        assert len(timestamps) == 3
        assert all(t >= refresh_time for t in timestamps.values())

    def test_refreshes_outside_window_flush_separately(self):
        net = self.make_net(window=1.0)
        subscribe(net, replicas=2)
        hops_before = net.metrics.update_hops[UpdateType.REFRESH]
        net.refresh_authority("k", replica=0)
        net.settle(3.0)  # window closes, batch of one flushes
        net.refresh_authority("k", replica=1)
        net.settle(3.0)
        assert (
            net.metrics.update_hops[UpdateType.REFRESH] == hops_before + 6
        )

    def test_deletes_bypass_aggregation(self):
        net = self.make_net(window=10.0)
        subscribe(net, replicas=1)
        net.authority.receive(
            ReplicaMessage(ReplicaEvent.DEATH, "k", "k/r0", "addr", 100.0),
            None,
        )
        net.settle(1.0)  # well inside the window
        assert net.metrics.update_hops[UpdateType.DELETE] == 3

    def test_latest_version_wins_within_batch(self):
        net = self.make_net(window=5.0)
        subscribe(net, replicas=1)
        net.refresh_authority("k", replica=0)
        net.sim.run_until(net.sim.now + 1.0)
        net.refresh_authority("k", replica=0)  # newer version, same window
        net.settle(10.0)
        state = net.node(3).cache.get("k")
        [entry] = state.entries.values()
        assert entry.sequence == 3  # birth=1, then two refreshes

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            MicroNetWithWindow(-1.0)


def MicroNetWithWindow(window):
    net = MicroNet()
    node = net.node(0)
    return CupNode(
        node_id="x",
        sim=net.sim,
        transport=net.transport,
        overlay=net.overlay,
        policy=net.policy,
        metrics=net.metrics,
        refresh_aggregation_window=window,
    )


class TestRefreshSampling:
    def make_net(self, fraction):
        net = MicroNet(policy=AllOutPolicy())
        for name, node in net.nodes.items():
            node.refresh_sample_fraction = fraction
        return net

    def test_sampling_suppresses_some_refreshes(self):
        net = self.make_net(fraction=0.3)
        subscribe(net)
        for _ in range(40):
            net.refresh_authority("k")
            net.settle(0.2)
        propagated = net.metrics.update_hops[UpdateType.REFRESH] / 3
        assert 4 <= propagated <= 24  # ~12 expected of 40
        assert net.metrics.updates_suppressed > 0

    def test_authority_directory_still_updated_when_suppressed(self):
        net = self.make_net(fraction=0.3)
        subscribe(net)
        for _ in range(10):
            net.refresh_authority("k")
            net.settle(0.2)
        [entry] = net.authority.authority_index.entries("k")
        assert entry.sequence == 11  # every refresh applied locally

    def test_full_fraction_propagates_everything(self):
        net = self.make_net(fraction=1.0)
        subscribe(net)
        net.refresh_authority("k")
        net.settle()
        assert net.metrics.update_hops[UpdateType.REFRESH] == 3

    def test_invalid_fraction_rejected(self):
        net = MicroNet()
        with pytest.raises(ValueError):
            CupNode(
                node_id="x",
                sim=net.sim,
                transport=net.transport,
                overlay=net.overlay,
                policy=net.policy,
                metrics=net.metrics,
                refresh_sample_fraction=0.0,
            )


class TestConfigPlumbing:
    def test_config_carries_options(self):
        from repro.core.protocol import CupConfig, CupNetwork

        config = CupConfig(
            num_nodes=4, total_keys=1, query_rate=1.0,
            refresh_aggregation_window=5.0, refresh_sample_fraction=0.5,
        )
        net = CupNetwork(config)
        node = next(iter(net.nodes.values()))
        assert node.refresh_aggregation_window == 5.0
        assert node.refresh_sample_fraction == 0.5

    def test_config_validation(self):
        from repro.core.protocol import CupConfig

        with pytest.raises(ValueError):
            CupConfig(refresh_aggregation_window=-1.0).validate()
        with pytest.raises(ValueError):
            CupConfig(refresh_sample_fraction=0.0).validate()
