"""Property-based protocol tests: random operation interleavings.

Hypothesis drives random sequences of protocol stimuli (local queries,
replica refreshes/births/deaths, time advancement, capacity changes)
against a line-topology CUP deployment and checks structural invariants
that must hold in *every* reachable state:

* the waiting set is always a subset of the interest set;
* a node never holds local waiters without a pending first update
  (outside the standard-caching mode);
* sequence numbers in any cache never exceed the authority's;
* every query is eventually answered once traffic settles;
* cost accounting identities hold.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import MicroNet

from repro.core.channels import CapacityConfig
from repro.core.policies import AllOutPolicy, SecondChancePolicy

KEYS = ("alpha", "beta")

operations = st.lists(
    st.one_of(
        st.tuples(st.just("query"), st.integers(0, 3), st.sampled_from(KEYS)),
        st.tuples(st.just("refresh"), st.just(0), st.sampled_from(KEYS)),
        st.tuples(st.just("advance"), st.integers(1, 60), st.none()),
        st.tuples(st.just("capacity"), st.integers(0, 3),
                  st.sampled_from((0.0, 0.5, 1.0))),
    ),
    min_size=1,
    max_size=30,
)


def apply_operations(net, ops):
    for op, arg, extra in ops:
        if op == "query":
            net.node(arg).post_local_query(extra)
        elif op == "refresh":
            net.refresh_authority(extra, lifetime=80.0)
        elif op == "advance":
            net.sim.run_until(net.sim.now + float(arg))
        elif op == "capacity":
            net.nodes[f"n{arg}"].set_capacity(
                CapacityConfig(fraction=extra)
            )
    # Restore capacity and let every in-flight message land.
    for node in net.nodes.values():
        node.set_capacity(CapacityConfig())
    net.settle(30.0)


def check_invariants(net):
    now = net.sim.now
    for name, node in net.nodes.items():
        for state in node.cache:
            assert state.waiting <= state.interest, (
                f"waiting !<= interest at {name}:{state.key}"
            )
            if not state.pending_first_update:
                assert state.local_waiters == 0, (
                    f"stranded local waiters at {name}:{state.key}"
                )
            for entry in state.entries.values():
                authority = net.authority.authority_index
                directory = {
                    e.replica_id: e for e in authority.entries(state.key)
                }
                issued = directory.get(entry.replica_id)
                if issued is not None:
                    assert entry.sequence <= issued.sequence, (
                        f"cache ahead of authority at {name}:{state.key}"
                    )
    metrics = net.metrics
    assert metrics.local_hits + metrics.misses == metrics.queries_posted
    assert (
        metrics.first_time_misses + metrics.freshness_misses
        == metrics.misses
    )
    assert metrics.total_cost == metrics.miss_cost + metrics.overhead_cost


@given(operations)
@settings(max_examples=50, deadline=None)
def test_invariants_under_random_interleavings_cup(ops):
    net = MicroNet(length=4, policy=SecondChancePolicy(), pfu_timeout=5.0)
    for key in KEYS:
        net.seed_authority(key, lifetime=80.0)
    apply_operations(net, ops)
    check_invariants(net)


@given(operations)
@settings(max_examples=30, deadline=None)
def test_invariants_under_random_interleavings_all_out(ops):
    net = MicroNet(length=4, policy=AllOutPolicy(), pfu_timeout=5.0)
    for key in KEYS:
        net.seed_authority(key, lifetime=80.0)
    apply_operations(net, ops)
    check_invariants(net)


@given(operations)
@settings(max_examples=30, deadline=None)
def test_invariants_standard_mode(ops):
    net = MicroNet(
        length=4, coalesce=False, persistent_interest=False, pfu_timeout=5.0
    )
    for key in KEYS:
        net.seed_authority(key, lifetime=80.0)
    apply_operations(net, ops)
    metrics = net.metrics
    assert metrics.overhead_cost == 0  # standard caching never propagates
    assert metrics.local_hits + metrics.misses == metrics.queries_posted


@given(operations)
@settings(max_examples=30, deadline=None)
def test_all_queries_eventually_answered(ops):
    net = MicroNet(length=4, policy=SecondChancePolicy(), pfu_timeout=5.0)
    for key in KEYS:
        net.seed_authority(key, lifetime=80.0)
    apply_operations(net, ops)
    # After settling (capacities restored, PFU timeouts passed), every
    # posted query must have been answered: locally or asynchronously.
    net.sim.run_until(net.sim.now + 30.0)
    for node in net.nodes.values():
        for state in node.cache:
            assert state.local_waiters == 0 or state.pending_first_update
    resolved = net.metrics.local_hits + net.metrics.answers_delivered
    assert resolved >= net.metrics.queries_posted
