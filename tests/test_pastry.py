"""Unit and property tests for the Pastry overlay."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.overlay.base import RoutingError
from repro.overlay.pastry import PastryOverlay


def build(n=16, digits=8):
    return PastryOverlay.build([f"n{i}" for i in range(n)], digits=digits)


class TestMembership:
    def test_build(self):
        assert len(set(build(16).node_ids())) == 16

    def test_duplicate_join_rejected(self):
        overlay = build(4)
        with pytest.raises(ValueError):
            overlay.join("n0")

    def test_leave(self):
        overlay = build(8)
        overlay.leave("n3")
        assert "n3" not in set(overlay.node_ids())

    def test_leave_unknown_rejected(self):
        with pytest.raises(ValueError):
            build(4).leave("ghost")

    def test_epoch_bumps(self):
        overlay = build(4)
        before = overlay.epoch
        overlay.join("extra")
        overlay.leave("extra")
        assert overlay.epoch == before + 2

    def test_digits_bounds(self):
        with pytest.raises(ValueError):
            PastryOverlay(digits=1)
        with pytest.raises(ValueError):
            PastryOverlay(digits=17)


class TestPrefixArithmetic:
    def test_shared_prefix_identical(self):
        overlay = PastryOverlay(digits=8)
        assert overlay.shared_prefix(0x12345678, 0x12345678) == 8

    def test_shared_prefix_partial(self):
        overlay = PastryOverlay(digits=8)
        assert overlay.shared_prefix(0x12345678, 0x12340000) == 4

    def test_shared_prefix_none(self):
        overlay = PastryOverlay(digits=8)
        assert overlay.shared_prefix(0x10000000, 0xF0000000) == 0


class TestAuthority:
    def test_authority_is_affinity_maximum(self):
        overlay = build(24)
        key = "content/item"
        owner = overlay.authority(key)
        key_pos = overlay.key_position(key)
        owner_affinity = overlay._affinity(
            overlay.node_position(owner), key_pos
        )
        for node_id in overlay.node_ids():
            affinity = overlay._affinity(
                overlay.node_position(node_id), key_pos
            )
            assert affinity <= owner_affinity

    def test_authority_deterministic(self):
        overlay = build(16)
        assert overlay.authority("k") == overlay.authority("k")

    def test_empty_overlay_raises(self):
        with pytest.raises(RoutingError):
            PastryOverlay().authority("k")

    def test_ownership_moves_on_leave(self):
        overlay = build(16)
        key = "content/item"
        owner = overlay.authority(key)
        overlay.leave(owner)
        assert overlay.authority(key) != owner


class TestRouting:
    def test_routes_reach_authority(self):
        overlay = build(32)
        for i in range(20):
            key = f"key-{i}"
            authority = overlay.authority(key)
            for start in ("n0", "n9", "n31"):
                path = overlay.route(start, key)
                assert path[-1] == authority

    def test_routes_are_simple(self):
        overlay = build(32)
        for i in range(10):
            path = overlay.route("n0", f"key-{i}")
            assert len(path) == len(set(path))

    def test_route_length_logarithmic(self):
        overlay = build(64)
        worst = max(
            overlay.distance(start, f"key-{i}")
            for start in ("n0", "n21", "n63")
            for i in range(25)
        )
        # O(log_16 n) expected; generous bound.
        assert worst <= 4 * math.ceil(math.log(64, 16)) + 4

    def test_prefix_grows_along_route(self):
        overlay = build(64)
        key = "key-7"
        key_pos = overlay.key_position(key)
        path = overlay.route("n0", key)
        affinities = [
            overlay._affinity(overlay.node_position(node), key_pos)
            for node in path
        ]
        assert affinities == sorted(affinities)  # strictly improving

    def test_next_hop_none_only_at_authority(self):
        overlay = build(16)
        key = "k"
        authority = overlay.authority(key)
        assert overlay.next_hop(authority, key) is None
        for node_id in overlay.node_ids():
            if node_id != authority:
                assert overlay.next_hop(node_id, key) is not None

    def test_non_member_raises(self):
        with pytest.raises(RoutingError):
            build(4).next_hop("ghost", "k")

    def test_single_node(self):
        overlay = PastryOverlay.build(["solo"])
        assert overlay.authority("k") == "solo"
        assert overlay.next_hop("solo", "k") is None


class TestNeighbors:
    def test_leaf_set_present(self):
        overlay = build(16)
        members = sorted(
            (overlay.node_position(n), n) for n in overlay.node_ids()
        )
        for i, (_, name) in enumerate(members):
            neighbors = set(overlay.neighbors(name))
            successor = members[(i + 1) % len(members)][1]
            predecessor = members[i - 1][1]
            assert successor in neighbors
            assert predecessor in neighbors

    def test_neighbors_exclude_self(self):
        overlay = build(16)
        for name in overlay.node_ids():
            assert name not in set(overlay.neighbors(name))

    def test_routing_table_covers_first_hops(self):
        overlay = build(32)
        # The common-case first hop (a prefix hop) is a neighbor.
        for i in range(10):
            key = f"key-{i}"
            start = "n0"
            if overlay.authority(key) == start:
                continue
            hop = overlay.next_hop(start, key)
            key_pos = overlay.key_position(key)
            start_prefix = overlay.shared_prefix(
                overlay.node_position(start), key_pos
            )
            hop_prefix = overlay.shared_prefix(
                overlay.node_position(hop), key_pos
            )
            assert hop_prefix >= start_prefix


@given(
    st.sets(st.integers(0, 100_000), min_size=2, max_size=40),
    st.text(alphabet="abcdef", min_size=1, max_size=6),
    st.data(),
)
@settings(max_examples=50, deadline=None)
def test_property_routing_terminates_at_authority(seeds, key, data):
    overlay = PastryOverlay.build([f"m{s}" for s in seeds])
    names = list(overlay.node_ids())
    start = data.draw(st.sampled_from(names))
    path = overlay.route(start, key)
    assert path[-1] == overlay.authority(key)
    assert len(path) <= len(names) + 1


class TestCupIntegration:
    def test_cup_beats_standard_over_pastry(self):
        from repro.core.protocol import CupConfig, CupNetwork

        config = CupConfig(
            num_nodes=64, total_keys=1, query_rate=1.2, seed=11,
            overlay_type="pastry", entry_lifetime=100.0,
            query_start=200.0, query_duration=1000.0, drain=200.0,
        )
        cup = CupNetwork(config).run()
        std = CupNetwork(config.variant(mode="standard")).run()
        assert cup.miss_cost < std.miss_cost
        assert std.overhead_cost == 0
