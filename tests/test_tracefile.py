"""Tests for query trace capture, persistence and replay."""

import pytest

from repro.core.protocol import CupConfig, CupNetwork
from repro.workload.tracefile import QueryTrace


def make_network(**overrides):
    base = dict(
        num_nodes=16, total_keys=2, query_rate=2.0, seed=8,
        entry_lifetime=50.0, query_start=50.0, query_duration=200.0,
        drain=50.0,
    )
    base.update(overrides)
    return CupNetwork(CupConfig(**base))


class TestCapture:
    def test_capture_records_every_posted_query(self):
        net = make_network()
        trace = QueryTrace.capture(net)
        summary = net.run()
        assert len(trace) == summary.queries_posted
        assert trace.keys() <= set(net.keys)

    def test_records_are_time_ordered(self):
        net = make_network()
        trace = QueryTrace.capture(net)
        net.run()
        times = [at for at, _, __ in trace.records]
        assert times == sorted(times)
        lo, hi = trace.span()
        assert 50.0 <= lo and hi < 250.0


class TestReplay:
    def test_replay_reproduces_the_run_exactly(self):
        source = make_network()
        trace = QueryTrace.capture(source)
        source_summary = source.run()

        twin = make_network()  # same config, fresh network
        scheduled = trace.replay_into(twin)
        twin.sim.run_until(twin.config.sim_end)
        twin_summary = twin.metrics.summary()
        assert scheduled == len(trace)
        assert twin_summary == source_summary

    def test_replay_under_different_protocol(self):
        source = make_network()
        trace = QueryTrace.capture(source)
        cup_summary = source.run()

        std = make_network(mode="standard")
        trace.replay_into(std)
        std.sim.run_until(std.config.sim_end)
        std_summary = std.metrics.summary()
        # Identical query stream, different protocol economics.
        assert std_summary.queries_posted == cup_summary.queries_posted
        assert std_summary.overhead_cost == 0

    def test_replay_skips_unknown_nodes(self):
        trace = QueryTrace([(1.0, 999, "k00000"), (2.0, 0, "k00000")])
        net = make_network()
        assert trace.replay_into(net) == 1

    def test_strict_replay_raises_on_unknown_nodes(self):
        trace = QueryTrace([(1.0, 999, "k00000")])
        net = make_network()
        with pytest.raises(ValueError):
            trace.replay_into(net, strict=True)

    def test_replay_tolerates_churn_at_fire_time(self):
        trace = QueryTrace([(60.0, 3, "k00000")])
        net = make_network()
        trace.replay_into(net)
        net.run_until(55.0)
        net.leave_node(3, graceful=True)  # departs before the event fires
        net.run_until(100.0)  # must not crash
        assert net.metrics.queries_posted == 0


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        source = make_network()
        trace = QueryTrace.capture(source)
        source.run()
        path = tmp_path / "queries.tsv"
        trace.save(path)
        loaded = QueryTrace.load(path)
        assert loaded.records == trace.records

    def test_load_skips_comments_and_blanks(self, tmp_path):
        path = tmp_path / "trace.tsv"
        path.write_text(
            "# a hand-authored trace\n"
            "\n"
            "1.500000\t3\tk00000\n"
            "2.000000\tgateway\tk00001\n"
        )
        trace = QueryTrace.load(path)
        assert trace.records == [
            (1.5, 3, "k00000"),
            (2.0, "gateway", "k00001"),
        ]

    def test_load_rejects_malformed_lines(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("1.0\tonly-two-fields\n")
        with pytest.raises(ValueError):
            QueryTrace.load(path)

    def test_span_and_len_empty(self):
        trace = QueryTrace()
        assert len(trace) == 0
        assert trace.span() == (0.0, 0.0)
