"""Unit tests for the authority node's local index directory."""

from repro.core.messages import ReplicaEvent, ReplicaMessage, UpdateType
from repro.replicas.authority import AuthorityIndex


def message(event, key="k", replica="k/r0", lifetime=100.0):
    return ReplicaMessage(event, key, replica, f"addr://{replica}", lifetime)


class TestBirth:
    def test_birth_creates_entry_and_append(self):
        index = AuthorityIndex()
        update = index.apply_replica_message(message(ReplicaEvent.BIRTH), now=0.0)
        assert update.update_type == UpdateType.APPEND
        assert index.owns("k")
        assert len(index.entries("k")) == 1

    def test_duplicate_birth_degenerates_to_refresh(self):
        index = AuthorityIndex()
        index.apply_replica_message(message(ReplicaEvent.BIRTH), now=0.0)
        update = index.apply_replica_message(message(ReplicaEvent.BIRTH), now=1.0)
        assert update.update_type == UpdateType.REFRESH

    def test_sequences_increase(self):
        index = AuthorityIndex()
        first = index.apply_replica_message(message(ReplicaEvent.BIRTH), now=0.0)
        second = index.apply_replica_message(
            message(ReplicaEvent.REFRESH), now=1.0
        )
        assert second.entries[0].sequence > first.entries[0].sequence


class TestRefresh:
    def test_refresh_rebases_lifetime(self):
        index = AuthorityIndex()
        index.apply_replica_message(message(ReplicaEvent.BIRTH), now=0.0)
        index.apply_replica_message(message(ReplicaEvent.REFRESH), now=100.0)
        [entry] = index.fresh_entries("k", now=150.0)
        assert entry.timestamp == 100.0

    def test_refresh_of_unknown_replica_is_append(self):
        index = AuthorityIndex()
        update = index.apply_replica_message(
            message(ReplicaEvent.REFRESH), now=0.0
        )
        assert update.update_type == UpdateType.APPEND


class TestDeath:
    def test_death_removes_and_propagates_delete(self):
        index = AuthorityIndex()
        index.apply_replica_message(message(ReplicaEvent.BIRTH), now=0.0)
        update = index.apply_replica_message(message(ReplicaEvent.DEATH), now=1.0)
        assert update.update_type == UpdateType.DELETE
        assert not index.owns("k")

    def test_death_of_unknown_replica_is_silent(self):
        index = AuthorityIndex()
        assert index.apply_replica_message(message(ReplicaEvent.DEATH), 0.0) is None

    def test_delete_carries_old_entry(self):
        index = AuthorityIndex()
        index.apply_replica_message(message(ReplicaEvent.BIRTH), now=0.0)
        update = index.apply_replica_message(message(ReplicaEvent.DEATH), now=1.0)
        assert update.entries[0].replica_id == "k/r0"


class TestSweep:
    def test_sweep_deletes_silent_replicas(self):
        index = AuthorityIndex()
        index.apply_replica_message(message(ReplicaEvent.BIRTH), now=0.0)
        index.apply_replica_message(
            message(ReplicaEvent.BIRTH, replica="k/r1"), now=0.0
        )
        index.apply_replica_message(
            message(ReplicaEvent.REFRESH, replica="k/r1"), now=90.0
        )
        deletes = index.sweep_expired(now=120.0)  # r0 expired, r1 refreshed
        assert [u.entries[0].replica_id for u in deletes] == ["k/r0"]
        assert [e.replica_id for e in index.entries("k")] == ["k/r1"]

    def test_sweep_empty_index(self):
        assert AuthorityIndex().sweep_expired(0.0) == []


class TestFreshness:
    def test_fresh_entries_respects_expiry(self):
        index = AuthorityIndex()
        index.apply_replica_message(message(ReplicaEvent.BIRTH), now=0.0)
        assert index.fresh_entries("k", now=50.0)
        assert index.fresh_entries("k", now=150.0) == []

    def test_entry_count(self):
        index = AuthorityIndex()
        index.apply_replica_message(message(ReplicaEvent.BIRTH), now=0.0)
        index.apply_replica_message(
            message(ReplicaEvent.BIRTH, key="j", replica="j/r0"), now=0.0
        )
        assert index.entry_count() == 2


class TestHandover:
    def test_extract_removes_slices(self):
        index = AuthorityIndex()
        index.apply_replica_message(message(ReplicaEvent.BIRTH), now=0.0)
        index.apply_replica_message(
            message(ReplicaEvent.BIRTH, key="j", replica="j/r0"), now=0.0
        )
        extracted = index.extract_keys(["k"])
        assert set(extracted) == {"k"}
        assert not index.owns("k")
        assert index.owns("j")

    def test_extract_unknown_keys_ignored(self):
        assert AuthorityIndex().extract_keys(["nope"]) == {}

    def test_absorb_merges_and_dedupes_by_sequence(self):
        donor = AuthorityIndex()
        donor.apply_replica_message(message(ReplicaEvent.BIRTH), now=0.0)
        donor.apply_replica_message(message(ReplicaEvent.REFRESH), now=10.0)

        taker = AuthorityIndex()
        taker.apply_replica_message(message(ReplicaEvent.BIRTH), now=5.0)

        slices = donor.extract_keys(["k"])
        accepted = taker.absorb(slices)
        assert accepted == 1
        [entry] = taker.entries("k")
        assert entry.timestamp == 10.0  # the newer sequence won

    def test_absorb_keeps_newer_local_copy(self):
        donor = AuthorityIndex()
        donor.apply_replica_message(message(ReplicaEvent.BIRTH), now=0.0)

        taker = AuthorityIndex()
        taker.apply_replica_message(message(ReplicaEvent.BIRTH), now=5.0)
        taker.apply_replica_message(message(ReplicaEvent.REFRESH), now=6.0)

        taker.absorb(donor.extract_keys(["k"]))
        [entry] = taker.entries("k")
        assert entry.timestamp == 6.0

    def test_absorb_continues_sequence_numbering(self):
        donor = AuthorityIndex()
        donor.apply_replica_message(message(ReplicaEvent.BIRTH), now=0.0)
        donor.apply_replica_message(message(ReplicaEvent.REFRESH), now=10.0)

        taker = AuthorityIndex()
        taker.absorb(donor.extract_keys(["k"]))
        update = taker.apply_replica_message(
            message(ReplicaEvent.REFRESH), now=20.0
        )
        assert update.entries[0].sequence == 3  # continues past donor's 2
