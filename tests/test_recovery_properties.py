"""Property tests for the recovery state machine and the chaos oracle.

The state machine is fuzzed directly with arbitrary arrival schedules —
any interleaving of loss, duplication and reordering a faulty transport
can produce — and must hold three properties regardless: the watermark
never regresses, no sequence number is applied twice, and retries per
gap episode stay within the configured cap (so NACK traffic is bounded
even when the upstream never answers).

The oracle layer then runs whole networks over a seeded faulty
transport: every invariant holds under the declared hazards, the
quiescence convergence audit passes, and identical seeds reproduce
identical runs bit for bit.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.messages import UpdateMessage, UpdateType
from repro.core.recovery import RecoveryConfig, RecoveryManager
from repro.scenarios import SCENARIOS, with_chaos
from repro.scenarios.runner import run_scenario
from repro.sim.engine import Simulator
from repro.sim.network import Transport


class Inbox:
    def __init__(self):
        self.received = []

    def receive(self, message, sender):
        self.received.append((message, sender))


def make_receiver(config=None):
    sim = Simulator()
    net = Transport(sim, default_delay=0.1)
    net.register("parent", Inbox())
    net.register("child", Inbox())
    pulls = []

    class Counters:
        gaps_detected = 0
        nacks_sent = 0
        recovery_retries = 0
        recovered_updates = 0
        degraded_reads = 0
        duplicates_suppressed = 0

    metrics = Counters()
    manager = RecoveryManager(
        sim, net, "child", metrics, config or RecoveryConfig(),
        request_pull=pulls.append,
    )
    return sim, manager, metrics, pulls


# Arbitrary arrival schedules: sequence numbers from a smallish universe,
# repeated and reordered freely — losses are the numbers that never
# appear, duplicates the ones that appear twice.
schedules = st.lists(
    st.integers(min_value=1, max_value=20), min_size=0, max_size=60
)


class TestStateMachineProperties:
    @given(schedule=schedules)
    @settings(max_examples=100, deadline=None)
    def test_watermark_monotone_and_no_duplicate_apply(self, schedule):
        _, manager, metrics, _ = make_receiver()
        applied = []
        last_watermark = 0
        for seq in schedule:
            if manager.note_received("parent", "k", seq):
                applied.append(seq)
            watermark = manager.watermark("parent", "k")
            assert watermark >= last_watermark
            last_watermark = watermark
        # No sequence number is ever applied twice.
        assert len(applied) == len(set(applied))
        # Everything applied actually arrived, and everything that
        # arrived was either applied once or suppressed as a duplicate.
        assert set(applied) <= set(schedule)
        assert len(applied) + metrics.duplicates_suppressed == len(schedule)
        # Open gaps only ever name sequence numbers that never applied
        # and sit below the watermark.
        for missing in manager.open_gaps().values():
            for seq in missing:
                assert seq not in applied
                assert seq < last_watermark

    @given(schedule=schedules)
    @settings(max_examples=30, deadline=None)
    def test_retries_bounded_and_every_gap_resolves(self, schedule):
        config = RecoveryConfig(max_retries=3, base_timeout=0.5)
        sim, manager, metrics, pulls = make_receiver(config)
        for seq in schedule:
            manager.note_received("parent", "k", seq)
        # Nobody retransmits: every surviving gap must burn through its
        # capped retries and degrade — never retry forever.
        sim.run()
        assert manager.open_gaps() == {}
        assert metrics.recovery_retries <= (
            config.max_retries * max(metrics.gaps_detected, 1)
        )
        assert metrics.degraded_reads == len(pulls)
        if metrics.gaps_detected > metrics.recovered_updates:
            assert pulls  # an unfilled gap must surface, not vanish

    @given(
        links=st.lists(
            st.tuples(
                st.sampled_from(["childA", "childB"]),
                st.sampled_from(["k1", "k2"]),
            ),
            min_size=1, max_size=40,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_stamping_contiguous_per_link(self, links):
        sim = Simulator()
        net = Transport(sim, default_delay=0.1)
        net.register("parent", Inbox())
        manager = RecoveryManager(
            sim, net, "parent", None, RecoveryConfig(buffer_size=8),
            request_pull=lambda key: None,
        )
        seen = {}
        for neighbor, key in links:
            update = UpdateMessage(key, UpdateType.REFRESH, (), "r0",
                                   issued_at=0.0)
            manager.stamp(neighbor, update)
            # Per-link sequences are contiguous from 1, no matter how
            # traffic interleaves across links.
            expected = seen.get((neighbor, key), 0) + 1
            assert update.hop_seq == expected
            seen[(neighbor, key)] = expected
        # Retransmission buffers never exceed the configured bound.
        for buffer in manager._sent.values():
            assert len(buffer) <= 8


class TestChaosOracle:
    @given(
        loss=st.floats(min_value=0.05, max_value=0.2),
        duplicate=st.floats(min_value=0.0, max_value=0.2),
        jitter=st.floats(min_value=0.0, max_value=0.25),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=5, deadline=None)
    def test_invariants_and_convergence_under_random_chaos(
        self, loss, duplicate, jitter, seed
    ):
        scenario = with_chaos(
            SCENARIOS["steady-state"],
            loss=loss, duplicate=duplicate, jitter=jitter,
        )
        result = run_scenario(scenario, seed=seed, convergence=True)
        assert result.ok, result.checker.report()
        assert result.network.transport.lost > 0

    def test_identical_seeds_reproduce_identical_chaos(self):
        scenario = with_chaos(
            SCENARIOS["flash-crowd"], loss=0.2, duplicate=0.1, jitter=0.1
        )
        first = run_scenario(scenario, seed=11, convergence=True)
        second = run_scenario(scenario, seed=11, convergence=True)
        assert first.ok and second.ok
        assert first.summary == second.summary
        for counter in ("lost", "duplicated", "reordered"):
            assert getattr(first.network.transport, counter) == getattr(
                second.network.transport, counter
            ), counter
        assert (
            first.network.metrics.recovery_report()
            == second.network.metrics.recovery_report()
        )

    def test_different_seeds_draw_different_faults(self):
        scenario = with_chaos(
            SCENARIOS["steady-state"], loss=0.2, duplicate=0.1, jitter=0.1
        )
        first = run_scenario(scenario, seed=1, convergence=True)
        second = run_scenario(scenario, seed=2, convergence=True)
        assert first.ok and second.ok
        assert (
            first.network.transport.lost != second.network.transport.lost
            or first.summary != second.summary
        )
