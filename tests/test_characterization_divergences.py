"""Characterization pins for the two divergences documented in the
PR-2 hot-path overhaul (see docs/performance.md, "Two documented
divergences").

Both are deterministic (same seed ⇒ same result) but intentionally not
draw-for-draw replays of the pre-overhaul scalar code.  These tests pin
the *exact current semantics* so future engine work cannot silently
widen either divergence:

1. **Churn runs** — block-buffered node selection starts a fresh buffer
   when churn changes the membership count, discarding the pre-drawn
   remainder of the old block.
2. **Rate-limited cells with in-queue expiry** — the pump picks the
   longest queue by *raw* length (expired updates inflate the backlog
   until they surface at the head), and ``expired_in_queue`` counts
   lazily at surfacing time, not eagerly.
"""

import numpy as np

from repro.core.channels import CapacityConfig, OutgoingUpdateChannels
from repro.core.entry import IndexEntry
from repro.core.messages import UpdateMessage, UpdateType
from repro.core.protocol import CupConfig, CupNetwork
from repro.sim.engine import Simulator
from repro.sim.random import BufferedIntegers
from repro.workload.churn import ChurnSchedule
from repro.workload.generator import uniform_node_selector


class TestChurnRunDivergence:
    """Divergence 1: fresh buffer on membership-count change."""

    def test_stable_membership_matches_scalar_draws(self):
        """No churn ⇒ bit-identical to pre-overhaul scalar selection."""
        members = [f"n{i}" for i in range(7)]
        select = uniform_node_selector(
            lambda: members, np.random.default_rng(42)
        )
        picks = [select(0.0) for _ in range(50)]
        reference_rng = np.random.default_rng(42)
        expected = [
            members[int(reference_rng.integers(len(members)))]
            for _ in range(50)
        ]
        assert picks == expected

    def test_membership_change_starts_a_fresh_buffer(self):
        """The pre-drawn block remainder is DISCARDED at a size change.

        This is the exact churn-run divergence: the selector continues
        from a brand-new block drawn off the shared generator (which
        has already consumed the old block), not from the next scalar
        draw a pre-overhaul run would have made.
        """
        members = [f"n{i}" for i in range(5)]
        select = uniform_node_selector(
            lambda: members, np.random.default_rng(7)
        )
        before = [select(0.0) for _ in range(3)]
        members.append("n5")  # churn: membership count changes
        after = [select(0.0) for _ in range(5)]

        # Reference replay of the documented semantics.
        replay_rng = np.random.default_rng(7)
        old_buffer = BufferedIntegers(replay_rng, 5)
        assert before == [f"n{old_buffer.next()}" for _ in range(3)]
        # ...remainder of old_buffer's block is dropped; a fresh buffer
        # (new bound) continues from the generator's advanced state.
        new_members = members
        new_buffer = BufferedIntegers(replay_rng, 6)
        assert after == [new_members[new_buffer.next()] for _ in range(5)]

        # And the divergence is real: scalar continuation would differ.
        scalar_rng = np.random.default_rng(7)
        for _ in range(3):
            scalar_rng.integers(5)
        scalar_after = [
            new_members[int(scalar_rng.integers(6))] for _ in range(5)
        ]
        assert after != scalar_after

    def test_churn_cell_is_run_twice_deterministic(self):
        """Same seed ⇒ identical summary AND identical event count."""

        def run_once():
            config = CupConfig(
                num_nodes=16, total_keys=4, query_rate=3.0, seed=13,
                entry_lifetime=40.0, query_start=60.0,
                query_duration=120.0, drain=60.0,
            )
            net = CupNetwork(config)
            churn = ChurnSchedule(net.sim, net)
            churn.poisson(
                rate=0.1, start=60.0, end=180.0,
                rng=net.streams.get("churn"),
            )
            summary = net.run()
            return summary, net.sim.events_processed, list(churn.log)

        first = run_once()
        second = run_once()
        assert first[0] == second[0]
        assert first[1] == second[1]
        assert first[2] == second[2]


def entry(key, rid, lifetime, timestamp, seq=1):
    return IndexEntry(
        key=key, replica_id=rid, address=f"addr://{key}/{rid}",
        lifetime=lifetime, timestamp=timestamp, sequence=seq,
    )


def refresh(key, rid, lifetime, timestamp, seq=1):
    return UpdateMessage(
        key=key, update_type=UpdateType.REFRESH,
        entries=(entry(key, rid, lifetime, timestamp, seq),),
        replica_id=rid, issued_at=timestamp,
    )


class TestInQueueExpiryDivergence:
    """Divergence 2: raw-length queue selection + lazy expiry counting."""

    def build(self, rate=1.0):
        sim = Simulator()
        sent = []
        channels = OutgoingUpdateChannels(
            sim, lambda neighbor, update: sent.append(neighbor),
            capacity=CapacityConfig(rate=rate),
        )
        return sim, sent, channels

    def test_pump_serves_longest_raw_queue_including_expired(self):
        """A mostly-dead backlog still wins queue selection.

        Queue A holds 3 updates of which 2 will be expired by pump
        time; queue B holds 2 live ones.  Raw length 3 > 2, so the pump
        serves A first — the pre-overhaul code purged every queue before
        selecting and would have served B (1 vs 2).  The two dead
        updates surface (and are counted) during that same tick.
        """
        sim, sent, channels = self.build(rate=1.0)
        # Two short-lived refreshes + one long-lived one toward A.
        channels.push("A", refresh("k", "r0", lifetime=0.4, timestamp=0.0))
        channels.push("A", refresh("k", "r1", lifetime=0.4, timestamp=0.0))
        channels.push("A", refresh("k", "r2", lifetime=90.0, timestamp=0.0))
        # Two live refreshes toward B.
        channels.push("B", refresh("k", "r3", lifetime=90.0, timestamp=0.0))
        channels.push("B", refresh("k", "r4", lifetime=90.0, timestamp=0.0))
        assert channels.queue_length("A") == 3
        assert channels.expired_in_queue == 0

        sim.run_until(1.0)  # exactly one pump tick at t=1.0 (rate=1)
        assert sent == ["A"]
        # Lazy elimination: the two expired updates were counted only
        # when they surfaced at A's head during this tick.
        assert channels.expired_in_queue == 2
        assert channels.queue_length("A") == 0

    def test_expired_updates_count_lazily_not_eagerly(self):
        """Expiry in queue is invisible until the update surfaces."""
        sim, sent, channels = self.build(rate=0.25)  # tick every 4 s
        channels.push("A", refresh("k", "r0", lifetime=1.0, timestamp=0.0))
        channels.push("A", refresh("k", "r1", lifetime=90.0, timestamp=0.0))
        # Both queued; r0 expires at t=1 but nothing notices yet.
        sim.run_until(2.0)
        assert channels.expired_in_queue == 0
        assert channels.queue_length("A") == 2
        # First tick at t=4: r0 surfaces dead (counted), r1 is sent.
        sim.run_until(4.0)
        assert channels.expired_in_queue == 1
        assert sent == ["A"]
        assert channels.queue_length("A") == 0

    def test_pending_counter_stays_exact_through_lazy_expiry(self):
        sim, sent, channels = self.build(rate=1.0)
        channels.push("A", refresh("k", "r0", lifetime=0.4, timestamp=0.0))
        channels.push("B", refresh("k", "r1", lifetime=90.0, timestamp=0.0))
        sim.run_until(3.0)
        counter, actual = channels.pending_counts()
        assert counter == actual == 0
