"""Tests for metric collection and report formatting."""

import math

import pytest

from repro.core.entry import IndexEntry
from repro.core.messages import ClearBitMessage, QueryMessage, UpdateMessage, UpdateType
from repro.metrics.collector import MetricsCollector
from repro.metrics.report import Table, format_float, format_ratio, render_series


def update(update_type):
    entry = IndexEntry("k", "k/r0", "addr", 100.0, 0.0)
    return UpdateMessage("k", update_type, (entry,), "k/r0", 0.0)


class TestHopAccounting:
    def test_query_hops(self):
        collector = MetricsCollector()
        collector.on_send("a", "b", QueryMessage("k"))
        collector.on_send("b", "c", QueryMessage("k"))
        assert collector.query_hops == 2

    def test_update_hops_by_type(self):
        collector = MetricsCollector()
        for t in UpdateType:
            collector.on_send("a", "b", update(t))
        assert collector.first_time_update_hops == 1
        assert collector.maintenance_update_hops == 3

    def test_clear_bit_hops(self):
        collector = MetricsCollector()
        collector.on_send("a", "b", ClearBitMessage("k"))
        assert collector.clear_bit_hops == 1

    def test_cost_definitions(self):
        collector = MetricsCollector()
        collector.on_send("a", "b", QueryMessage("k"))         # miss: 1
        collector.on_send("b", "a", update(UpdateType.FIRST_TIME))  # miss: 1
        collector.on_send("a", "b", update(UpdateType.REFRESH))     # ovh: 1
        collector.on_send("b", "a", ClearBitMessage("k"))          # ovh: 1
        assert collector.miss_cost == 2
        assert collector.overhead_cost == 2
        assert collector.total_cost == 4

    def test_miss_latency(self):
        collector = MetricsCollector()
        collector.misses = 4
        for _ in range(8):
            collector.on_send("a", "b", QueryMessage("k"))
        assert collector.miss_latency == 2.0

    def test_miss_latency_no_misses(self):
        assert MetricsCollector().miss_latency == 0.0

    def test_justified_fraction(self):
        collector = MetricsCollector()
        collector.justified_updates = 3
        collector.unjustified_updates = 1
        assert collector.justified_fraction == 0.75

    def test_justified_fraction_empty(self):
        assert MetricsCollector().justified_fraction == 0.0


class TestSummary:
    def make_summary(self, **overrides):
        collector = MetricsCollector()
        collector.misses = 10
        for _ in range(30):
            collector.on_send("a", "b", QueryMessage("k"))
        for _ in range(10):
            collector.on_send("a", "b", update(UpdateType.FIRST_TIME))
        for _ in range(5):
            collector.on_send("a", "b", update(UpdateType.REFRESH))
        return collector.summary()

    def test_summary_is_frozen(self):
        summary = self.make_summary()
        with pytest.raises(Exception):
            summary.miss_cost = 0

    def test_summary_consistency(self):
        summary = self.make_summary()
        assert summary.miss_cost == 40
        assert summary.overhead_cost == 5
        assert summary.total_cost == 45
        assert summary.miss_latency == 4.0

    def test_saved_miss_ratio(self):
        cup = self.make_summary()
        baseline_collector = MetricsCollector()
        baseline_collector.misses = 20
        for _ in range(90):
            baseline_collector.on_send("a", "b", QueryMessage("k"))
        baseline = baseline_collector.summary()
        # saved = 90 - 40 = 50; overhead = 5 -> ratio 10.
        assert cup.saved_miss_ratio(baseline) == pytest.approx(10.0)

    def test_saved_miss_ratio_zero_overhead(self):
        collector = MetricsCollector()
        summary = collector.summary()
        richer = self.make_summary()
        assert summary.saved_miss_ratio(richer) == 0.0 or math.isinf(
            summary.saved_miss_ratio(richer)
        )

    def test_cost_and_miss_ratios(self):
        cup = self.make_summary()
        assert cup.cost_ratio(cup) == 1.0
        assert cup.miss_cost_ratio(cup) == 1.0


class TestReportFormatting:
    def test_format_float_integers(self):
        assert format_float(5.0) == "5"
        assert format_float(5.25) == "5.25"

    def test_format_float_specials(self):
        assert format_float(float("inf")) == "inf"
        assert format_float(float("nan")) == "-"

    def test_format_ratio(self):
        assert format_ratio(55905, 55905) == "55905 (1.00)"
        assert format_ratio(15183, 55905) == "15183 (0.27)"

    def test_format_ratio_zero_baseline(self):
        assert format_ratio(10, 0) == "10 (-)"

    def test_table_rendering(self):
        table = Table("Demo", ["a", "bb"])
        table.add_row(1, 2.5)
        table.add_row("x", "y")
        text = table.render()
        assert "Demo" in text
        assert "2.50" in text or "2.5" in text
        lines = text.splitlines()
        assert len(lines) >= 5

    def test_table_arity_checked(self):
        table = Table("Demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_render_series(self):
        text = render_series(
            "Figure", "x", [0, 1], {"total": [10, 20], "miss": [5, None]}
        )
        assert "Figure" in text
        assert "total" in text
        assert "-" in text  # the None cell
