"""Property-based tests (hypothesis) for CAN invariants.

These are the safety net behind the greedy-routing argument: whatever
membership history a CAN goes through, its zones must tile the torus and
greedy routing must terminate at the authority for any key.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.overlay.can import CanOverlay

# Join points with a few decimal places keep examples readable; the
# overlay itself always splits on dyadic boundaries.
points = st.tuples(
    st.floats(min_value=0.0, max_value=0.9990234375, allow_nan=False),
    st.floats(min_value=0.0, max_value=0.9990234375, allow_nan=False),
)


def build_overlay(join_points):
    overlay = CanOverlay()
    overlay.join("n0")
    for i, point in enumerate(join_points, start=1):
        overlay.join(f"n{i}", point=point)
    return overlay


@given(st.lists(points, min_size=0, max_size=24))
@settings(max_examples=60, deadline=None)
def test_zones_always_tile_the_space(join_points):
    overlay = build_overlay(join_points)
    volume = sum(
        zone.volume()
        for node_id in overlay.node_ids()
        for zone in overlay.state(node_id).zones
    )
    assert abs(volume - 1.0) < 1e-9


@given(st.lists(points, min_size=0, max_size=24), points)
@settings(max_examples=60, deadline=None)
def test_every_point_has_exactly_one_owner(join_points, probe):
    overlay = build_overlay(join_points)
    owners = [
        node_id
        for node_id in overlay.node_ids()
        if overlay.state(node_id).contains(probe)
    ]
    assert len(owners) == 1


@given(
    st.lists(points, min_size=1, max_size=20),
    st.text(alphabet="abcdefgh", min_size=1, max_size=8),
)
@settings(max_examples=60, deadline=None)
def test_routing_terminates_at_authority_from_every_node(join_points, key):
    overlay = build_overlay(join_points)
    authority = overlay.authority(key)
    for node_id in overlay.node_ids():
        path = overlay.route(node_id, key)
        assert path[-1] == authority
        assert len(path) == len(set(path)), "route revisited a node"


@given(st.lists(points, min_size=4, max_size=20), st.data())
@settings(max_examples=40, deadline=None)
def test_leave_preserves_partition_and_routing(join_points, data):
    overlay = build_overlay(join_points)
    names = list(overlay.node_ids())
    victim = data.draw(st.sampled_from(names))
    survivors = [n for n in names if n != victim]
    if not survivors:
        return
    overlay.leave(victim)
    volume = sum(
        zone.volume()
        for node_id in overlay.node_ids()
        for zone in overlay.state(node_id).zones
    )
    assert abs(volume - 1.0) < 1e-9
    key = data.draw(st.text(alphabet="xyz", min_size=1, max_size=4))
    start = data.draw(st.sampled_from(survivors))
    assert overlay.route(start, key)[-1] == overlay.authority(key)


@given(st.lists(points, min_size=0, max_size=16))
@settings(max_examples=40, deadline=None)
def test_neighbor_symmetry(join_points):
    overlay = build_overlay(join_points)
    for node_id in overlay.node_ids():
        for neighbor in overlay.neighbors(node_id):
            assert node_id in set(overlay.neighbors(neighbor))
