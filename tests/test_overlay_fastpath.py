"""The overlay routing fast path: memoization, interning, invalidation.

Three layers of guarantees:

* **Equivalence** — the memoized ``next_hop``/``authority`` fast paths
  (precomputed finger tables, bisect-based Pastry affinity, CAN grid
  arithmetic) must return exactly what the unmemoized reference
  implementations return, for random memberships and keys on all three
  overlays.  Hypothesis drives the membership/churn/key space.
* **Churn invalidation** — results served from the (node, key) memo must
  change correctly after ``leave()``/``join()`` mid-run: the epoch bump
  has to drop every stale entry (the churn-divergence hazard documented
  in PR 2).
* **Interning / bounded memos** — each key string is pushed through
  hashlib once; the hash memo and routing memos are bounded.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.overlay.base import InternTable
from repro.overlay.can import CanOverlay
from repro.overlay.chord import ChordOverlay
from repro.overlay.hashing import _hash_to_int, hash_memo_stats, hash_to_int
from repro.overlay.pastry import PastryOverlay

OVERLAY_BUILDERS = {
    "chord": lambda ids: ChordOverlay.build(ids, bits=32),
    "pastry": lambda ids: PastryOverlay.build(ids),
    "can": lambda ids: CanOverlay.perfect_grid(len(ids)),
}


def _assert_routing_matches_reference(overlay, keys):
    """Every (member, key) routing decision equals the reference's."""
    for key in keys:
        assert overlay.authority(key) == overlay.authority_reference(key)
        for node_id in overlay.node_ids():
            assert overlay.next_hop(node_id, key) == overlay.next_hop_reference(
                node_id, key
            ), (type(overlay).__name__, node_id, key)


# ----------------------------------------------------------------------
# Property tests: memoized fast path == unmemoized reference
# ----------------------------------------------------------------------


class TestMemoizedMatchesReference:
    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=48),
        churn_ops=st.lists(
            st.tuples(st.booleans(), st.integers(0, 10_000)), max_size=6
        ),
        key_seeds=st.lists(st.integers(0, 1000), min_size=1, max_size=8),
    )
    def test_chord_property(self, n, churn_ops, key_seeds):
        overlay = ChordOverlay.build([f"n{i}" for i in range(n)], bits=32)
        self._churn(overlay, churn_ops)
        _assert_routing_matches_reference(
            overlay, [f"key-{s}" for s in key_seeds]
        )

    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=48),
        churn_ops=st.lists(
            st.tuples(st.booleans(), st.integers(0, 10_000)), max_size=6
        ),
        key_seeds=st.lists(st.integers(0, 1000), min_size=1, max_size=8),
    )
    def test_pastry_property(self, n, churn_ops, key_seeds):
        overlay = PastryOverlay.build([f"n{i}" for i in range(n)])
        self._churn(overlay, churn_ops)
        _assert_routing_matches_reference(
            overlay, [f"key-{s}" for s in key_seeds]
        )

    @settings(max_examples=25, deadline=None)
    @given(
        k=st.integers(min_value=0, max_value=5),
        churn_ops=st.lists(
            st.tuples(st.booleans(), st.integers(0, 10_000)), max_size=5
        ),
        key_seeds=st.lists(st.integers(0, 1000), min_size=1, max_size=6),
    )
    def test_can_property(self, k, churn_ops, key_seeds):
        overlay = CanOverlay.perfect_grid(2 ** k)
        self._churn(overlay, churn_ops, min_members=2)
        _assert_routing_matches_reference(
            overlay, [f"key-{s}" for s in key_seeds]
        )

    @staticmethod
    def _churn(overlay, ops, min_members=3):
        for is_join, seed in ops:
            members = sorted(overlay.node_ids(), key=str)
            if is_join or len(members) <= min_members:
                node_id = f"joiner-{seed}"
                if node_id in set(members):
                    continue
                try:
                    overlay.join(node_id)
                except ValueError:
                    pass  # position collision: skip, keep the property
            else:
                overlay.leave(members[seed % len(members)])


# ----------------------------------------------------------------------
# Churn invalidation: the stale-cache hazard, per overlay
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(OVERLAY_BUILDERS))
class TestChurnInvalidatesMemo:
    def _build(self, name, n=16):
        return OVERLAY_BUILDERS[name]([f"m{i}" if name != "can" else i
                                       for i in range(n)])

    def test_next_hop_changes_after_leave_mid_run(self, name):
        """A routed-through node departs: memoized hops must not point at
        the corpse, and every decision must re-match the reference."""
        overlay = self._build(name)
        key = "hot-key"
        # Warm the (node, key) memo for every member.
        route_before = overlay.route(next(iter(overlay.node_ids())), key)
        for node_id in list(overlay.node_ids()):
            overlay.next_hop(node_id, key)

        # Remove the first forwarding target on the warmed route (or the
        # authority itself when the start owns the key).
        victim = route_before[1] if len(route_before) > 1 else route_before[0]
        overlay.leave(victim)

        assert victim not in set(overlay.node_ids())
        for node_id in overlay.node_ids():
            hop = overlay.next_hop(node_id, key)
            assert hop != victim, "memo served a departed node"
            assert hop == overlay.next_hop_reference(node_id, key)
        # The full route still terminates, without the departed member.
        survivor = next(iter(overlay.node_ids()))
        assert victim not in overlay.route(survivor, key)

    def test_authority_reassigned_after_owner_leaves(self, name):
        overlay = self._build(name)
        key = "owned-key"
        owner = overlay.authority(key)
        if len(list(overlay.node_ids())) < 2:
            pytest.skip("need a successor to absorb the key")
        overlay.leave(owner)
        new_owner = overlay.authority(key)
        assert new_owner != owner
        assert new_owner == overlay.authority_reference(key)

    def test_join_also_invalidates(self, name):
        """Joins must drop the memo too: a new member can capture keys."""
        overlay = self._build(name)
        keys = [f"key-{i}" for i in range(40)]
        for key in keys:
            overlay.authority(key)
            for node_id in list(overlay.node_ids()):
                overlay.next_hop(node_id, key)
        overlay.join("latecomer" if name != "can" else 999)
        _assert_routing_matches_reference(overlay, keys)


# ----------------------------------------------------------------------
# Interning and bounded memos
# ----------------------------------------------------------------------


class TestInternTable:
    def test_hashes_once(self):
        calls = []

        def fn(value):
            calls.append(value)
            return len(value)

        intern = InternTable(fn)
        assert intern("abc") == 3
        assert intern("abc") == 3
        assert calls == ["abc"]
        assert intern.misses == 1

    def test_bounded(self):
        intern = InternTable(len, max_size=4)
        for i in range(40):
            intern(f"value-{i}")
        assert len(intern) <= 4

    def test_rejects_silly_bound(self):
        with pytest.raises(ValueError):
            InternTable(len, max_size=0)

    def test_chord_key_position_interned(self):
        overlay = ChordOverlay.build(["a", "b", "c"])
        baseline = overlay._key_position.misses
        for _ in range(5):
            overlay.key_position("some-key")
        assert overlay._key_position.misses == baseline + 1

    def test_can_key_point_interned_across_epochs(self):
        overlay = CanOverlay.perfect_grid(4)
        point = overlay.key_point("k")
        overlay.join("newcomer")  # epoch bump must NOT drop the interning
        assert overlay.key_point("k") is point


class TestHashMemo:
    def test_memo_serves_repeat_lookups(self):
        before = _hash_to_int.cache_info()
        value = hash_to_int("memo-probe-key", 32, salt="t")
        hits_before = _hash_to_int.cache_info().hits
        for _ in range(10):
            assert hash_to_int("memo-probe-key", 32, salt="t") == value
        assert _hash_to_int.cache_info().hits >= hits_before + 10
        assert before.maxsize is not None  # bounded, not unbounded

    def test_distinct_parameters_distinct_entries(self):
        assert hash_to_int("k", 32, salt="a") != hash_to_int("k", 32, salt="b")
        assert hash_to_int("k", 16) == hash_to_int("k", 16)
        assert hash_to_int("k", 16) < (1 << 16)

    def test_validation_still_raises(self):
        with pytest.raises(ValueError):
            hash_to_int("k", 0)
        with pytest.raises(TypeError):
            hash_to_int(42)

    def test_stats_shape(self):
        stats = hash_memo_stats()
        assert set(stats) == {"int", "unit_point"}
        assert all("hits" in s for s in stats.values())


# ----------------------------------------------------------------------
# Setup-cost accounting
# ----------------------------------------------------------------------


class TestSetupCostAccounting:
    def test_overlay_accumulates_table_builds(self):
        overlay = ChordOverlay.build([f"n{i}" for i in range(8)])
        builds_after_construction = overlay.table_builds
        overlay.next_hop("n0", "k")  # forces one finger-table build
        assert overlay.table_builds > builds_after_construction
        assert overlay.table_build_seconds >= 0.0

    def test_network_reports_routing_build_cost(self):
        from repro.core.protocol import CupConfig, CupNetwork

        net = CupNetwork(CupConfig(num_nodes=16, query_duration=10.0,
                                   query_start=1.0, drain=1.0))
        report = net.metrics.setup_cost_report()
        assert report["routing_build_seconds"] > 0.0
        assert report["routing_table_builds"] >= 1
        net.run()
        report = net.metrics.setup_cost_report()
        assert report["routing_table_builds"] >= 1
