"""Soak test: every failure mode at once.

One simulated hour on a 128-node CAN with everything the paper throws at
a deployment happening simultaneously:

* node joins, graceful departures and silent crashes (detected by the
  §2.1 keep-alive loop),
* capacity fault episodes on random node subsets (§3.7),
* replica deaths and re-announcements,
* a steady multi-key query workload.

The run must stay internally consistent: queries keep resolving, no
expired entry is ever served, accounting identities hold, and the
network ends with a coherent membership.
"""

import numpy as np
import pytest

from repro.core.channels import CapacityConfig
from repro.core.protocol import CupConfig, CupNetwork
from repro.workload.churn import ChurnSchedule
from repro.workload.faults import CapacityFaultSchedule, up_and_down


@pytest.mark.slow
def test_everything_at_once_soak():
    config = CupConfig(
        num_nodes=128,
        total_keys=8,
        replicas_per_key=3,
        entry_lifetime=120.0,
        query_rate=15.0,
        query_start=300.0,
        query_duration=3000.0,
        drain=300.0,
        seed=77,
        pfu_timeout=20.0,
        failure_sweep_interval=60.0,
    )
    net = CupNetwork(config)
    net.enable_keepalive(period=10.0, miss_threshold=3)

    # --- capacity fault episodes --------------------------------------
    faults = CapacityFaultSchedule(
        net.sim, list(net.nodes), net.set_node_capacity,
        fraction=0.15, reduced=0.25, rng=net.streams.get("faults"),
    )
    up_and_down(
        faults, start=config.query_start, end=config.query_end,
        warmup=200.0, down_for=400.0, stable_for=200.0,
    )

    # --- membership churn (plus silent crashes) ------------------------
    churn = ChurnSchedule(net.sim, net)
    churn.poisson(
        rate=0.01, start=config.query_start, end=config.query_end,
        rng=net.streams.get("churn"),
    )
    crash_rng = np.random.default_rng(99)
    crash_times = [800.0, 1600.0, 2400.0]
    for at in crash_times:
        def crash(rng=crash_rng):
            live = [
                n for n in net.live_node_ids() if isinstance(n, int)
            ]
            if len(live) > 8:
                net.crash_node(live[int(rng.integers(len(live)))])

        net.sim.schedule_at(at, crash)

    # --- replica churn --------------------------------------------------
    def kill_and_replace():
        victims = net.replicas.kill_fraction(
            0.2, net.streams.get("replica-churn"), graceful=False
        )
        for replica in victims:
            net.sim.schedule(150.0, replica.birth)

    net.sim.schedule_at(1200.0, kill_and_replace)

    # --- instrumentation: no expired entry ever answers a query --------
    from repro.core import node as node_module

    violations = []
    original = node_module.CupNode._answer_query

    def checked(self, state, entries, from_neighbor, path, now):
        for entry in entries:
            if not entry.is_fresh(now):
                violations.append((self.node_id, entry))
        return original(self, state, entries, from_neighbor, path, now)

    node_module.CupNode._answer_query = checked
    try:
        summary = net.run()
    finally:
        node_module.CupNode._answer_query = original

    # --- invariants ------------------------------------------------------
    assert violations == [], "expired entries served"
    assert summary.local_hits + summary.misses == summary.queries_posted
    assert (
        summary.first_time_misses + summary.freshness_misses
        == summary.misses
    )
    assert summary.total_cost == summary.miss_cost + summary.overhead_cost

    # Crashes were detected and repaired.
    assert net.failure_detections, "no crash was ever detected"
    assert net._crashed == set(), "a crash went unrepaired"
    for _, __, suspect in net.failure_detections:
        assert suspect not in net.nodes
        assert suspect not in net.overlay

    # Queries kept resolving through the mayhem (in-flight at crash
    # instants may be lost; the bound is deliberately strict anyway).
    resolved = summary.local_hits + summary.answers_delivered
    assert resolved >= summary.queries_posted * 0.995

    # Membership is coherent: overlay and node table agree.
    assert set(net.overlay.node_ids()) == set(net.nodes)
    # The CAN still tiles the torus.
    volume = sum(
        zone.volume()
        for node_id in net.overlay.node_ids()
        for zone in net.overlay.state(node_id).zones
    )
    assert volume == pytest.approx(1.0)

    # Everyone ended back at full capacity; a fresh query from every node
    # resolves.
    for node_id in list(net.nodes):
        net.set_node_capacity(node_id, CapacityConfig())
    before = net.metrics.local_hits + net.metrics.answers_delivered
    posted = 0
    for node_id in list(net.nodes)[:32]:
        net.post_query(node_id, net.keys[0])
        posted += 1
    net.run_until(net.sim.now + 60.0)
    after = net.metrics.local_hits + net.metrics.answers_delivered
    assert after - before >= posted
