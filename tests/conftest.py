"""Pytest configuration: make tests/ importable as a module directory."""

import sys
from pathlib import Path

TESTS_DIR = Path(__file__).parent
if str(TESTS_DIR) not in sys.path:
    sys.path.insert(0, str(TESTS_DIR))
