"""Pytest configuration: make tests/ importable as a module directory,
and keep unit tests hermetic with respect to the persistent run cache
(benchmarks opt in via their own conftest; tests that exercise the cache
explicitly configure a temporary one)."""

import sys
from pathlib import Path

import pytest

TESTS_DIR = Path(__file__).parent
if str(TESTS_DIR) not in sys.path:
    sys.path.insert(0, str(TESTS_DIR))


@pytest.fixture(autouse=True)
def _no_disk_run_cache():
    from repro.experiments import runcache

    saved = runcache.snapshot()
    runcache.configure(enabled=False)
    yield
    runcache.restore(saved)
