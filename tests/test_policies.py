"""Unit tests for the cut-off policies (§3.4)."""

import pytest

from repro.core.cache import KeyState
from repro.core.policies import (
    AllOutPolicy,
    LinearPolicy,
    LogarithmicPolicy,
    LogBasedPolicy,
    SecondChancePolicy,
    make_policy,
)


def state_with_popularity(popularity):
    state = KeyState("k")
    state.popularity = popularity
    return state


class TestAllOut:
    def test_always_keeps_receiving(self):
        policy = AllOutPolicy()
        assert policy.should_keep_receiving(state_with_popularity(0), 30)

    def test_unbounded_forwarding(self):
        assert AllOutPolicy().may_forward(10_000)

    def test_push_level_gates_forwarding(self):
        policy = AllOutPolicy(push_level=5)
        # A node at distance D forwards to children at D+1.
        assert policy.may_forward(4)
        assert not policy.may_forward(5)

    def test_push_level_zero_squelches_at_root(self):
        assert not AllOutPolicy(push_level=0).may_forward(0)

    def test_needs_distance_only_with_level(self):
        assert not AllOutPolicy().needs_distance
        assert AllOutPolicy(push_level=3).needs_distance

    def test_negative_level_rejected(self):
        with pytest.raises(ValueError):
            AllOutPolicy(push_level=-1)


class TestLinear:
    def test_keep_iff_popularity_at_least_alpha_distance(self):
        policy = LinearPolicy(alpha=0.5)
        assert policy.should_keep_receiving(state_with_popularity(5), 10)
        assert not policy.should_keep_receiving(state_with_popularity(4), 10)

    def test_distance_one_needs_alpha_queries(self):
        policy = LinearPolicy(alpha=0.25)
        assert policy.should_keep_receiving(state_with_popularity(1), 1)
        assert not policy.should_keep_receiving(state_with_popularity(0), 1)

    def test_needs_distance(self):
        assert LinearPolicy(alpha=0.1).needs_distance

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            LinearPolicy(alpha=0.0)


class TestLogarithmic:
    def test_threshold_grows_with_log_distance(self):
        policy = LogarithmicPolicy(alpha=2.0)
        # lg(8) = 3 -> threshold 6.
        assert policy.should_keep_receiving(state_with_popularity(6), 8)
        assert not policy.should_keep_receiving(state_with_popularity(5), 8)

    def test_distance_one_always_keeps(self):
        policy = LogarithmicPolicy(alpha=5.0)
        assert policy.should_keep_receiving(state_with_popularity(0), 1)

    def test_more_lenient_than_linear_far_away(self):
        linear = LinearPolicy(alpha=0.5)
        logarithmic = LogarithmicPolicy(alpha=0.5)
        state = state_with_popularity(3)
        assert not linear.should_keep_receiving(state, 20)
        assert logarithmic.should_keep_receiving(state, 20)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            LogarithmicPolicy(alpha=-1.0)


def deliver_update(policy, state):
    """Simulate one cut-off-relevant update arrival."""
    policy.observe_update(state)
    keep = policy.should_keep_receiving(state, distance=5)
    state.popularity = 0
    return keep


class TestSecondChance:
    def test_first_empty_interval_gets_second_chance(self):
        policy = SecondChancePolicy()
        state = state_with_popularity(0)
        assert deliver_update(policy, state)  # strike 1: keep

    def test_second_empty_interval_cuts(self):
        policy = SecondChancePolicy()
        state = state_with_popularity(0)
        deliver_update(policy, state)
        assert not deliver_update(policy, state)  # strike 2: cut

    def test_query_resets_strikes(self):
        policy = SecondChancePolicy()
        state = state_with_popularity(0)
        deliver_update(policy, state)  # strike 1
        state.popularity = 2  # queries arrived
        assert deliver_update(policy, state)  # reset
        assert deliver_update(policy, state)  # strike 1 again: keep

    def test_distance_independent(self):
        assert not SecondChancePolicy().needs_distance

    def test_fresh_state_keeps(self):
        policy = SecondChancePolicy()
        assert policy.should_keep_receiving(KeyState("k"), 5)


class TestLogBased:
    def test_window_of_three(self):
        policy = LogBasedPolicy(strikes_to_cut=3)
        state = state_with_popularity(0)
        assert deliver_update(policy, state)
        assert deliver_update(policy, state)
        assert not deliver_update(policy, state)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            LogBasedPolicy(strikes_to_cut=0)

    def test_policy_state_is_per_key(self):
        policy = SecondChancePolicy()
        a, b = state_with_popularity(0), state_with_popularity(0)
        deliver_update(policy, a)
        deliver_update(policy, a)
        # Key b is unaffected by key a's strikes.
        assert deliver_update(policy, b)


class TestMakePolicy:
    def test_all_out(self):
        assert isinstance(make_policy("all-out"), AllOutPolicy)

    def test_push_level(self):
        policy = make_policy("push-level:7")
        assert isinstance(policy, AllOutPolicy)
        assert policy.push_level == 7

    def test_linear(self):
        policy = make_policy("linear:0.25")
        assert isinstance(policy, LinearPolicy)
        assert policy.alpha == 0.25

    def test_logarithmic(self):
        policy = make_policy("log:0.5")
        assert isinstance(policy, LogarithmicPolicy)

    def test_log_based(self):
        policy = make_policy("log-based:4")
        assert isinstance(policy, LogBasedPolicy)
        assert policy.strikes_to_cut == 4

    def test_second_chance(self):
        assert isinstance(make_policy("second-chance"), SecondChancePolicy)

    def test_case_and_spacing_tolerant(self):
        assert isinstance(make_policy("  Second-Chance "), SecondChancePolicy)

    def test_unknown_spec_rejected(self):
        with pytest.raises(ValueError):
            make_policy("magic")

    def test_names_are_descriptive(self):
        assert make_policy("linear:0.25").name == "linear(alpha=0.25)"
        assert make_policy("push-level:3").name == "push-level-3"
        assert make_policy("second-chance").name == "second-chance"
