"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Event, Simulator, SimulatorError


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_clock_starts_at_custom_time(self):
        assert Simulator(start_time=5.0).now == 5.0

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, order.append, "c")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(2.0, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_equal_times_fire_fifo(self):
        sim = Simulator()
        order = []
        for tag in range(10):
            sim.schedule(1.0, order.append, tag)
        sim.run()
        assert order == list(range(10))

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]
        assert sim.now == 2.5

    def test_zero_delay_event_fires(self):
        sim = Simulator()
        fired = []
        sim.schedule(0.0, fired.append, True)
        sim.run()
        assert fired == [True]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulatorError):
            Simulator().schedule(-1.0, lambda: None)

    def test_nan_and_inf_delays_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulatorError):
            sim.schedule(float("nan"), lambda: None)
        with pytest.raises(SimulatorError):
            sim.schedule(float("inf"), lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(4.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [4.0]

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulatorError):
            sim.schedule_at(0.5, lambda: None)

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        order = []

        def first():
            order.append("first")
            sim.schedule(1.0, lambda: order.append("nested"))

        sim.schedule(1.0, first)
        sim.run()
        assert order == ["first", "nested"]

    def test_args_passed_to_callback(self):
        sim = Simulator()
        got = []
        sim.schedule(1.0, lambda a, b: got.append((a, b)), 1, "x")
        sim.run()
        assert got == [(1, "x")]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, True)
        handle.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert sim.run() == 0

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        keep = sim.schedule(1.0, lambda: None)
        drop = sim.schedule(2.0, lambda: None)
        drop.cancel()
        assert sim.pending == 1
        assert keep is not drop

    def test_cancel_during_run(self):
        sim = Simulator()
        fired = []
        later = sim.schedule(2.0, fired.append, "later")
        sim.schedule(1.0, later.cancel)
        sim.run()
        assert fired == []


class TestPendingCounter:
    """``Simulator.pending`` is an O(1) live counter; these pin that it
    stays *exact* through every schedule/cancel/fire combination."""

    def test_pending_tracks_schedule_and_fire(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        assert sim.pending == 5
        sim.step()
        assert sim.pending == 4
        sim.run()
        assert sim.pending == 0

    def test_cancellation_keeps_pending_exact(self):
        sim = Simulator()
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
        handles[2].cancel()
        handles[7].cancel()
        assert sim.pending == 8
        # Idempotent: double-cancel must not decrement twice.
        handles[2].cancel()
        assert sim.pending == 8
        sim.run()
        assert sim.pending == 0
        assert sim.events_processed == 8

    def test_cancel_after_fire_does_not_corrupt_pending(self):
        sim = Simulator()
        fired = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run_until(1.5)
        assert sim.pending == 1
        # The event already fired; a late cancel is a no-op.
        fired.cancel()
        assert sim.pending == 1
        sim.run()
        assert sim.pending == 0

    def test_cancel_during_run_keeps_pending_exact(self):
        sim = Simulator()
        later = sim.schedule(3.0, lambda: None)
        sim.schedule(1.0, later.cancel)
        sim.schedule(2.0, lambda: None)
        sim.run_until(1.0)
        assert sim.pending == 1  # the t=2 event; t=3 was cancelled
        sim.run()
        assert sim.pending == 0

    def test_pending_matches_bruteforce_count_under_churn(self):
        sim = Simulator()
        handles = []
        for i in range(100):
            handles.append(sim.schedule(float(i % 7) + 0.5, lambda: None))
        for handle in handles[::3]:
            handle.cancel()
        for handle in handles[::3]:  # idempotent re-cancel
            handle.cancel()
        alive = sum(1 for h in handles if not h.cancelled)
        assert sim.pending == alive
        processed = sim.run()
        assert processed == alive
        assert sim.pending == 0


class TestRunModes:
    def test_run_returns_processed_count(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        assert sim.run() == 5

    def test_run_until_stops_at_deadline(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "in")
        sim.schedule(3.0, fired.append, "out")
        sim.run_until(2.0)
        assert fired == ["in"]
        assert sim.now == 2.0

    def test_run_until_is_resumable(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(3.0, fired.append, 3)
        sim.run_until(2.0)
        sim.run_until(4.0)
        assert fired == [1, 3]

    def test_run_until_inclusive_of_deadline_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, fired.append, True)
        sim.run_until(2.0)
        assert fired == [True]

    def test_run_until_past_deadline_rejected(self):
        sim = Simulator()
        sim.run_until(5.0)
        with pytest.raises(SimulatorError):
            sim.run_until(1.0)

    def test_max_events_bounds_run(self):
        sim = Simulator()
        for _ in range(10):
            sim.schedule(1.0, lambda: None)
        assert sim.run(max_events=4) == 4
        assert sim.pending == 6

    def test_step_fires_single_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        assert sim.step() is True
        assert fired == ["a"]

    def test_step_on_empty_heap(self):
        assert Simulator().step() is False

    def test_stop_exits_loop(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule(2.0, fired.append, 2)
        sim.run()
        assert fired == [1]

    def test_not_reentrant(self):
        sim = Simulator()
        errors = []

        def nested():
            try:
                sim.run()
            except SimulatorError as exc:
                errors.append(exc)

        sim.schedule(1.0, nested)
        sim.run()
        assert len(errors) == 1

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(3):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 3


class TestEventOrdering:
    def test_event_lt_by_time_then_seq(self):
        a = Event(1.0, 0, lambda: None, ())
        b = Event(1.0, 1, lambda: None, ())
        c = Event(0.5, 2, lambda: None, ())
        assert c < a < b

    def test_interleaved_schedule_and_run(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, order.append, "a")
        sim.run()
        sim.schedule(1.0, order.append, "b")
        sim.run()
        assert order == ["a", "b"]
        assert sim.now == 2.0
