"""Tests for the experiment harnesses at tiny scale.

Each harness must (a) run, (b) produce the paper's table structure, and
(c) satisfy its qualitative shape expectations.
"""

import pytest

from repro.experiments.base import (
    monotone_nondecreasing,
    monotone_nonincreasing,
)
from repro.experiments.capacity import run_capacity, run_with_faults
from repro.experiments.config import TINY, resolve_scale
from repro.experiments.cutoff_policies import run_cutoff_policies
from repro.experiments.network_size import run_network_size
from repro.experiments.push_level import default_levels, run_push_level
from repro.experiments.replicas_sweep import run_replicas_sweep
from repro.experiments.runner import clear_cache, run_config, run_pair


class TestScales:
    def test_resolve_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert resolve_scale().name == "small"

    def test_resolve_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert resolve_scale().name == "paper"

    def test_resolve_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert resolve_scale("tiny").name == "tiny"

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            resolve_scale("galactic")

    def test_rate_mapping_preserves_density(self):
        # density = rate * lifetime / n must match the paper's.
        paper_density = 1.0 * 300.0 / 1024
        tiny_density = TINY.rate(1.0) * TINY.entry_lifetime / TINY.num_nodes
        assert tiny_density == pytest.approx(paper_density)

    def test_rates_capped(self):
        assert TINY.rates([1.0, 10.0, 1000.0]) == [
            TINY.rate(1.0), TINY.rate(10.0)
        ]

    def test_config_carries_preset_fields(self):
        config = TINY.config(seed=1)
        assert config.num_nodes == TINY.num_nodes
        assert config.entry_lifetime == TINY.entry_lifetime
        assert config.total_keys == 1


class TestRunnerCache:
    def test_cache_returns_same_summary(self):
        clear_cache()
        config = TINY.config(seed=2, query_rate=0.5)
        first = run_config(config)
        second = run_config(config)
        assert first is second

    def test_run_pair_shares_workload(self):
        cup, std = run_pair(TINY.config(seed=2, query_rate=0.5))
        assert cup.queries_posted == std.queries_posted

    def test_cache_bypass(self):
        clear_cache()
        config = TINY.config(seed=2, query_rate=0.5)
        first = run_config(config)
        fresh = run_config(config, use_cache=False)
        assert first == fresh


class TestMonotoneHelpers:
    def test_nonincreasing(self):
        assert monotone_nonincreasing([5.0, 4.0, 4.1, 3.0])
        assert not monotone_nonincreasing([5.0, 9.0])

    def test_nondecreasing(self):
        assert monotone_nondecreasing([1.0, 2.0, 1.95, 3.0])
        assert not monotone_nondecreasing([5.0, 2.0])


class TestPushLevelHarness:
    def test_default_levels_reach_diameter(self):
        levels = default_levels(64)  # 8x8 grid -> diameter 8
        assert levels[0] == 0
        assert levels[-1] == 8
        assert levels == sorted(set(levels))

    def test_fig3_runs_and_holds(self):
        result = run_push_level(TINY, paper_rates=(1.0,), seed=7)
        assert result.all_expectations_hold(), result.report()
        table = result.format_table()
        assert "std caching" in table
        assert "push level" in table

    def test_optimal_level_lookup(self):
        result = run_push_level(TINY, paper_rates=(1.0,), seed=7)
        best = result.optimal_total(1.0)
        assert best == min(result.series[1.0]["total"])
        assert result.optimal_level(1.0) in result.levels


class TestCutoffHarness:
    def test_table1_runs_and_holds(self):
        result = run_cutoff_policies(TINY, paper_rates=(1.0, 10.0), seed=7)
        assert result.all_expectations_hold(), result.report()
        table = result.format_table()
        assert "second-chance" in table
        assert "standard caching" in table
        assert "optimal push level" in table

    def test_normalized_column(self):
        result = run_cutoff_policies(TINY, paper_rates=(10.0,), seed=7)
        assert result.normalized("standard caching", 10.0) == 1.0


class TestNetworkSizeHarness:
    def test_table2_runs_and_holds(self):
        result = run_network_size(
            TINY, exponents=(3, 4, 5, 6), high_rate=10.0, seed=7
        )
        assert result.all_expectations_hold(), result.report()
        assert result.sizes == [8, 16, 32, 64]
        assert "CUP / STD miss cost" in result.format_table()

    def test_high_rate_point_present(self):
        result = run_network_size(
            TINY, exponents=(3, 4), high_rate=10.0, seed=7
        )
        assert result.high_rate_point is not None
        assert "High-rate point" in result.format_table()


class TestReplicasHarness:
    def test_table3_runs_and_holds(self):
        result = run_replicas_sweep(
            TINY, replica_counts=(1, 2, 5, 20), seed=7
        )
        assert result.all_expectations_hold(), result.report()
        assert "Standard caching total cost" in result.format_table()


class TestJustificationHarness:
    def test_runs_and_holds(self):
        from repro.experiments.justification import run_justification

        result = run_justification(
            TINY, paper_rates=(0.1, 1.0, 10.0), seed=7
        )
        assert result.all_expectations_hold(), result.report()
        table = result.format_table()
        assert "justified fraction" in table
        assert "saved/overhead" in table


class TestCapacityHarness:
    def test_fig5_runs_and_holds(self):
        result = run_capacity(
            TINY, paper_rate=1.0, capacities=(0.0, 0.5, 1.0), seed=7
        )
        assert result.all_expectations_hold(), result.report()
        assert "up-and-down" in result.format_table()

    def test_fault_configuration_validated(self):
        with pytest.raises(ValueError):
            run_with_faults(TINY.config(seed=1), "sideways", reduced=0.5)
