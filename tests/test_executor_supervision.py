"""Supervised sweep executor: crashes, hangs, retries, resume.

Drives the production worker pool through injected faults
(:class:`WorkerFault`): workers that SIGKILL themselves mid-batch,
workers that hang past the per-cell wall-clock budget, and faults that
outlast the retry budget.  The sweep must survive all of them — replace
the worker, retry with backoff, keep the rest of the batch flowing —
and a rerun after a failure must serve the survivors from the cache.
"""

import multiprocessing
import time

import pytest

from repro.core.protocol import CupConfig
from repro.experiments import executor, runcache
from repro.experiments.executor import (
    Cell,
    Supervision,
    SweepError,
    WorkerFault,
    execute,
)
from repro.experiments.runner import clear_cache


def tiny_config(**overrides) -> CupConfig:
    base = dict(
        num_nodes=16, total_keys=1, query_rate=1.0, seed=5,
        entry_lifetime=50.0, query_start=100.0, query_duration=300.0,
        drain=100.0, gc_interval=50.0, link_delay=0.01,
    )
    base.update(overrides)
    return CupConfig(**base)


def batch(n=4):
    return [Cell(f"c{i}", tiny_config(seed=5 + i)) for i in range(n)]


FAST = Supervision(cell_timeout=60.0, max_retries=2, retry_backoff=0.05)


@pytest.fixture(autouse=True)
def _fresh_supervision(monkeypatch):
    monkeypatch.delenv(executor.WORKERS_ENV, raising=False)
    clear_cache()
    executor.configure(None)
    executor.configure_supervision(None)
    yield
    clear_cache()
    executor.configure(None)
    executor.configure_supervision(None)


class TestPolicyValidation:
    def test_worker_fault_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            WorkerFault("segfault")
        with pytest.raises(ValueError):
            WorkerFault("sigkill", times=0)

    def test_supervision_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            Supervision(cell_timeout=0.0)
        with pytest.raises(ValueError):
            Supervision(max_retries=-1)
        with pytest.raises(ValueError):
            Supervision(retry_backoff=-0.1)
        with pytest.raises(ValueError):
            Supervision(poll_interval=0.0)

    def test_faults_must_name_batch_labels(self):
        with pytest.raises(ValueError, match="not in the batch"):
            execute(
                batch(2), workers=2, use_cache=False,
                worker_faults={"nope": WorkerFault("sigkill")},
            )

    def test_configure_supervision_sets_process_default(self):
        executor.configure_supervision(FAST)
        assert executor.default_supervision() is FAST
        executor.configure_supervision(None)
        assert executor.default_supervision() == Supervision()


class TestCrashRecovery:
    def test_sigkilled_worker_is_replaced_and_cell_retried(self):
        cells = batch()
        results = execute(
            cells, workers=2, use_cache=False, supervision=FAST,
            worker_faults={"c1": WorkerFault("sigkill", times=1)},
        )
        assert set(results) == {"c0", "c1", "c2", "c3"}
        report = {r.label: r for r in executor.last_report()}
        assert report["c1"].attempts == 2
        assert report["c1"].retries == 1
        assert report["c0"].attempts == 1
        # The crash-victim's result matches a clean serial run.
        serial = execute(cells, workers=1, use_cache=False)
        assert results == serial

    def test_hung_worker_times_out_and_cell_retries(self):
        cells = batch()
        sup = Supervision(
            cell_timeout=1.0, max_retries=2, retry_backoff=0.05
        )
        results = execute(
            cells, workers=2, use_cache=False, supervision=sup,
            worker_faults={"c2": WorkerFault("hang", times=1)},
        )
        assert set(results) == {"c0", "c1", "c2", "c3"}
        report = {r.label: r for r in executor.last_report()}
        assert report["c2"].attempts == 2
        # The hung attempt burned at least the timeout's wall clock.
        assert report["c2"].wall_seconds > 1.0

    def test_batch_survives_multiple_concurrent_crashes(self):
        cells = batch(6)
        results = execute(
            cells, workers=3, use_cache=False, supervision=FAST,
            worker_faults={
                "c0": WorkerFault("sigkill", times=1),
                "c3": WorkerFault("sigkill", times=2),
            },
        )
        assert len(results) == 6
        report = {r.label: r for r in executor.last_report()}
        assert report["c0"].attempts == 2
        assert report["c3"].attempts == 3


class TestRetryExhaustion:
    def test_persistent_crash_fails_cell_but_not_batch(self, tmp_path):
        runcache.configure(cache_dir=tmp_path)
        cells = batch()
        with pytest.raises(SweepError) as excinfo:
            execute(
                cells, workers=2, supervision=FAST,
                worker_faults={"c3": WorkerFault("sigkill", times=10)},
            )
        err = excinfo.value
        assert set(err.failures) == {"c3"}
        assert "died" in err.failures["c3"]
        assert set(err.results) == {"c0", "c1", "c2"}
        report = {r.label: r for r in executor.last_report()}
        assert report["c3"].source == "failed"
        assert report["c3"].attempts == 1 + FAST.max_retries

        # The survivors flushed incrementally: a rerun (fault gone)
        # serves them from the cache and re-runs only the failure.
        clear_cache()  # drop the in-process memo; keep the disk cache
        before = runcache.active().stats.hits
        results = execute(cells, workers=2, supervision=FAST)
        assert set(results) == {"c0", "c1", "c2", "c3"}
        assert runcache.active().stats.hits == before + 3
        report = {r.label: r.source for r in executor.last_report()}
        assert report["c3"] == "run"
        assert sorted(report[c] for c in ("c0", "c1", "c2")) == ["disk"] * 3

    def test_exhaustion_reason_mentions_timeout_for_hangs(self):
        sup = Supervision(
            cell_timeout=0.5, max_retries=0, retry_backoff=0.05
        )
        with pytest.raises(SweepError) as excinfo:
            execute(
                batch(2), workers=2, use_cache=False, supervision=sup,
                worker_faults={"c1": WorkerFault("hang", times=5)},
            )
        assert "timeout" in excinfo.value.failures["c1"]


class TestPoolHygiene:
    def test_shutdown_pool_leaves_no_live_children(self):
        execute(batch(), workers=2, use_cache=False, supervision=FAST)
        assert executor._pool is not None
        executor.shutdown_pool()
        assert executor._pool is None
        deadline = time.monotonic() + 5.0
        while multiprocessing.active_children():
            assert time.monotonic() < deadline, "workers leaked"
            time.sleep(0.05)

    def test_pool_persists_across_supervised_batches(self):
        execute(batch(2), workers=2, use_cache=False, supervision=FAST)
        pool = executor._pool
        execute(
            batch(3), workers=2, use_cache=False, supervision=FAST,
            worker_faults={"c1": WorkerFault("sigkill", times=1)},
        )
        # Same pool object even after a crash mid-batch; only the dead
        # worker was replaced.
        assert executor._pool is pool

    def test_serial_path_ignores_faults_and_reports(self):
        results = execute(batch(2), workers=1, use_cache=False)
        assert len(results) == 2
        report = {r.label: r for r in executor.last_report()}
        assert all(r.source == "run" and r.attempts == 1
                   for r in report.values())

    def test_drain_report_accumulates_across_batches(self):
        executor.drain_report()
        execute(batch(2), workers=1, use_cache=False)
        execute(batch(3), workers=1, use_cache=False)
        drained = executor.drain_report()
        assert len(drained) == 5
        assert executor.drain_report() == []
