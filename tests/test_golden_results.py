"""Golden-number regression tests for the reproduction's headline results.

These pin the tiny-preset headline quantities inside generous bands so a
future refactor cannot silently change the reproduction's behaviour.
Exact equality is asserted only for determinism (same seed, same
summary); behavioural quantities get ±bands wide enough to survive
innocuous changes (e.g. float formatting) but not protocol regressions.
"""

import pytest

from repro.experiments.config import TINY
from repro.experiments.runner import run_pair


@pytest.fixture(scope="module")
def tiny_pair():
    return run_pair(TINY.config(seed=42, query_rate=TINY.rate(10.0)))


class TestGoldenTinyRun:
    def test_query_volume(self, tiny_pair):
        cup, std = tiny_pair
        # λ(paper 10) → 1.875 q/s over 1000 s ≈ 1875 queries.
        assert 1700 <= cup.queries_posted <= 2050
        assert cup.queries_posted == std.queries_posted

    def test_cup_miss_cost_band(self, tiny_pair):
        cup, _ = tiny_pair
        assert 80 <= cup.miss_cost <= 500

    def test_std_miss_cost_band(self, tiny_pair):
        _, std = tiny_pair
        assert 900 <= std.miss_cost <= 1800

    def test_miss_ratio_band(self, tiny_pair):
        cup, std = tiny_pair
        ratio = cup.miss_cost / std.miss_cost
        assert 0.05 <= ratio <= 0.40

    def test_overhead_band(self, tiny_pair):
        cup, std = tiny_pair
        assert std.overhead_cost == 0
        assert 300 <= cup.overhead_cost <= 1200

    def test_total_ratio_band(self, tiny_pair):
        cup, std = tiny_pair
        assert 0.45 <= cup.total_cost / std.total_cost <= 1.05

    def test_justified_fraction_band(self, tiny_pair):
        cup, _ = tiny_pair
        # Well above the 50% break-even under second-chance.
        assert cup.justified_fraction >= 0.5

    def test_latency_ordering(self, tiny_pair):
        cup, std = tiny_pair
        assert cup.miss_latency <= std.miss_latency * 1.05

    def test_hit_rate_band(self, tiny_pair):
        cup, std = tiny_pair
        cup_hit_rate = cup.local_hits / cup.queries_posted
        std_hit_rate = std.local_hits / std.queries_posted
        assert cup_hit_rate > std_hit_rate
        assert cup_hit_rate >= 0.75


class TestDeterminismGolden:
    def test_identical_summaries_across_processes_worth_of_runs(self):
        config = TINY.config(seed=123, query_rate=1.0)
        from repro.core.protocol import CupNetwork

        first = CupNetwork(config).run()
        second = CupNetwork(config).run()
        assert first == second

    def test_standard_cell_bitwise_repeatable_including_event_count(self):
        """Determinism under optimization: one standard cell, twice.

        The hot-path work (tuple heaps, block-buffered RNG draws, lazy
        queue maintenance) must not introduce any run-to-run variation:
        the full MetricsSummary *and* the engine's processed-event count
        must match exactly between two same-seed runs.
        """
        from repro.core.protocol import CupNetwork

        config = TINY.config(seed=42, query_rate=TINY.rate(10.0))
        results = []
        for _ in range(2):
            net = CupNetwork(config)
            summary = net.run()
            results.append((summary, net.sim.events_processed))
        (first, first_events), (second, second_events) = results
        assert first == second
        assert first_events == second_events
        # And the same for the standard-caching twin.
        twin = config.variant(mode="standard")
        runs = []
        for _ in range(2):
            net = CupNetwork(twin)
            summary = net.run()
            runs.append((summary, net.sim.events_processed))
        assert runs[0] == runs[1]

    def test_seed_sensitivity(self):
        from repro.core.protocol import CupNetwork

        a = CupNetwork(TINY.config(seed=1, query_rate=1.0)).run()
        b = CupNetwork(TINY.config(seed=2, query_rate=1.0)).run()
        assert a.miss_cost != b.miss_cost or a.queries_posted != b.queries_posted
