"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_quickstart(self, capsys):
        assert main(["quickstart"]) == 0
        out = capsys.readouterr().out
        assert "CUP:" in out and "standard:" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scale_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig3", "--scale", "huge"])


class TestRunExperiment:
    def test_run_fig5_tiny(self, capsys):
        status = main(["run", "fig5", "--scale", "tiny", "--seed", "7"])
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "PASS" in out
        assert status == 0

    def test_run_table3_tiny(self, capsys):
        status = main(["run", "table3", "--scale", "tiny", "--seed", "7"])
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert status == 0


class TestScenariosCommands:
    def test_scenarios_list(self, capsys):
        from repro.scenarios import SCENARIOS

        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIOS:
            assert name in out

    def test_scenarios_run_one(self, capsys):
        assert main(["scenarios", "run", "steady-state", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "steady-state" in out
        assert "invariants: OK" in out

    def test_scenarios_run_without_invariants(self, capsys):
        status = main(
            ["scenarios", "run", "flash-crowd", "--no-invariants"]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "invariants: not checked" in out

    def test_scenarios_run_unknown(self, capsys):
        assert main(["scenarios", "run", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_scenarios_run_all(self, capsys):
        from repro.scenarios import SCENARIOS

        assert main(["scenarios", "run", "all"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIOS:
            assert f"scenario {name!r}" in out

    def test_scenarios_run_convergence_audit(self, capsys):
        status = main([
            "scenarios", "run", "lossy-mesh", "--seed", "7",
            "--convergence",
        ])
        out = capsys.readouterr().out
        assert status == 0
        assert "invariants: OK" in out
        assert "transport faults:" in out
        assert "recovery:" in out


class TestChaosCommand:
    def test_chaos_wraps_and_audits_a_scenario(self, capsys):
        status = main(["chaos", "steady-state", "--seed", "7"])
        out = capsys.readouterr().out
        assert status == 0
        assert "steady-state+chaos" in out
        assert "transport faults:" in out
        assert "invariants: OK" in out

    def test_chaos_custom_fault_rates(self, capsys):
        status = main([
            "chaos", "steady-state", "--seed", "7",
            "--loss", "0.1", "--duplicate", "0.0", "--jitter", "0.0",
        ])
        assert status == 0
        assert "lost=" in capsys.readouterr().out

    def test_chaos_rejects_all_zero_faults(self, capsys):
        status = main([
            "chaos", "steady-state",
            "--loss", "0", "--duplicate", "0", "--jitter", "0",
        ])
        assert status == 2
        assert "at least one" in capsys.readouterr().err

    def test_chaos_unknown_scenario(self, capsys):
        assert main(["chaos", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err


class TestProfileCommand:
    @pytest.fixture(autouse=True)
    def _restore_execution_state(self):
        from repro.experiments import executor, runcache

        saved = runcache.snapshot()
        yield
        runcache.restore(saved)
        executor.configure(None)

    def test_profile_unknown_harness(self, capsys):
        assert main(["profile", "nope"]) == 2
        assert "unknown harness" in capsys.readouterr().err

    def test_profile_macro_cell(self, capsys):
        status = main([
            "profile", "macro", "--scale", "tiny", "--nodes", "16",
            "--top", "5", "--sort", "tottime",
        ])
        out = capsys.readouterr().out
        assert status == 0
        assert "profiling macro cell" in out
        assert "cumtime" in out  # pstats table rendered

    def test_profile_sort_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile", "macro", "--sort", "wat"])
