"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_quickstart(self, capsys):
        assert main(["quickstart"]) == 0
        out = capsys.readouterr().out
        assert "CUP:" in out and "standard:" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scale_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig3", "--scale", "huge"])


class TestRunExperiment:
    def test_run_fig5_tiny(self, capsys):
        status = main(["run", "fig5", "--scale", "tiny", "--seed", "7"])
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "PASS" in out
        assert status == 0

    def test_run_table3_tiny(self, capsys):
        status = main(["run", "table3", "--scale", "tiny", "--seed", "7"])
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert status == 0


class TestScenariosCommands:
    def test_scenarios_list(self, capsys):
        from repro.scenarios import SCENARIOS

        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIOS:
            assert name in out

    def test_scenarios_run_one(self, capsys):
        assert main(["scenarios", "run", "steady-state", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "steady-state" in out
        assert "invariants: OK" in out

    def test_scenarios_run_without_invariants(self, capsys):
        status = main(
            ["scenarios", "run", "flash-crowd", "--no-invariants"]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "invariants: not checked" in out

    def test_scenarios_run_unknown(self, capsys):
        assert main(["scenarios", "run", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_scenarios_run_all(self, capsys):
        from repro.scenarios import SCENARIOS

        assert main(["scenarios", "run", "all"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIOS:
            assert f"scenario {name!r}" in out

    def test_scenarios_run_convergence_audit(self, capsys):
        status = main([
            "scenarios", "run", "lossy-mesh", "--seed", "7",
            "--convergence",
        ])
        out = capsys.readouterr().out
        assert status == 0
        assert "invariants: OK" in out
        assert "transport faults:" in out
        assert "recovery:" in out


class TestChaosCommand:
    def test_chaos_wraps_and_audits_a_scenario(self, capsys):
        status = main(["chaos", "steady-state", "--seed", "7"])
        out = capsys.readouterr().out
        assert status == 0
        assert "steady-state+chaos" in out
        assert "transport faults:" in out
        assert "invariants: OK" in out

    def test_chaos_custom_fault_rates(self, capsys):
        status = main([
            "chaos", "steady-state", "--seed", "7",
            "--loss", "0.1", "--duplicate", "0.0", "--jitter", "0.0",
        ])
        assert status == 0
        assert "lost=" in capsys.readouterr().out

    def test_chaos_rejects_all_zero_faults(self, capsys):
        status = main([
            "chaos", "steady-state",
            "--loss", "0", "--duplicate", "0", "--jitter", "0",
        ])
        assert status == 2
        assert "at least one" in capsys.readouterr().err

    def test_chaos_unknown_scenario(self, capsys):
        assert main(["chaos", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err


class TestProfileCommand:
    @pytest.fixture(autouse=True)
    def _restore_execution_state(self):
        from repro.experiments import executor, runcache

        saved = runcache.snapshot()
        yield
        runcache.restore(saved)
        executor.configure(None)

    def test_profile_unknown_harness(self, capsys):
        assert main(["profile", "nope"]) == 2
        assert "unknown harness" in capsys.readouterr().err

    def test_profile_macro_cell(self, capsys):
        status = main([
            "profile", "macro", "--scale", "tiny", "--nodes", "16",
            "--top", "5", "--sort", "tottime",
        ])
        out = capsys.readouterr().out
        assert status == 0
        assert "profiling macro cell" in out
        assert "cumtime" in out  # pstats table rendered

    def test_profile_sort_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile", "macro", "--sort", "wat"])


class TestNodeCommands:
    def test_node_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["node"])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["node", "serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 9400
        assert args.mode == "cup"
        assert args.policy == "second-chance"
        assert args.codec == "json"
        assert not args.no_invariants
        assert not args.no_recovery

    def test_join_requires_at_least_one_peer(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["node", "join"])
        args = build_parser().parse_args(
            ["node", "join", "10.0.0.1:9400", "10.0.0.2:9400"]
        )
        assert args.peers == ["10.0.0.1:9400", "10.0.0.2:9400"]
        assert args.port == 0  # joiners default to an OS-assigned port

    def test_serve_mode_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["node", "serve", "--mode", "gossip"])

    def test_serve_state_dir_defaults_off(self):
        args = build_parser().parse_args(["node", "serve"])
        assert args.state_dir is None
        assert args.snapshot_interval == 5.0
        args = build_parser().parse_args(
            ["node", "serve", "--state-dir", "/var/lib/cup",
             "--snapshot-interval", "0.5"]
        )
        assert args.state_dir == "/var/lib/cup"
        assert args.snapshot_interval == 0.5

    def test_put_get_parse(self):
        put = build_parser().parse_args(
            ["node", "put", "somekey", "replica-1",
             "--node", "10.0.0.1:9400", "--lifetime", "60",
             "--event", "refresh"]
        )
        assert put.key == "somekey"
        assert put.replica_id == "replica-1"
        assert put.lifetime == 60.0
        assert put.event == "refresh"
        get = build_parser().parse_args(
            ["node", "get", "somekey", "--wait", "2.5"]
        )
        assert get.key == "somekey"
        assert get.wait == 2.5
        assert get.node == "127.0.0.1:9400"

    def test_put_event_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["node", "put", "k", "r", "--event", "resurrect"]
            )

    @pytest.mark.parametrize("argv", [
        ["node", "info"],
        ["node", "stop"],
        ["node", "get", "somekey"],
        ["node", "put", "somekey", "replica-1"],
    ])
    def test_client_commands_fail_cleanly_without_a_daemon(
        self, argv, capsys
    ):
        # Port 9 (discard) refuses on localhost: every client
        # subcommand must exit 1 with a one-line diagnostic naming the
        # unreachable address, not a traceback.
        status = main(argv + ["--node", "127.0.0.1:9",
                              "--timeout", "0.5"])
        err = capsys.readouterr().err
        assert status == 1
        assert "error: no daemon at 127.0.0.1:9" in err
        assert len(err.strip().splitlines()) == 1

    def test_node_address_parsing(self):
        from repro.net.client import parse_address

        assert parse_address("10.0.0.1:1234") == ("10.0.0.1", 1234)
        assert parse_address("10.0.0.1") == ("10.0.0.1", 9400)
        assert parse_address(":7777") == ("127.0.0.1", 7777)
        with pytest.raises(ValueError):
            parse_address("host:notaport")
