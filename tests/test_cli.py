"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_quickstart(self, capsys):
        assert main(["quickstart"]) == 0
        out = capsys.readouterr().out
        assert "CUP:" in out and "standard:" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scale_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig3", "--scale", "huge"])


class TestRunExperiment:
    def test_run_fig5_tiny(self, capsys):
        status = main(["run", "fig5", "--scale", "tiny", "--seed", "7"])
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "PASS" in out
        assert status == 0

    def test_run_table3_tiny(self, capsys):
        status = main(["run", "table3", "--scale", "tiny", "--seed", "7"])
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert status == 0
