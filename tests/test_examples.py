"""Smoke tests: every example script runs to completion.

Each example is executed in a subprocess (its own interpreter, exactly
as a user would run it) and must exit cleanly with its headline output
present.  These are the slowest tests in the suite (~40 s total); they
guard the documented user experience.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: float = 240.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, (
        f"{name} failed:\n{result.stdout}\n{result.stderr}"
    )
    return result.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "miss cost" in out
        assert "saved" in out

    def test_flash_crowd(self):
        out = run_example("flash_crowd.py")
        assert "flash window" in out
        assert "cheaper" in out

    def test_node_churn(self):
        out = run_example("node_churn.py")
        assert "Churn log:" in out
        assert "Queries resolved" in out

    def test_capacity_faults(self):
        out = run_example("capacity_faults.py")
        assert "Fault timeline:" in out
        assert "graceful" in out

    def test_cost_model_analysis(self):
        out = run_example("cost_model_analysis.py")
        assert "break-even" in out
        assert "push level" in out

    def test_overlay_tour(self):
        out = run_example("overlay_tour.py")
        assert "CAN" in out
        assert "Chord" in out
        assert "CUP tree" in out.replace("\n", " ") or "tree" in out

    def test_trace_replay(self):
        out = run_example("trace_replay.py")
        assert "Replaying" in out
        assert "standard caching" in out
