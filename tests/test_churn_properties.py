"""Property tests for :mod:`repro.workload.churn` (satellite of the
scenario-engine PR).

Hypothesis-driven: Poisson churn schedules must be (1) deterministic
under a fixed seed, (2) time-ordered with every event inside the
requested window, and (3) membership-consistent — joins add brand-new
ids, departures remove only live nodes, and the live set never drops
below the routability floor.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator
from repro.workload.churn import ChurnSchedule


class FakeTarget:
    """A ChurnTarget that records every membership transition."""

    def __init__(self, size):
        self.live = [f"seed-{i}" for i in range(size)]
        self.events = []  # (time injected by caller, action, node, size)

    def join_node(self, node_id):
        assert node_id not in self.live, "join of an existing member"
        self.live.append(node_id)
        self.events.append(("join", node_id, len(self.live)))

    def leave_node(self, node_id, graceful=True):
        assert node_id in self.live, "departure of a non-member"
        self.live.remove(node_id)
        self.events.append(
            ("leave" if graceful else "fail", node_id, len(self.live))
        )

    def live_node_ids(self):
        return list(self.live)


def run_poisson(seed, rate, size, join_fraction, graceful_fraction,
                start=10.0, end=110.0):
    sim = Simulator()
    target = FakeTarget(size)
    schedule = ChurnSchedule(sim, target)
    scheduled = schedule.poisson(
        rate=rate, start=start, end=end,
        rng=np.random.default_rng(seed),
        join_fraction=join_fraction,
        graceful_fraction=graceful_fraction,
    )
    sim.run()
    return scheduled, target, schedule


churn_params = dict(
    seed=st.integers(0, 2**20),
    rate=st.sampled_from([0.05, 0.1, 0.5, 1.0]),
    size=st.integers(2, 24),
    join_fraction=st.sampled_from([0.0, 0.3, 0.5, 0.7, 1.0]),
    graceful_fraction=st.sampled_from([0.0, 0.5, 1.0]),
)


@settings(max_examples=40, deadline=None)
@given(**churn_params)
def test_poisson_deterministic_under_fixed_seed(
    seed, rate, size, join_fraction, graceful_fraction
):
    a = run_poisson(seed, rate, size, join_fraction, graceful_fraction)
    b = run_poisson(seed, rate, size, join_fraction, graceful_fraction)
    assert a[0] == b[0]                      # same event count scheduled
    assert a[1].events == b[1].events        # same transitions, same order
    assert a[2].log == b[2].log              # same (time, action, node) log


@settings(max_examples=40, deadline=None)
@given(**churn_params)
def test_poisson_times_ordered_and_windowed(
    seed, rate, size, join_fraction, graceful_fraction
):
    start, end = 10.0, 110.0
    scheduled, target, schedule = run_poisson(
        seed, rate, size, join_fraction, graceful_fraction,
        start=start, end=end,
    )
    times = [time for time, _, _ in schedule.log]
    assert times == sorted(times)
    for time in times:
        assert start < time < end
    # Executed membership events never exceed the scheduled count
    # (departures can no-op at the routability floor, never the reverse).
    assert len(schedule.log) <= scheduled


@settings(max_examples=40, deadline=None)
@given(**churn_params)
def test_live_set_consistent_across_join_leave_sequences(
    seed, rate, size, join_fraction, graceful_fraction
):
    _, target, schedule = run_poisson(
        seed, rate, size, join_fraction, graceful_fraction
    )
    # Replay the recorded transitions against the initial set: the
    # FakeTarget already asserted joins are fresh ids and leaves hit
    # live members; here we re-derive the final set independently.
    live = {f"seed-{i}" for i in range(size)}
    floor = 2
    for action, node_id, size_after in target.events:
        if action == "join":
            live.add(node_id)
        else:
            assert len(live) > floor, "departure below the routability floor"
            live.discard(node_id)
        assert size_after == len(live)
    assert live == set(target.live)
    # Joined ids are unique (the schedule's counter never reuses names).
    joined = [n for a, n, _ in target.events if a == "join"]
    assert len(joined) == len(set(joined))


def test_duplicate_departure_is_a_noop():
    sim = Simulator()
    target = FakeTarget(4)
    schedule = ChurnSchedule(sim, target)
    schedule.schedule_leave(5.0, "seed-1")
    schedule.schedule_leave(6.0, "seed-1")  # duplicate event
    sim.run()
    assert [a for a, _, _ in target.events] == ["leave"]
    assert len(schedule.log) == 1
