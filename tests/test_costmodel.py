"""Unit and property tests for the §3.1 cost model."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.costmodel import (
    break_even_justified_fraction,
    expected_update_value,
    justification_probability,
    saved_miss_overhead_ratio,
    standard_caching_miss_cost,
    subtree_aggregate_rate,
)

rates = st.floats(min_value=0.0, max_value=1e4, allow_nan=False)
windows = st.floats(min_value=0.0, max_value=1e4, allow_nan=False)


class TestJustificationProbability:
    def test_papers_worked_example(self):
        # "For Λ = 1 query arrival per second and T = 6 seconds, the
        # probability that an update arriving at N is justified is 99%."
        assert justification_probability(1.0, 6.0) == pytest.approx(
            0.9975, abs=0.0005
        )

    def test_zero_rate_never_justified(self):
        assert justification_probability(0.0, 100.0) == 0.0

    def test_zero_window_never_justified(self):
        assert justification_probability(5.0, 0.0) == 0.0

    def test_first_time_updates_always_justified(self):
        assert justification_probability(0.001, math.inf) == 1.0

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            justification_probability(-1.0, 1.0)
        with pytest.raises(ValueError):
            justification_probability(1.0, -1.0)

    @given(rates, windows)
    @settings(max_examples=200, deadline=None)
    def test_is_a_probability(self, rate, window):
        p = justification_probability(rate, window)
        assert 0.0 <= p <= 1.0

    @given(rates, windows, windows)
    @settings(max_examples=200, deadline=None)
    def test_monotone_in_window(self, rate, w1, w2):
        lo, hi = sorted((w1, w2))
        assert justification_probability(rate, lo) <= justification_probability(
            rate, hi
        ) + 1e-12

    @given(windows, rates, rates)
    @settings(max_examples=200, deadline=None)
    def test_monotone_in_rate(self, window, r1, r2):
        lo, hi = sorted((r1, r2))
        assert justification_probability(lo, window) <= justification_probability(
            hi, window
        ) + 1e-12


class TestAggregateRate:
    def test_sums_rates(self):
        assert subtree_aggregate_rate([0.5, 0.25, 0.25]) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            subtree_aggregate_rate([0.5, -0.1])

    def test_empty_subtree(self):
        assert subtree_aggregate_rate([]) == 0.0


class TestMissCost:
    def test_full_trip_costs_two_d(self):
        assert standard_caching_miss_cost(16) == 32

    def test_intermediate_answer_cheaper(self):
        assert standard_caching_miss_cost(16, answered_at=3) == 6

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            standard_caching_miss_cost(-1)
        with pytest.raises(ValueError):
            standard_caching_miss_cost(5, answered_at=6)


class TestBreakEven:
    def test_fifty_percent(self):
        # §3.1: overhead fully recovered at >= 50% justified updates.
        assert break_even_justified_fraction() == 0.5

    def test_expected_value_positive_above_break_even(self):
        # p = 0.99 -> value 0.98 hops per pushed hop.
        assert expected_update_value(1.0, 6.0) > 0.9

    def test_expected_value_negative_for_cold_keys(self):
        assert expected_update_value(0.0001, 1.0) < 0.0

    @given(rates, windows)
    @settings(max_examples=100, deadline=None)
    def test_value_bounded(self, rate, window):
        value = expected_update_value(rate, window)
        assert -1.0 <= value <= 1.0


class TestSavedMissRatio:
    def test_papers_shape(self):
        assert saved_miss_overhead_ratio(55905, 8460, 6723) == pytest.approx(
            7.06, abs=0.01
        )

    def test_zero_overhead_with_savings_is_infinite(self):
        assert saved_miss_overhead_ratio(100, 50, 0) == math.inf

    def test_zero_overhead_no_savings(self):
        assert saved_miss_overhead_ratio(100, 100, 0) == 0.0

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            saved_miss_overhead_ratio(-1, 0, 1)
