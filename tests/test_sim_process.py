"""Unit tests for timers and periodic processes."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess, Timer


class TestTimer:
    def test_fires_after_delay(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, fired.append, "x")
        timer.start(2.0)
        sim.run_until(1.9)
        assert fired == []
        sim.run_until(2.1)
        assert fired == ["x"]

    def test_restart_reschedules(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(2.0)
        sim.run_until(1.0)
        timer.start(2.0)  # re-arm at t=1 -> fires at t=3
        sim.run()
        assert fired == [3.0]

    def test_cancel_prevents_firing(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, fired.append, True)
        timer.start(1.0)
        timer.cancel()
        sim.run()
        assert fired == []

    def test_armed_property(self):
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        assert not timer.armed
        timer.start(1.0)
        assert timer.armed
        sim.run()
        assert not timer.armed

    def test_cancel_idempotent(self):
        timer = Timer(Simulator(), lambda: None)
        timer.cancel()
        timer.cancel()


class TestPeriodicProcess:
    def test_fires_every_period(self):
        sim = Simulator()
        times = []
        PeriodicProcess(sim, 10.0, lambda: times.append(sim.now))
        sim.run_until(35.0)
        assert times == [10.0, 20.0, 30.0]

    def test_phase_controls_first_firing(self):
        sim = Simulator()
        times = []
        PeriodicProcess(sim, 10.0, lambda: times.append(sim.now), phase=3.0)
        sim.run_until(25.0)
        assert times == [3.0, 13.0, 23.0]

    def test_stop_halts_future_firings(self):
        sim = Simulator()
        times = []
        proc = PeriodicProcess(sim, 10.0, lambda: times.append(sim.now))
        sim.run_until(15.0)
        proc.stop()
        sim.run_until(50.0)
        assert times == [10.0]
        assert not proc.running

    def test_returning_false_stops_process(self):
        sim = Simulator()
        count = []

        def tick():
            count.append(1)
            return len(count) < 3 or False if len(count) < 3 else False

        proc = PeriodicProcess(sim, 1.0, tick)
        sim.run_until(10.0)
        assert len(count) == 3
        assert not proc.running

    def test_jitter_applied(self):
        sim = Simulator()
        times = []
        PeriodicProcess(
            sim, 10.0, lambda: times.append(sim.now), jitter_fn=lambda: 1.0
        )
        sim.run_until(25.0)
        # First firing after one plain period, then period+jitter gaps.
        assert times[0] == 10.0
        assert times[1] == pytest.approx(21.0)

    def test_nonpositive_period_rejected(self):
        with pytest.raises(ValueError):
            PeriodicProcess(Simulator(), 0.0, lambda: None)

    def test_stop_from_within_callback(self):
        sim = Simulator()
        count = []
        proc = PeriodicProcess(sim, 1.0, lambda: (count.append(1), proc.stop()))
        sim.run_until(10.0)
        assert len(count) == 1
