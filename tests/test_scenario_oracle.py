"""Differential-oracle harness: hypothesis-driven scenario fuzzing.

Generates random scenario compositions (phases, parameters, seeds) and
checks three oracles on every one:

(a) **invariant oracle** — the runtime checker, relaxed only per the
    composition's declared hazards, reports zero violations;
(b) **executor oracle** — the serial executor, the multiprocessing
    executor and the invariant-checked runner all produce byte-identical
    :class:`MetricsSummary` objects for the same cells;
(c) **routing oracle** — after the run (including any churn the
    composition injected), the overlay's memoized ``next_hop`` and
    ``authority`` agree with the retained unmemoized ``*_reference``
    implementations for every (node, key) pair.

Together these turn the scenario subsystem into a standing test rig:
any future engine/perf change that breaks protocol correctness under
stress, executor determinism, or routing-memo invalidation fails here.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.protocol import CupConfig
from repro.experiments.executor import Cell, execute
from repro.scenarios import (
    CapacityFault,
    ChurnBurst,
    FlashCrowd,
    Partition,
    PopularityDrift,
    Quiet,
    Scenario,
    run_scenario,
)


def fuzz_base_config() -> CupConfig:
    """A deliberately tiny deployment so each example runs in ~0.1 s."""
    return CupConfig(
        num_nodes=16,
        total_keys=4,
        query_rate=3.0,
        entry_lifetime=40.0,
        query_start=60.0,
        drain=60.0,
        gc_interval=40.0,
    )


durations = st.sampled_from([20.0, 30.0, 45.0, 60.0])

phase_strategy = st.one_of(
    st.builds(Quiet, duration=durations),
    st.builds(
        ChurnBurst,
        duration=durations,
        rate=st.sampled_from([0.05, 0.1, 0.2]),
        join_fraction=st.sampled_from([0.3, 0.5, 0.7]),
        graceful_fraction=st.sampled_from([0.0, 0.5, 1.0]),
    ),
    st.builds(
        Partition,
        duration=durations,
        groups=st.sampled_from([2, 3]),
    ),
    st.builds(
        FlashCrowd,
        duration=durations,
        hot_key_index=st.integers(min_value=0, max_value=3),
        share=st.sampled_from([0.5, 0.8, 0.95]),
    ),
    st.builds(
        PopularityDrift,
        duration=durations,
        period=st.sampled_from([10.0, 20.0]),
        share=st.sampled_from([0.4, 0.6]),
        hot_key_count=st.integers(min_value=1, max_value=4),
    ),
    st.builds(
        CapacityFault,
        duration=durations,
        fraction=st.sampled_from([0.2, 0.4]),
        reduced=st.sampled_from([0.0, 0.25, 0.5]),
    ),
)

composition_strategy = st.builds(
    lambda phases: Scenario(
        name="fuzz", description="generated composition",
        phases=tuple(phases),
    ),
    st.lists(phase_strategy, min_size=1, max_size=4),
)


def assert_routing_matches_reference(overlay, keys) -> None:
    """Oracle (c): memoized routing ≡ the unmemoized specification."""
    node_ids = list(overlay.node_ids())
    for key in keys:
        assert overlay.authority(key) == overlay.authority_reference(key)
        for node_id in node_ids:
            assert overlay.next_hop(node_id, key) == \
                overlay.next_hop_reference(node_id, key)


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(scenario=composition_strategy, seed=st.integers(0, 2**16))
def test_invariants_and_routing_oracle(scenario, seed):
    """(a) + (c) on every generated composition."""
    result = run_scenario(
        scenario, seed=seed, base_config=fuzz_base_config(),
        raise_on_violation=False,
    )
    assert result.ok, result.checker.report()
    # The run actually did something.
    assert result.summary.queries_posted > 0
    network = result.network
    assert_routing_matches_reference(network.overlay, network.keys)
    # No partition rule may outlive its phase.
    assert not network.transport._drop_rules


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(scenario=composition_strategy, seed=st.integers(0, 2**16))
def test_serial_parallel_and_runner_metrics_identical(scenario, seed):
    """(b): serial == parallel == invariant-checked runner, per example."""
    base = fuzz_base_config().variant(seed=seed)
    cells = [
        Cell("scenario", base, scenario=scenario),
        Cell("std-twin", base.variant(mode="standard"), scenario=scenario),
    ]
    serial = execute(cells, workers=1, use_cache=False)
    parallel = execute(cells, workers=2, use_cache=False)
    assert serial == parallel
    checked = run_scenario(
        scenario, seed=seed, base_config=fuzz_base_config(),
        raise_on_violation=False,
    )
    assert checked.ok, checked.checker.report()
    assert checked.summary == serial["scenario"]
