"""End-to-end integration tests: full simulations, paper-level claims.

These run small networks (64 nodes, short phases) so the whole file
stays fast, but each test exercises the complete stack: overlay,
replicas, workload, CUP protocol and metrics.
"""

import pytest

from repro.core.policies import AllOutPolicy
from repro.core.protocol import CupConfig, CupNetwork


def config(**overrides):
    base = dict(
        num_nodes=64, total_keys=1, query_rate=1.2, seed=11,
        entry_lifetime=100.0, query_start=200.0, query_duration=1000.0,
        drain=200.0,
    )
    base.update(overrides)
    return CupConfig(**base)


@pytest.fixture(scope="module")
def cup_and_std():
    cup = CupNetwork(config()).run()
    std = CupNetwork(config(mode="standard")).run()
    return cup, std


class TestHeadlineClaims:
    def test_cup_reduces_miss_cost(self, cup_and_std):
        cup, std = cup_and_std
        assert cup.miss_cost < 0.5 * std.miss_cost

    def test_cup_reduces_misses(self, cup_and_std):
        cup, std = cup_and_std
        assert cup.misses < std.misses

    def test_cup_miss_latency_not_worse(self, cup_and_std):
        cup, std = cup_and_std
        assert cup.miss_latency <= std.miss_latency * 1.05

    def test_standard_caching_has_zero_overhead(self, cup_and_std):
        _, std = cup_and_std
        assert std.overhead_cost == 0
        assert std.total_cost == std.miss_cost

    def test_cup_overhead_is_bounded_by_savings_regime(self, cup_and_std):
        cup, std = cup_and_std
        # CUP's total should stay in the neighbourhood of standard
        # caching even at this small scale (the paper's least favorable
        # configurations), and well below 2x.
        assert cup.total_cost < 1.5 * std.total_cost

    def test_most_queries_are_hits_under_cup(self, cup_and_std):
        cup, _ = cup_and_std
        assert cup.local_hits > cup.misses


class TestPushLevelEquivalence:
    def test_push_level_zero_close_to_standard(self):
        p0 = CupNetwork(config(policy=AllOutPolicy(push_level=0))).run()
        std = CupNetwork(config(mode="standard")).run()
        assert p0.overhead_cost == 0
        assert p0.total_cost <= std.total_cost * 1.15

    def test_standard_coalescing_between_std_and_cup(self):
        coal = CupNetwork(config(mode="standard-coalescing")).run()
        std = CupNetwork(config(mode="standard")).run()
        assert coal.overhead_cost == 0
        assert coal.miss_cost <= std.miss_cost


class TestCapacityDegradation:
    def test_zero_capacity_everywhere_behaves_like_standard(self):
        crippled = CupNetwork(config(capacity_fraction=0.0)).run()
        std = CupNetwork(config(mode="standard")).run()
        assert crippled.refresh_hops == 0
        # Misses return to the standard-caching regime (coalescing still
        # helps a little).
        assert crippled.miss_cost <= std.miss_cost * 1.15
        assert crippled.miss_cost >= std.miss_cost * 0.4

    def test_partial_capacity_in_between(self):
        full = CupNetwork(config()).run()
        half = CupNetwork(config(capacity_fraction=0.5)).run()
        none = CupNetwork(config(capacity_fraction=0.0)).run()
        assert full.miss_cost <= half.miss_cost <= none.miss_cost * 1.05


class TestChordSubstrate:
    def test_cup_wins_on_chord_too(self):
        cup = CupNetwork(config(overlay_type="chord")).run()
        std = CupNetwork(config(overlay_type="chord", mode="standard")).run()
        assert cup.miss_cost < std.miss_cost
        assert cup.misses < std.misses

    def test_chord_routes_shorter_than_can(self):
        can = CupNetwork(config(mode="standard")).run()
        chord = CupNetwork(
            config(overlay_type="chord", mode="standard")
        ).run()
        # O(log n) vs O(sqrt n): Chord misses should be cheaper per miss.
        assert chord.miss_latency < can.miss_latency * 1.2


class TestMultiKeyWorkloads:
    def test_zipf_multi_key_run(self):
        cup = CupNetwork(
            config(total_keys=32, key_distribution="zipf", zipf_s=1.1,
                   query_rate=4.0)
        ).run()
        std = CupNetwork(
            config(total_keys=32, key_distribution="zipf", zipf_s=1.1,
                   query_rate=4.0, mode="standard")
        ).run()
        # Hot keys benefit; cold keys are cut off quickly.
        assert cup.miss_cost < std.miss_cost

    def test_uniform_multi_key_run(self):
        summary = CupNetwork(
            config(total_keys=16, query_rate=4.0)
        ).run()
        assert summary.queries_posted > 0


class TestReplicaDynamics:
    def test_multiple_replicas_answer_queries(self):
        summary = CupNetwork(config(replicas_per_key=5)).run()
        assert summary.answers_delivered + summary.local_hits > 0

    def test_failure_sweep_detects_dead_replicas(self):
        net = CupNetwork(
            config(replicas_per_key=3, failure_sweep_interval=50.0)
        )
        net.run_until(150.0)  # replicas alive and refreshing
        import numpy as np

        net.replicas.kill_fraction(1.0, np.random.default_rng(9),
                                   graceful=False)
        net.run_until(500.0)
        assert net.metrics.failure_detections > 0

    def test_graceful_replica_death_propagates_delete(self):
        net = CupNetwork(config(replicas_per_key=2))
        net.run_until(250.0)
        # Subscribe a node so the delete has somewhere to go.
        poster = next(iter(net.nodes))
        net.post_query(poster, net.keys[0])
        net.run_until(260.0)
        net.replicas.by_key[net.keys[0]][0].die(graceful=True)
        net.run_until(300.0)
        assert net.metrics.replica_deaths == 1


class TestDeterminism:
    def test_full_run_reproducible(self):
        a = CupNetwork(config(seed=99)).run()
        b = CupNetwork(config(seed=99)).run()
        assert a == b

    def test_chord_run_reproducible(self):
        a = CupNetwork(config(seed=5, overlay_type="chord")).run()
        b = CupNetwork(config(seed=5, overlay_type="chord")).run()
        assert a == b


class TestConservation:
    """Accounting invariants that must hold for any run."""

    def test_every_posted_query_resolves(self):
        net = CupNetwork(config())
        summary = net.run()
        resolved = summary.local_hits + summary.answers_delivered
        # Queries still in flight at sim end may be unresolved; bound it.
        assert resolved >= summary.queries_posted * 0.99

    def test_hit_miss_partition(self):
        summary = CupNetwork(config()).run()
        assert summary.local_hits + summary.misses == summary.queries_posted

    def test_miss_classification_partition(self):
        summary = CupNetwork(config()).run()
        assert (
            summary.first_time_misses + summary.freshness_misses
            == summary.misses
        )

    def test_no_expired_entries_ever_served(self):
        # Instrument the node class: every answer's entries must be fresh.
        from repro.core import node as node_module

        served_expired = []
        original = node_module.CupNode._answer_query

        def checked(self, state, entries, from_neighbor, path, now):
            for entry in entries:
                if not entry.is_fresh(now):
                    served_expired.append(entry)
            return original(self, state, entries, from_neighbor, path, now)

        node_module.CupNode._answer_query = checked
        try:
            CupNetwork(config()).run()
        finally:
            node_module.CupNode._answer_query = original
        assert served_expired == []
