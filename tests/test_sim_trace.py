"""Unit tests for the tracer."""

from repro.sim.trace import TraceRecord, Tracer


class TestTracer:
    def test_disabled_by_default(self):
        tracer = Tracer()
        tracer.emit(1.0, "query", key="k")
        assert tracer.records == []

    def test_enabled_records(self):
        tracer = Tracer(enabled=True)
        tracer.emit(1.0, "query", key="k")
        assert len(tracer.records) == 1
        assert tracer.records[0].fields == {"key": "k"}

    def test_category_filter(self):
        tracer = Tracer(enabled=True, categories=["update"])
        tracer.emit(1.0, "query", key="k")
        tracer.emit(2.0, "update", key="k")
        assert [r.category for r in tracer.records] == ["update"]

    def test_by_category(self):
        tracer = Tracer(enabled=True)
        tracer.emit(1.0, "a")
        tracer.emit(2.0, "b")
        tracer.emit(3.0, "a")
        assert [r.time for r in tracer.by_category("a")] == [1.0, 3.0]

    def test_retention_cap(self):
        tracer = Tracer(enabled=True, max_records=5)
        for i in range(10):
            tracer.emit(float(i), "x", i=i)
        assert len(tracer.records) == 5
        assert tracer.records[0].fields["i"] == 5

    def test_sink_invoked(self):
        seen = []
        tracer = Tracer(enabled=True, sink=seen.append)
        tracer.emit(1.0, "x")
        assert len(seen) == 1

    def test_clear(self):
        tracer = Tracer(enabled=True)
        tracer.emit(1.0, "x")
        tracer.clear()
        assert tracer.records == []

    def test_record_repr_readable(self):
        record = TraceRecord(1.5, "query", {"key": "k1"})
        text = repr(record)
        assert "query" in text and "k1" in text
