"""Shared test fixtures: micro-topologies and hand-wired harnesses.

Node-level protocol tests should not depend on CAN geometry, so they run
on :class:`LineOverlay` — an explicit path ``n0 - n1 - ... - nk`` where
every key's authority is ``n0`` and routing walks toward it.  This makes
CUP-tree positions (depths, parents) literal in the test body.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.channels import CapacityConfig
from repro.core.node import CupNode
from repro.core.policies import CutoffPolicy, SecondChancePolicy
from repro.metrics.collector import MetricsCollector
from repro.overlay.base import NodeId, Overlay
from repro.sim.engine import Simulator
from repro.sim.network import Transport
from repro.sim.random import RandomStreams


class LineOverlay(Overlay):
    """nodes[0] is the authority for every key; routing walks left."""

    def __init__(self, length: int):
        if length < 1:
            raise ValueError("need at least one node")
        self.names = [f"n{i}" for i in range(length)]
        self.epoch = 0

    def node_ids(self):
        return list(self.names)

    def neighbors(self, node_id: NodeId):
        i = self.names.index(node_id)
        out = []
        if i > 0:
            out.append(self.names[i - 1])
        if i < len(self.names) - 1:
            out.append(self.names[i + 1])
        return out

    def authority(self, key: str) -> NodeId:
        return self.names[0]

    def next_hop(self, node_id: NodeId, key: str) -> Optional[NodeId]:
        i = self.names.index(node_id)
        return None if i == 0 else self.names[i - 1]


class MicroNet:
    """A hand-wired CUP deployment on a line topology.

    Exposes the raw pieces (sim, transport, nodes by name) so tests can
    drive individual protocol steps and inspect per-node state.
    """

    def __init__(
        self,
        length: int = 4,
        policy: Optional[CutoffPolicy] = None,
        persistent_interest: bool = True,
        coalesce: bool = True,
        link_delay: float = 0.01,
        pfu_timeout: float = 5.0,
        capacity: Optional[CapacityConfig] = None,
        replica_independent_cutoff: bool = True,
    ):
        self.sim = Simulator()
        self.streams = RandomStreams(seed=1234)
        self.transport = Transport(self.sim, default_delay=link_delay)
        self.metrics = MetricsCollector()
        self.transport.add_send_observer(self.metrics.on_send)
        self.overlay = LineOverlay(length)
        self.policy = policy or SecondChancePolicy()
        self.nodes: Dict[str, CupNode] = {}
        for name in self.overlay.node_ids():
            node = CupNode(
                node_id=name,
                sim=self.sim,
                transport=self.transport,
                overlay=self.overlay,
                policy=self.policy,
                metrics=self.metrics,
                persistent_interest=persistent_interest,
                coalesce=coalesce,
                replica_independent_cutoff=replica_independent_cutoff,
                capacity=capacity,
                rng=self.streams.get(f"cap-{name}"),
                pfu_timeout=pfu_timeout,
            )
            self.nodes[name] = node
            self.transport.register(name, node)

    @property
    def authority(self) -> CupNode:
        return self.nodes["n0"]

    def node(self, index: int) -> CupNode:
        return self.nodes[f"n{index}"]

    def seed_authority(self, key: str, lifetime: float = 100.0,
                       replicas: int = 1) -> None:
        """Install fresh entries for ``key`` in the authority directory."""
        from repro.core.messages import ReplicaEvent, ReplicaMessage

        for i in range(replicas):
            message = ReplicaMessage(
                ReplicaEvent.BIRTH, key, f"{key}/r{i}",
                f"addr://{key}/r{i}", lifetime,
            )
            self.authority.receive(message, None)

    def refresh_authority(self, key: str, lifetime: float = 100.0,
                          replica: int = 0) -> None:
        """Deliver one replica refresh to the authority."""
        from repro.core.messages import ReplicaEvent, ReplicaMessage

        message = ReplicaMessage(
            ReplicaEvent.REFRESH, key, f"{key}/r{replica}",
            f"addr://{key}/r{replica}", lifetime,
        )
        self.authority.receive(message, None)

    def settle(self, duration: float = 5.0) -> None:
        """Run the simulation forward enough for in-flight traffic."""
        self.sim.run_until(self.sim.now + duration)
