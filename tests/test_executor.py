"""Parallel executor and persistent run cache.

Covers: worker-pool fan-out vs the serial fallback (identical results),
batch deduplication (shared standard-caching twins run once), the disk
cache's hit/miss/invalidation behaviour across simulated process
restarts, and the ``MetricsSummary`` JSON round-trip the cache rests on.
"""

import dataclasses
import json

import pytest

from repro.core.protocol import CupConfig
from repro.experiments import executor, runcache
from repro.experiments.executor import (
    Cell,
    FaultSpec,
    cell_key,
    execute,
    run_cell,
)
from repro.experiments.runner import clear_cache, run_config, run_pair
from repro.metrics.collector import MetricsSummary
from repro.experiments.runcache import RunCache


def tiny_config(**overrides) -> CupConfig:
    """A seconds-fast cell: 16 nodes, one key, short time axis."""
    base = dict(
        num_nodes=16, total_keys=1, query_rate=1.0, seed=5,
        entry_lifetime=50.0, query_start=100.0, query_duration=300.0,
        drain=100.0, gc_interval=50.0, link_delay=0.01,
    )
    base.update(overrides)
    return CupConfig(**base)


@pytest.fixture(autouse=True)
def _fresh_execution_state(monkeypatch):
    """Each test starts with an empty memo and serial defaults.

    ``$REPRO_WORKERS`` is cleared so an exported value can't fan the
    run-counting tests out to workers (where the parent's counter
    never increments); the worker-config tests set it explicitly.
    """
    monkeypatch.delenv(executor.WORKERS_ENV, raising=False)
    clear_cache()
    executor.configure(None)
    yield
    clear_cache()
    executor.configure(None)


@pytest.fixture()
def run_counter(monkeypatch):
    """Counts actual simulation executions (cache hits don't count)."""
    from repro.core import protocol

    calls = {"n": 0}
    original = protocol.CupNetwork.run

    def counting(self, *args, **kwargs):
        calls["n"] += 1
        return original(self, *args, **kwargs)

    monkeypatch.setattr(protocol.CupNetwork, "run", counting)
    return calls


class TestSummaryRoundTrip:
    def test_json_round_trip(self):
        summary = run_cell(Cell("x", tiny_config()))
        wire = json.dumps(summary.to_dict())
        restored = MetricsSummary.from_dict(json.loads(wire))
        assert restored == summary

    def test_from_dict_rejects_missing_field(self):
        payload = run_cell(Cell("x", tiny_config())).to_dict()
        payload.pop("miss_cost")
        with pytest.raises(ValueError, match="miss_cost"):
            MetricsSummary.from_dict(payload)

    def test_from_dict_rejects_unknown_field(self):
        payload = run_cell(Cell("x", tiny_config())).to_dict()
        payload["bogus_counter"] = 1
        with pytest.raises(ValueError, match="bogus_counter"):
            MetricsSummary.from_dict(payload)

    def test_to_dict_covers_every_field(self):
        summary = run_cell(Cell("x", tiny_config()))
        names = {f.name for f in dataclasses.fields(MetricsSummary)}
        assert set(summary.to_dict()) == names


class TestRunCache:
    def test_miss_then_hit(self, tmp_path):
        cache = RunCache(tmp_path, fingerprint="fp-a")
        summary = run_cell(Cell("x", tiny_config()))
        key = cell_key(Cell("x", tiny_config()))
        assert cache.get(key) is None
        cache.put(key, summary)
        assert cache.get(key) == summary
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1
        assert len(cache) == 1

    def test_fingerprint_change_invalidates(self, tmp_path):
        summary = run_cell(Cell("x", tiny_config()))
        key = cell_key(Cell("x", tiny_config()))
        RunCache(tmp_path, fingerprint="fp-a").put(key, summary)
        # Same root, same key, different code fingerprint: a miss.
        assert RunCache(tmp_path, fingerprint="fp-b").get(key) is None
        # A fresh instance with the original fingerprint still hits.
        assert RunCache(tmp_path, fingerprint="fp-a").get(key) == summary

    def test_corrupt_file_degrades_to_miss(self, tmp_path):
        cache = RunCache(tmp_path, fingerprint="fp-a")
        summary = run_cell(Cell("x", tiny_config()))
        key = cell_key(Cell("x", tiny_config()))
        cache.put(key, summary)
        for path in (tmp_path / "fp-a").glob("*.json"):
            path.write_text("{not json")
        assert cache.get(key) is None

    def test_code_fingerprint_is_stable(self):
        assert runcache.code_fingerprint() == runcache.code_fingerprint()
        assert len(runcache.code_fingerprint()) == 16


class TestExecute:
    def cells(self):
        return [
            Cell("a", tiny_config(seed=5)),
            Cell("b", tiny_config(seed=6)),
            Cell("c", tiny_config(query_rate=2.0)),
            Cell("std", tiny_config(mode="standard")),
        ]

    def test_serial_and_parallel_results_identical(self):
        serial = execute(self.cells(), workers=1, use_cache=False)
        parallel = execute(self.cells(), workers=4, use_cache=False)
        assert list(serial) == ["a", "b", "c", "std"]
        assert serial == parallel

    def test_serial_fallback_single_cell(self, run_counter):
        result = execute([Cell("only", tiny_config())], workers=8)
        assert run_counter["n"] == 1
        assert result["only"].queries_posted > 0

    def test_batch_dedupes_identical_cells(self, run_counter):
        config = tiny_config()
        results = execute([
            Cell("first", config),
            Cell("twin", tiny_config()),       # same key, distinct object
            Cell("other", tiny_config(seed=9)),
        ])
        assert run_counter["n"] == 2
        assert results["first"] is results["twin"]

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            execute([
                Cell("a", tiny_config()), Cell("a", tiny_config(seed=9)),
            ])

    def test_mapping_input(self):
        results = execute({"cup": tiny_config()})
        assert results["cup"].total_cost > 0

    def test_memo_serves_repeat_batches(self, run_counter):
        execute(self.cells())
        execute(self.cells())
        assert run_counter["n"] == 4

    def test_disk_cache_survives_process_restart(self, tmp_path, run_counter):
        runcache.configure(cache_dir=tmp_path, fingerprint="fp-a")
        first = execute(self.cells())
        cache = runcache.active()
        assert cache.stats.stores == 4
        # A new process has an empty memo but the same cache directory.
        clear_cache()
        runcache.configure(cache_dir=tmp_path, fingerprint="fp-a")
        second = execute(self.cells())
        assert runcache.active().stats.hits == 4
        assert run_counter["n"] == 4  # nothing re-simulated
        assert second == first

    def test_disk_cache_invalidated_by_fingerprint(self, tmp_path,
                                                   run_counter):
        runcache.configure(cache_dir=tmp_path, fingerprint="fp-a")
        execute([Cell("a", tiny_config())])
        clear_cache()
        runcache.configure(cache_dir=tmp_path, fingerprint="fp-b")
        execute([Cell("a", tiny_config())])
        assert run_counter["n"] == 2

    def test_use_cache_false_bypasses_disk(self, tmp_path, run_counter):
        runcache.configure(cache_dir=tmp_path, fingerprint="fp-a")
        execute([Cell("a", tiny_config())], use_cache=False)
        assert runcache.active().stats.stores == 0
        execute([Cell("a", tiny_config())], use_cache=False)
        assert run_counter["n"] == 2

    def test_run_config_reads_and_feeds_disk_cache(self, tmp_path,
                                                   run_counter):
        runcache.configure(cache_dir=tmp_path, fingerprint="fp-a")
        config = tiny_config()
        first = run_config(config)
        clear_cache()
        assert run_config(config) == first
        assert run_counter["n"] == 1


class TestRunPairCoherence:
    def test_twin_computed_once_across_experiments(self, run_counter):
        config = tiny_config()
        cup, std = run_pair(config)
        assert run_counter["n"] == 2
        # Another harness sharing the standard-caching twin: memo hit.
        again = run_config(config.variant(mode="standard"))
        assert run_counter["n"] == 2
        assert again is std
        # The twin is deduplicated inside parallel batches too.
        results = execute([
            Cell("x", config.variant(seed=11)),
            Cell("std", config.variant(mode="standard")),
        ])
        assert run_counter["n"] == 3
        assert results["std"] is std

    def test_pair_shares_workload(self):
        cup, std = run_pair(tiny_config())
        assert cup.queries_posted == std.queries_posted


class TestFaultCells:
    def test_fault_spec_validation(self):
        with pytest.raises(ValueError, match="bogus"):
            FaultSpec(configuration="bogus", reduced=0.5)

    def test_fault_cell_key_extends_config_key(self):
        config = tiny_config()
        plain = cell_key(Cell("a", config))
        faulted = cell_key(Cell(
            "a", config, FaultSpec("up-and-down", reduced=0.5)
        ))
        assert faulted[: len(plain)] == plain
        assert "faults" in faulted

    def test_fault_cells_cache_separately(self, run_counter):
        config = tiny_config()
        spec = FaultSpec(
            "once-down-always-down", reduced=0.0, fraction=1.0, warmup=50.0
        )
        plain = execute([Cell("p", config)])["p"]
        faulted = execute([Cell("f", config, spec)])["f"]
        assert run_counter["n"] == 2
        # Identical fault cell: memo hit, not a third simulation.
        assert execute([Cell("f2", config, spec)])["f2"] is faulted
        assert run_counter["n"] == 2
        assert faulted != plain


class TestWorkerConfiguration:
    def test_configure_overrides_env(self, monkeypatch):
        monkeypatch.setenv(executor.WORKERS_ENV, "7")
        assert executor.default_workers() == 7
        executor.configure(workers=3)
        assert executor.default_workers() == 3
        executor.configure(None)
        assert executor.default_workers() == 7

    def test_invalid_env_falls_back_to_serial(self, monkeypatch):
        monkeypatch.setenv(executor.WORKERS_ENV, "many")
        assert executor.default_workers() == 1

    def test_configure_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            executor.configure(workers=0)
