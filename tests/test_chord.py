"""Unit and property tests for the Chord overlay."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.overlay.base import RoutingError
from repro.overlay.chord import ChordOverlay


def build(n=16, bits=32):
    return ChordOverlay.build([f"n{i}" for i in range(n)], bits=bits)


class TestMembership:
    def test_build_contains_all(self):
        overlay = build(16)
        assert len(set(overlay.node_ids())) == 16

    def test_duplicate_join_rejected(self):
        overlay = build(4)
        with pytest.raises(ValueError):
            overlay.join("n0")

    def test_leave_removes(self):
        overlay = build(8)
        overlay.leave("n3")
        assert "n3" not in set(overlay.node_ids())

    def test_leave_unknown_rejected(self):
        overlay = build(4)
        with pytest.raises(ValueError):
            overlay.leave("ghost")

    def test_epoch_bumps_on_churn(self):
        overlay = build(4)
        before = overlay.epoch
        overlay.leave("n0")
        overlay.join("n99")
        assert overlay.epoch == before + 2

    def test_bits_bounds(self):
        with pytest.raises(ValueError):
            ChordOverlay(bits=2)
        with pytest.raises(ValueError):
            ChordOverlay(bits=65)


class TestAuthority:
    def test_authority_is_successor_of_key(self):
        overlay = build(16)
        key = "some-key"
        owner = overlay.authority(key)
        key_pos = overlay.key_position(key)
        owner_pos = overlay.ring_position(owner)
        # No member may lie strictly between key and its successor.
        for node_id in overlay.node_ids():
            pos = overlay.ring_position(node_id)
            if pos == owner_pos:
                continue
            between = ChordOverlay._in_open_interval(
                pos, key_pos - 1, owner_pos - 1, overlay.size
            )
            assert not between

    def test_authority_on_empty_ring_raises(self):
        with pytest.raises(RoutingError):
            ChordOverlay().authority("k")

    def test_authority_changes_after_owner_leaves(self):
        overlay = build(16)
        key = "some-key"
        owner = overlay.authority(key)
        overlay.leave(owner)
        assert overlay.authority(key) != owner


class TestRouting:
    def test_route_reaches_authority(self):
        overlay = build(32)
        for i in range(20):
            key = f"key-{i}"
            authority = overlay.authority(key)
            for start in ("n0", "n7", "n31"):
                path = overlay.route(start, key)
                assert path[-1] == authority

    def test_route_is_logarithmic(self):
        overlay = build(64)
        worst = max(
            overlay.distance(start, f"key-{i}")
            for start in ("n0", "n13", "n50")
            for i in range(25)
        )
        # Chord guarantees O(log n) w.h.p.; allow generous constant.
        assert worst <= 4 * math.ceil(math.log2(64))

    def test_hops_move_through_neighbor_sets(self):
        overlay = build(32)
        path = overlay.route("n0", "the-key")
        for a, b in zip(path, path[1:]):
            assert b in set(overlay.neighbors(a))

    def test_next_hop_none_only_at_authority(self):
        overlay = build(16)
        key = "k"
        authority = overlay.authority(key)
        assert overlay.next_hop(authority, key) is None
        for node_id in overlay.node_ids():
            if node_id != authority:
                assert overlay.next_hop(node_id, key) is not None

    def test_single_node_ring(self):
        overlay = ChordOverlay.build(["solo"])
        assert overlay.authority("k") == "solo"
        assert overlay.next_hop("solo", "k") is None
        assert list(overlay.neighbors("solo")) == []


class TestNeighbors:
    def test_successor_and_predecessor_included(self):
        overlay = build(16)
        positions = sorted(
            (overlay.ring_position(n), n) for n in overlay.node_ids()
        )
        for i, (_, name) in enumerate(positions):
            successor = positions[(i + 1) % len(positions)][1]
            predecessor = positions[i - 1][1]
            neighbors = set(overlay.neighbors(name))
            assert successor in neighbors
            assert predecessor in neighbors

    def test_neighbor_count_logarithmic(self):
        overlay = build(64)
        for node_id in overlay.node_ids():
            count = len(set(overlay.neighbors(node_id)))
            assert count <= 2 * 64  # trivially bounded
            assert count >= 1


@given(
    st.sets(st.integers(min_value=0, max_value=10_000), min_size=2, max_size=40),
    st.text(alphabet="abcdef", min_size=1, max_size=6),
    st.data(),
)
@settings(max_examples=60, deadline=None)
def test_property_routing_reaches_authority(node_seeds, key, data):
    overlay = ChordOverlay.build([f"m{s}" for s in node_seeds], bits=24)
    names = list(overlay.node_ids())
    start = data.draw(st.sampled_from(names))
    path = overlay.route(start, key)
    assert path[-1] == overlay.authority(key)
    assert len(path) <= len(names) + 1
