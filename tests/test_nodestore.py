"""Node state store: warm-rejoin durability, load gates, sanitization."""

import json

import pytest

from repro.core.cache import NodeCache
from repro.core.entry import IndexEntry
from repro.core.recovery import RecoveryConfig, RecoveryManager
from repro.persistence import (
    CheckpointFormatError,
    FingerprintMismatch,
    NodeState,
    NodeStore,
    capture_state,
    sanitize_restored,
    state_from_blob,
    state_to_blob,
)
from repro.persistence import nodestore
from repro.replicas.authority import AuthorityIndex

NOW = 1000.0
SELF = "127.0.0.1:7001"
PEER = "127.0.0.1:7002"


def fresh_entry(key, seq=1, lifetime=500.0, timestamp=NOW - 1.0):
    return IndexEntry(key=key, replica_id="r1", address="addr",
                      lifetime=lifetime, timestamp=timestamp,
                      sequence=seq)


class _StubConfig:
    def __init__(self, mode="cup"):
        self.mode = mode


class _StubClock:
    def __init__(self, now=NOW):
        self.now = now


class _StubNode:
    def __init__(self, cache, authority, recovery=None):
        self.cache = cache
        self.authority_index = authority
        self.recovery = recovery


class _StubDaemon:
    """The duck-typed surface capture_state() reads off a LiveNode."""

    def __init__(self, node, node_id=SELF, members=(SELF, PEER),
                 mode="cup", now=NOW):
        self.node = node
        self.node_id = node_id
        self.members = set(members)
        self.config = _StubConfig(mode)
        self.clock = _StubClock(now)


def make_daemon(recovery=None, **kwargs):
    cache = NodeCache()
    state = cache.get_or_create("k1")
    state.apply_entry(fresh_entry("k1", seq=4))
    state.register_interest(PEER)
    return _StubDaemon(_StubNode(cache, AuthorityIndex(), recovery),
                       **kwargs)


def make_recovery():
    # Only the watermark dictionaries matter to export/import; timers
    # and the transport are never touched by the durable path.
    return RecoveryManager(
        sim=None, transport=None, node_id=SELF, metrics=None,
        config=RecoveryConfig(), request_pull=lambda key: None,
    )


def _rewrite_header(blob, **changes):
    end = blob.find(b"\n", len(nodestore.MAGIC))
    header = json.loads(blob[len(nodestore.MAGIC):end])
    header.update(changes)
    head = json.dumps(header, sort_keys=True).encode("utf-8")
    return nodestore.MAGIC + head + b"\n" + blob[end + 1:]


# ----------------------------------------------------------------------
# Round-trip
# ----------------------------------------------------------------------


def test_store_roundtrip(tmp_path):
    daemon = make_daemon()
    store = NodeStore(tmp_path)
    assert store.load() is None  # no snapshot yet -> cold start
    store.save(daemon)
    state = store.load(expect_node_id=SELF, expect_mode="cup")
    assert isinstance(state, NodeState)
    assert state.node_id == SELF
    assert state.members == (SELF, PEER)
    assert state.saved_at == NOW
    restored = state.cache.states["k1"]
    assert restored.interest == {PEER}
    assert max(e.sequence for e in restored.entries.values()) == 4


def test_store_info_reads_header_without_payload(tmp_path):
    store = NodeStore(tmp_path)
    assert store.info() is None
    store.save(make_daemon())
    header = store.info()
    assert header["node_id"] == SELF
    assert header["keys"] == 1
    assert header["format"] == nodestore.FORMAT_VERSION


def test_atomic_overwrite_keeps_single_loadable_file(tmp_path):
    daemon = make_daemon()
    store = NodeStore(tmp_path)
    store.save(daemon)
    daemon.node.cache.get_or_create("k2").apply_entry(fresh_entry("k2"))
    store.save(daemon)
    assert store.saves == 2
    assert sorted(store.load().cache.states) == ["k1", "k2"]
    # No stray temp files left behind by the atomic writer.
    assert [p.name for p in tmp_path.iterdir()] == [
        nodestore.STATE_FILENAME
    ]


# ----------------------------------------------------------------------
# Load gates
# ----------------------------------------------------------------------


def test_bad_magic_rejected():
    with pytest.raises(CheckpointFormatError, match="node state"):
        state_from_blob(b"NOTCUPND\n{}\npayload")


def test_unknown_format_version_rejected():
    blob = _rewrite_header(state_to_blob(capture_state(make_daemon())),
                           format=99)
    with pytest.raises(CheckpointFormatError, match="format 99"):
        state_from_blob(blob)


def test_fingerprint_mismatch_rejected_unless_overridden():
    blob = _rewrite_header(state_to_blob(capture_state(make_daemon())),
                           fingerprint="deadbeef")
    with pytest.raises(FingerprintMismatch):
        state_from_blob(blob)
    state = state_from_blob(blob, verify_fingerprint=False)
    assert state.node_id == SELF


def test_corrupt_payload_rejected(tmp_path):
    blob = state_to_blob(capture_state(make_daemon()))
    with pytest.raises(CheckpointFormatError, match="corrupt"):
        state_from_blob(blob[:-10])


def test_foreign_identity_rejected(tmp_path):
    store = NodeStore(tmp_path)
    store.save(make_daemon())
    with pytest.raises(CheckpointFormatError, match="belongs to node"):
        store.load(expect_node_id="127.0.0.1:9999")
    with pytest.raises(CheckpointFormatError, match="mode"):
        store.load(expect_node_id=SELF, expect_mode="standard")


# ----------------------------------------------------------------------
# Sanitization
# ----------------------------------------------------------------------


def test_sanitize_scrubs_volatile_state_and_keeps_fresh_keys():
    daemon = make_daemon()
    live = daemon.node.cache.states["k1"]
    live.pending_first_update = True
    live.pending_since = 123.0
    live.local_waiters = 3
    live.waiting.add(PEER)
    live.parent_epoch = 7
    state = state_from_blob(state_to_blob(capture_state(daemon)))
    kept = sanitize_restored(state, now=NOW)
    assert kept == 1
    restored = state.cache.states["k1"]
    assert restored.pending_first_update is False
    assert restored.local_waiters == 0
    assert not restored.waiting
    assert restored.parent_epoch == -1
    # The durable bits survive: entries and interest.
    assert restored.interest == {PEER}
    assert restored.has_fresh(NOW)


def test_sanitize_drops_expired_and_empty_keys():
    daemon = make_daemon()
    cache = daemon.node.cache
    stale = cache.get_or_create("stale")
    stale.apply_entry(fresh_entry("stale", lifetime=1.0,
                                  timestamp=NOW - 500.0))
    state = state_from_blob(state_to_blob(capture_state(daemon)))
    kept = sanitize_restored(state, now=NOW)
    assert kept == 1
    assert "stale" not in state.cache.states
    assert "k1" in state.cache.states


# ----------------------------------------------------------------------
# Recovery watermarks ride along
# ----------------------------------------------------------------------


def test_recovery_watermarks_roundtrip_and_max_merge():
    recovery = make_recovery()
    recovery._send_seq[(PEER, "k1")] = 9
    recovery._recv_high[(PEER, "k1")] = 5
    recovery.degraded_keys.add("k9")
    daemon = make_daemon(recovery=recovery)
    state = state_from_blob(state_to_blob(capture_state(daemon)))
    assert state.recovery == {
        "send_seq": {(PEER, "k1"): 9},
        "recv_high": {(PEER, "k1"): 5},
        "degraded": ["k9"],
    }
    target = make_recovery()
    # Max-merge: a higher live watermark must not be rolled back by an
    # older snapshot, while missing links adopt the snapshot's value.
    target._send_seq[(PEER, "k1")] = 12
    target.import_state(state.recovery)
    assert target._send_seq[(PEER, "k1")] == 12
    assert target._recv_high[(PEER, "k1")] == 5
    assert "k9" in target.degraded_keys


def test_open_gaps_fold_into_degraded_on_export():
    recovery = make_recovery()
    recovery._recv_high[(PEER, "gap-key")] = 3
    recovery._gaps[(PEER, "gap-key")] = type(
        "G", (), {"missing": {1, 2}, "retries": 0, "timer": None}
    )()
    exported = recovery.export_state()
    assert "gap-key" in exported["degraded"]
