"""Unit tests for named random streams and block-buffered draws."""

import numpy as np
import pytest

from repro.sim.random import (
    BufferedExponentials,
    BufferedIntegers,
    BufferedUniforms,
    RandomStreams,
)


class TestRandomStreams:
    def test_same_seed_same_stream(self):
        a = RandomStreams(seed=7).get("workload")
        b = RandomStreams(seed=7).get("workload")
        assert list(a.random(10)) == list(b.random(10))

    def test_different_names_are_independent(self):
        streams = RandomStreams(seed=7)
        a = list(streams.get("workload").random(10))
        b = list(streams.get("topology").random(10))
        assert a != b

    def test_consuming_one_stream_leaves_others_untouched(self):
        control = RandomStreams(seed=7)
        expected = list(control.get("workload").random(10))

        perturbed = RandomStreams(seed=7)
        perturbed.get("capacity").random(1000)  # extra draws elsewhere
        assert list(perturbed.get("workload").random(10)) == expected

    def test_get_returns_same_generator_instance(self):
        streams = RandomStreams(seed=7)
        assert streams.get("x") is streams.get("x")

    def test_different_seeds_differ(self):
        a = RandomStreams(seed=1).get("workload")
        b = RandomStreams(seed=2).get("workload")
        assert list(a.random(10)) != list(b.random(10))

    def test_spawn_child_is_deterministic(self):
        a = RandomStreams(seed=7).spawn("replica-1").get("lifetime")
        b = RandomStreams(seed=7).spawn("replica-1").get("lifetime")
        assert list(a.random(5)) == list(b.random(5))

    def test_spawn_children_differ(self):
        root = RandomStreams(seed=7)
        a = root.spawn("r1").get("x")
        b = root.spawn("r2").get("x")
        assert list(a.random(5)) != list(b.random(5))

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            RandomStreams(seed="zero")


class TestBufferedDraws:
    """Block-buffered draws must be bit-identical to scalar draws —
    this is what lets the hot paths batch RNG calls without changing
    any simulation result."""

    def test_uniforms_match_scalar_stream(self):
        scalar = np.random.default_rng(123)
        buffered = BufferedUniforms(np.random.default_rng(123), block=16)
        for _ in range(100):  # crosses several block boundaries
            assert buffered.random() == scalar.random()

    def test_exponentials_match_scalar_stream(self):
        scalar = np.random.default_rng(5)
        buffered = BufferedExponentials(
            np.random.default_rng(5), scale=0.37, block=16
        )
        for _ in range(100):
            assert buffered.next() == float(scalar.exponential(0.37))

    def test_integers_match_scalar_stream(self):
        scalar = np.random.default_rng(9)
        buffered = BufferedIntegers(np.random.default_rng(9), bound=17, block=16)
        for _ in range(100):
            assert buffered.next() == int(scalar.integers(17))

    def test_integers_respect_bound(self):
        buffered = BufferedIntegers(np.random.default_rng(1), bound=3, block=8)
        draws = {buffered.next() for _ in range(200)}
        assert draws == {0, 1, 2}

    def test_uniform_values_are_plain_floats(self):
        buffered = BufferedUniforms(np.random.default_rng(1))
        assert type(buffered.random()) is float

    def test_invalid_parameters_rejected(self):
        rng = np.random.default_rng(1)
        with pytest.raises(ValueError):
            BufferedUniforms(rng, block=0)
        with pytest.raises(ValueError):
            BufferedIntegers(rng, bound=0)
        with pytest.raises(ValueError):
            BufferedExponentials(rng, scale=1.0, block=-1)
