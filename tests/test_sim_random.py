"""Unit tests for named random streams."""

import pytest

from repro.sim.random import RandomStreams


class TestRandomStreams:
    def test_same_seed_same_stream(self):
        a = RandomStreams(seed=7).get("workload")
        b = RandomStreams(seed=7).get("workload")
        assert list(a.random(10)) == list(b.random(10))

    def test_different_names_are_independent(self):
        streams = RandomStreams(seed=7)
        a = list(streams.get("workload").random(10))
        b = list(streams.get("topology").random(10))
        assert a != b

    def test_consuming_one_stream_leaves_others_untouched(self):
        control = RandomStreams(seed=7)
        expected = list(control.get("workload").random(10))

        perturbed = RandomStreams(seed=7)
        perturbed.get("capacity").random(1000)  # extra draws elsewhere
        assert list(perturbed.get("workload").random(10)) == expected

    def test_get_returns_same_generator_instance(self):
        streams = RandomStreams(seed=7)
        assert streams.get("x") is streams.get("x")

    def test_different_seeds_differ(self):
        a = RandomStreams(seed=1).get("workload")
        b = RandomStreams(seed=2).get("workload")
        assert list(a.random(10)) != list(b.random(10))

    def test_spawn_child_is_deterministic(self):
        a = RandomStreams(seed=7).spawn("replica-1").get("lifetime")
        b = RandomStreams(seed=7).spawn("replica-1").get("lifetime")
        assert list(a.random(5)) == list(b.random(5))

    def test_spawn_children_differ(self):
        root = RandomStreams(seed=7)
        a = root.spawn("r1").get("x")
        b = root.spawn("r2").get("x")
        assert list(a.random(5)) != list(b.random(5))

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            RandomStreams(seed="zero")
