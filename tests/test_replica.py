"""Unit tests for replica lifecycle processes."""

import numpy as np
import pytest

from repro.overlay.can import CanOverlay
from repro.replicas.replica import Replica, ReplicaSet
from repro.sim.engine import Simulator
from repro.sim.network import Transport


class Sink:
    """Records replica messages delivered to an authority node."""

    def __init__(self):
        self.messages = []

    def receive(self, message, sender):
        self.messages.append(message)


def harness():
    sim = Simulator()
    net = Transport(sim, default_delay=0.01)
    overlay = CanOverlay.perfect_grid(4)
    sinks = {node_id: Sink() for node_id in overlay.node_ids()}
    for node_id, sink in sinks.items():
        net.register(node_id, sink)
    return sim, net, overlay, sinks


def authority_sink(overlay, sinks, key):
    return sinks[overlay.authority(key)]


class TestReplica:
    def test_birth_announces_to_authority(self):
        sim, net, overlay, sinks = harness()
        replica = Replica(sim, net, overlay, "k", "k/r0", lifetime=50.0)
        replica.birth()
        sim.run_until(1.0)
        sink = authority_sink(overlay, sinks, "k")
        assert [m.event.value for m in sink.messages] == ["birth"]

    def test_refreshes_at_expiration(self):
        sim, net, overlay, sinks = harness()
        replica = Replica(sim, net, overlay, "k", "k/r0", lifetime=50.0)
        replica.birth()
        sim.run_until(120.0)
        sink = authority_sink(overlay, sinks, "k")
        events = [m.event.value for m in sink.messages]
        assert events == ["birth", "refresh", "refresh"]
        assert replica.refreshes == 2

    def test_graceful_death_sends_deletion(self):
        sim, net, overlay, sinks = harness()
        replica = Replica(sim, net, overlay, "k", "k/r0", lifetime=50.0)
        replica.birth()
        sim.run_until(10.0)
        replica.die(graceful=True)
        sim.run_until(200.0)
        sink = authority_sink(overlay, sinks, "k")
        events = [m.event.value for m in sink.messages]
        assert events == ["birth", "death"]  # no refreshes after death

    def test_silent_death_stops_refreshes(self):
        sim, net, overlay, sinks = harness()
        replica = Replica(sim, net, overlay, "k", "k/r0", lifetime=50.0)
        replica.birth()
        sim.run_until(10.0)
        replica.die(graceful=False)
        sim.run_until(200.0)
        sink = authority_sink(overlay, sinks, "k")
        assert [m.event.value for m in sink.messages] == ["birth"]

    def test_double_birth_rejected(self):
        sim, net, overlay, _ = harness()
        replica = Replica(sim, net, overlay, "k", "k/r0", lifetime=50.0)
        replica.birth()
        with pytest.raises(RuntimeError):
            replica.birth()

    def test_die_idempotent(self):
        sim, net, overlay, _ = harness()
        replica = Replica(sim, net, overlay, "k", "k/r0", lifetime=50.0)
        replica.birth()
        replica.die()
        replica.die()

    def test_invalid_lifetime(self):
        sim, net, overlay, _ = harness()
        with pytest.raises(ValueError):
            Replica(sim, net, overlay, "k", "k/r0", lifetime=0.0)


class TestReplicaSet:
    def test_population_size(self):
        sim, net, overlay, _ = harness()
        replicas = ReplicaSet(
            sim, net, overlay, ["a", "b"], replicas_per_key=3,
            lifetime=50.0, rng=np.random.default_rng(1),
        )
        assert len(replicas) == 6
        assert len(replicas.by_key["a"]) == 3

    def test_births_staggered_within_lifetime(self):
        sim, net, overlay, _ = harness()
        replicas = ReplicaSet(
            sim, net, overlay, ["a"], replicas_per_key=20,
            lifetime=50.0, rng=np.random.default_rng(1),
        )
        replicas.schedule_births(at=0.0)
        sim.run_until(50.0)
        assert replicas.live_count() == 20
        offsets = list(replicas._birth_offsets.values())
        assert min(offsets) >= 0.0
        assert max(offsets) < 50.0
        assert len(set(round(o, 6) for o in offsets)) > 1

    def test_unstaggered_births_fire_together(self):
        sim, net, overlay, _ = harness()
        replicas = ReplicaSet(
            sim, net, overlay, ["a"], replicas_per_key=5,
            lifetime=50.0, rng=np.random.default_rng(1), stagger=False,
        )
        replicas.schedule_births(at=3.0)
        sim.run_until(3.0)
        assert replicas.live_count() == 5

    def test_kill_fraction(self):
        sim, net, overlay, _ = harness()
        replicas = ReplicaSet(
            sim, net, overlay, ["a"], replicas_per_key=10,
            lifetime=50.0, rng=np.random.default_rng(1), stagger=False,
        )
        replicas.schedule_births(at=0.0)
        sim.run_until(1.0)
        killed = replicas.kill_fraction(0.5, np.random.default_rng(2))
        assert len(killed) == 5
        assert replicas.live_count() == 5

    def test_kill_fraction_bounds(self):
        sim, net, overlay, _ = harness()
        replicas = ReplicaSet(
            sim, net, overlay, ["a"], replicas_per_key=2,
            lifetime=50.0, rng=np.random.default_rng(1),
        )
        with pytest.raises(ValueError):
            replicas.kill_fraction(1.5, np.random.default_rng(2))

    def test_negative_replica_count_rejected(self):
        sim, net, overlay, _ = harness()
        with pytest.raises(ValueError):
            ReplicaSet(
                sim, net, overlay, ["a"], replicas_per_key=-1,
                lifetime=50.0, rng=np.random.default_rng(1),
            )
