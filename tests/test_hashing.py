"""Unit tests for the uniform hash helpers."""

import pytest

from repro.overlay.hashing import hash_to_int, hash_to_unit_point


class TestHashToUnitPoint:
    def test_deterministic(self):
        assert hash_to_unit_point("k") == hash_to_unit_point("k")

    def test_within_unit_cube(self):
        for key in ("a", "b", "some/long/path.mp3", ""):
            point = hash_to_unit_point(key, dims=2)
            assert all(0.0 <= c < 1.0 for c in point)

    def test_dims_respected(self):
        for dims in (1, 2, 3, 4):
            assert len(hash_to_unit_point("k", dims=dims)) == dims

    def test_dims_out_of_range(self):
        with pytest.raises(ValueError):
            hash_to_unit_point("k", dims=0)
        with pytest.raises(ValueError):
            hash_to_unit_point("k", dims=5)

    def test_salt_changes_point(self):
        assert hash_to_unit_point("k") != hash_to_unit_point("k", salt="s")

    def test_distinct_keys_distinct_points(self):
        points = {hash_to_unit_point(f"key-{i}") for i in range(1000)}
        assert len(points) == 1000

    def test_roughly_uniform_spread(self):
        # Quadrant counts of 4000 hashed keys should be within 25% of even.
        counts = [0, 0, 0, 0]
        for i in range(4000):
            x, y = hash_to_unit_point(f"key-{i}")
            counts[(x >= 0.5) * 2 + (y >= 0.5)] += 1
        for c in counts:
            assert 750 <= c <= 1250

    def test_non_string_key_rejected(self):
        with pytest.raises(TypeError):
            hash_to_unit_point(42)


class TestHashToInt:
    def test_deterministic(self):
        assert hash_to_int("k", 32) == hash_to_int("k", 32)

    def test_range(self):
        for bits in (3, 8, 32, 64, 160):
            value = hash_to_int("some-key", bits)
            assert 0 <= value < (1 << bits)

    def test_bits_out_of_range(self):
        with pytest.raises(ValueError):
            hash_to_int("k", 0)
        with pytest.raises(ValueError):
            hash_to_int("k", 161)

    def test_salt_separates_namespaces(self):
        assert hash_to_int("k", 32, salt="node") != hash_to_int(
            "k", 32, salt="key"
        )
