"""Tests for workload generation: arrivals, key selection, faults, churn."""

import numpy as np
import pytest

from repro.sim.engine import Simulator
from repro.workload.arrivals import DeterministicArrivals, PoissonArrivals
from repro.workload.churn import ChurnSchedule
from repro.workload.faults import (
    CapacityFaultSchedule,
    once_down_always_down,
    up_and_down,
)
from repro.workload.generator import QueryWorkload, uniform_node_selector
from repro.workload.keyspace import FlashCrowdKeys, UniformKeys, ZipfKeys


class TestPoissonArrivals:
    def test_mean_inter_arrival(self):
        arrivals = PoissonArrivals(rate=4.0, rng=np.random.default_rng(1))
        gaps = [arrivals.next_gap() for _ in range(20_000)]
        assert np.mean(gaps) == pytest.approx(0.25, rel=0.05)

    def test_gaps_positive(self):
        arrivals = PoissonArrivals(rate=10.0, rng=np.random.default_rng(1))
        assert all(arrivals.next_gap() >= 0 for _ in range(100))

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            PoissonArrivals(rate=0.0, rng=np.random.default_rng(1))

    def test_iterable(self):
        arrivals = PoissonArrivals(rate=1.0, rng=np.random.default_rng(1))
        count = sum(1 for _, __ in zip(range(5), arrivals))
        assert count == 5


class TestDeterministicArrivals:
    def test_yields_in_order(self):
        arrivals = DeterministicArrivals([1.0, 2.0, 0.5])
        assert [arrivals.next_gap() for _ in range(3)] == [1.0, 2.0, 0.5]

    def test_exhaustion_raises_stop(self):
        arrivals = DeterministicArrivals([1.0])
        arrivals.next_gap()
        with pytest.raises(StopIteration):
            arrivals.next_gap()

    def test_negative_gap_rejected(self):
        with pytest.raises(ValueError):
            DeterministicArrivals([1.0, -0.5])

    def test_remaining(self):
        arrivals = DeterministicArrivals([1.0, 2.0])
        arrivals.next_gap()
        assert arrivals.remaining == 1


class TestKeySelectors:
    def test_uniform_covers_keys(self):
        keys = [f"k{i}" for i in range(8)]
        selector = UniformKeys(keys, np.random.default_rng(1))
        seen = {selector.select(0.0) for _ in range(500)}
        assert seen == set(keys)

    def test_uniform_requires_keys(self):
        with pytest.raises(ValueError):
            UniformKeys([], np.random.default_rng(1))

    def test_zipf_concentrates_on_head(self):
        keys = [f"k{i}" for i in range(100)]
        selector = ZipfKeys(keys, s=1.2, rng=np.random.default_rng(1))
        from collections import Counter

        counts = Counter(selector.select(0.0) for _ in range(20_000))
        top_share = counts.most_common(1)[0][1] / 20_000
        assert top_share > 0.15  # rank-1 share for s=1.2 over 100 keys

    def test_zipf_probability_sums_to_one(self):
        keys = [f"k{i}" for i in range(10)]
        selector = ZipfKeys(keys, s=0.8, rng=np.random.default_rng(1))
        total = sum(selector.probability(r) for r in range(1, 11))
        assert total == pytest.approx(1.0)

    def test_zipf_probabilities_decrease_by_rank(self):
        keys = [f"k{i}" for i in range(10)]
        selector = ZipfKeys(keys, s=1.0, rng=np.random.default_rng(1))
        probs = [selector.probability(r) for r in range(1, 11)]
        assert probs == sorted(probs, reverse=True)

    def test_zipf_invalid_exponent(self):
        with pytest.raises(ValueError):
            ZipfKeys(["a"], s=-1.0, rng=np.random.default_rng(1))

    def test_flash_crowd_window(self):
        base = UniformKeys(["cold1", "cold2"], np.random.default_rng(1))
        selector = FlashCrowdKeys(
            base, hot_key="hot", start=10.0, end=20.0, hot_share=1.0,
            rng=np.random.default_rng(2),
        )
        assert selector.select(15.0) == "hot"
        assert selector.select(5.0) != "hot"
        assert selector.select(25.0) != "hot"

    def test_flash_crowd_share(self):
        base = UniformKeys(["cold"], np.random.default_rng(1))
        selector = FlashCrowdKeys(
            base, "hot", 0.0, 100.0, hot_share=0.5,
            rng=np.random.default_rng(2),
        )
        picks = [selector.select(1.0) for _ in range(4000)]
        share = picks.count("hot") / len(picks)
        assert 0.45 <= share <= 0.55

    def test_flash_crowd_validation(self):
        base = UniformKeys(["c"], np.random.default_rng(1))
        with pytest.raises(ValueError):
            FlashCrowdKeys(base, "h", 10.0, 5.0, 0.5, np.random.default_rng(2))
        with pytest.raises(ValueError):
            FlashCrowdKeys(base, "h", 0.0, 5.0, 1.5, np.random.default_rng(2))


class TestQueryWorkload:
    def run_workload(self, gaps, start=10.0, duration=100.0):
        sim = Simulator()
        posted = []
        workload = QueryWorkload(
            sim=sim,
            arrivals=DeterministicArrivals(gaps),
            key_selector=UniformKeys(["k"], np.random.default_rng(1)),
            node_selector=lambda now: "n0",
            post_fn=lambda node, key: posted.append((sim.now, node, key)),
            start=start,
            duration=duration,
        )
        workload.begin()
        sim.run()
        return workload, posted

    def test_posts_at_expected_times(self):
        _, posted = self.run_workload([1.0, 2.0, 3.0])
        assert [t for t, _, __ in posted] == [11.0, 13.0, 16.0]

    def test_respects_end_of_window(self):
        _, posted = self.run_workload([1.0, 200.0], duration=100.0)
        assert len(posted) == 1

    def test_stop_halts_posting(self):
        sim = Simulator()
        posted = []
        workload = QueryWorkload(
            sim=sim,
            arrivals=DeterministicArrivals([1.0, 1.0, 1.0]),
            key_selector=UniformKeys(["k"], np.random.default_rng(1)),
            node_selector=lambda now: "n0",
            post_fn=lambda node, key: posted.append(sim.now),
            start=0.0,
            duration=100.0,
        )
        workload.begin()
        sim.run_until(1.5)
        workload.stop()
        sim.run()
        assert len(posted) == 1

    def test_posted_counter(self):
        workload, posted = self.run_workload([1.0, 1.0])
        assert workload.posted == len(posted) == 2

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            self.run_workload([1.0], duration=0.0)

    def test_uniform_node_selector_draws_members(self):
        rng = np.random.default_rng(1)
        selector = uniform_node_selector(lambda: ["a", "b", "c"], rng)
        seen = {selector(0.0) for _ in range(100)}
        assert seen == {"a", "b", "c"}

    def test_uniform_node_selector_empty_raises(self):
        selector = uniform_node_selector(lambda: [], np.random.default_rng(1))
        with pytest.raises(RuntimeError):
            selector(0.0)


class FakeCapacityTarget:
    def __init__(self):
        self.calls = []

    def set_capacity(self, node_id, capacity):
        self.calls.append((node_id, capacity.fraction))


class TestCapacityFaults:
    def make(self, sim, fraction=0.5, reduced=0.25):
        target = FakeCapacityTarget()
        schedule = CapacityFaultSchedule(
            sim, [f"n{i}" for i in range(10)], target.set_capacity,
            fraction=fraction, reduced=reduced,
            rng=np.random.default_rng(3),
        )
        return target, schedule

    def test_degrade_selects_fraction(self):
        sim = Simulator()
        target, schedule = self.make(sim)
        schedule.degrade()
        assert len(schedule.currently_degraded) == 5
        assert all(f == 0.25 for _, f in target.calls)

    def test_restore_returns_to_full(self):
        sim = Simulator()
        target, schedule = self.make(sim)
        schedule.degrade()
        schedule.restore()
        assert schedule.currently_degraded == []
        assert target.calls[-1][1] == 1.0

    def test_up_and_down_episodes(self):
        sim = Simulator()
        target, schedule = self.make(sim)
        up_and_down(schedule, start=0.0, end=3000.0,
                    warmup=300.0, down_for=600.0, stable_for=300.0)
        sim.run_until(3000.0)
        events = [e for _, e in schedule.log]
        assert events[0].startswith("degrade")
        assert any(e.startswith("restore") for e in events)
        assert len([e for e in events if e.startswith("degrade")]) >= 2

    def test_once_down_stays_down(self):
        sim = Simulator()
        target, schedule = self.make(sim)
        once_down_always_down(schedule, start=0.0, warmup=100.0)
        sim.run_until(5000.0)
        assert len(schedule.currently_degraded) == 5

    def test_fresh_victims_each_episode(self):
        sim = Simulator()
        target, schedule = self.make(sim)
        schedule.degrade()
        first = set(schedule.currently_degraded)
        schedule.degrade()  # implicit restore + new victims
        second = set(schedule.currently_degraded)
        assert len(first) == len(second) == 5
        # (sets may overlap, but the restore happened)
        restores = [e for _, e in schedule.log if e.startswith("restore")]
        assert restores

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            CapacityFaultSchedule(
                sim, ["a"], lambda n, c: None, fraction=2.0, reduced=0.5,
                rng=np.random.default_rng(1),
            )


class FakeChurnTarget:
    def __init__(self):
        self.members = [f"n{i}" for i in range(6)]
        self.events = []

    def join_node(self, node_id):
        self.members.append(node_id)
        self.events.append(("join", node_id))

    def leave_node(self, node_id, graceful=True):
        self.members.remove(node_id)
        self.events.append(("leave", node_id, graceful))

    def live_node_ids(self):
        return list(self.members)


class TestChurnSchedule:
    def test_scripted_join_and_leave(self):
        sim = Simulator()
        target = FakeChurnTarget()
        schedule = ChurnSchedule(sim, target)
        schedule.schedule_join(5.0, "newbie")
        schedule.schedule_leave(10.0, "n0")
        sim.run()
        assert ("join", "newbie") in target.events
        assert ("leave", "n0", True) in target.events

    def test_leave_of_departed_node_is_noop(self):
        sim = Simulator()
        target = FakeChurnTarget()
        schedule = ChurnSchedule(sim, target)
        schedule.schedule_leave(1.0, "n0")
        schedule.schedule_leave(2.0, "n0")
        sim.run()
        assert len([e for e in target.events if e[0] == "leave"]) == 1

    def test_poisson_churn_schedules_events(self):
        sim = Simulator()
        target = FakeChurnTarget()
        schedule = ChurnSchedule(sim, target)
        count = schedule.poisson(
            rate=0.1, start=0.0, end=500.0, rng=np.random.default_rng(5)
        )
        sim.run()
        assert count > 0
        assert len(schedule.log) <= count  # some leaves may be no-ops

    def test_poisson_keeps_minimum_network(self):
        sim = Simulator()
        target = FakeChurnTarget()
        schedule = ChurnSchedule(sim, target)
        schedule.poisson(
            rate=1.0, start=0.0, end=200.0, rng=np.random.default_rng(5),
            join_fraction=0.0,  # departures only
        )
        sim.run()
        assert len(target.members) >= 2

    def test_invalid_rate(self):
        schedule = ChurnSchedule(Simulator(), FakeChurnTarget())
        with pytest.raises(ValueError):
            schedule.poisson(0.0, 0.0, 10.0, np.random.default_rng(1))
