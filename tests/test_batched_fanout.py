"""Batched fan-out ≡ per-child reference path.

The batched update fan-out (one shared payload + k envelopes through a
single transport call, grouped same-delay delivery) must be *observably
identical* to the retained per-child path (`batched_fanout=False`): same
``MetricsSummary``, same invariant-checker verdicts, same per-node cache
state, same transport totals, and the same ``events_processed`` (grouped
deliveries count one processed event per delivered message by design).

Covered deterministically for every built-in scenario — churn,
partitions, flash crowds, capacity faults and the perfect storm all
composed in — and fuzzed by hypothesis over configs that exercise the
rate pump and fractional capacity (where the per-child path is the only
legal one) alongside full-capacity batching.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.protocol import CupConfig, CupNetwork
from repro.scenarios import SCENARIOS
from repro.scenarios.dsl import default_base_config
from repro.scenarios.runner import run_scenario


def _node_cache_state(net: CupNetwork) -> dict:
    """Canonical per-node cache picture for equality comparison."""
    picture = {}
    for node_id, node in net.nodes.items():
        states = {}
        for state in node.cache:
            states[state.key] = (
                tuple(sorted(
                    (rid, e.sequence, e.timestamp, e.lifetime, e.address)
                    for rid, e in state.entries.items()
                )),
                frozenset(state.interest),
                frozenset(state.waiting),
                state.local_waiters,
                state.popularity,
                state.pending_first_update,
                state.designated_replica,
                state.clear_bit_sent,
            )
        picture[node_id] = states
    return picture


def _transport_totals(net: CupNetwork) -> tuple:
    t = net.transport
    return (t.sent, t.sent_direct, t.delivered, t.dropped, t.blocked)


def _run_config_both_paths(config: CupConfig):
    batched = CupNetwork(config.variant(batched_fanout=True))
    reference = CupNetwork(config.variant(batched_fanout=False))
    return (
        (batched, batched.run()),
        (reference, reference.run()),
    )


def _assert_equivalent(batched_pair, reference_pair):
    (batched_net, batched_summary) = batched_pair
    (reference_net, reference_summary) = reference_pair
    assert batched_summary == reference_summary
    assert _transport_totals(batched_net) == _transport_totals(reference_net)
    assert (
        batched_net.sim.events_processed
        == reference_net.sim.events_processed
    )
    assert _node_cache_state(batched_net) == _node_cache_state(reference_net)


BASE = CupConfig(
    num_nodes=64, total_keys=4, query_rate=4.0, seed=11,
    entry_lifetime=60.0, query_start=60.0, query_duration=240.0, drain=60.0,
    gc_interval=60.0,
)


class TestDeterministicEquivalence:
    def test_plain_cup_run(self):
        _assert_equivalent(*_run_config_both_paths(BASE))

    def test_multi_replica_zipf(self):
        config = BASE.variant(
            replicas_per_key=3, key_distribution="zipf", seed=5
        )
        _assert_equivalent(*_run_config_both_paths(config))

    def test_rate_limited_channels(self):
        # The pump path never batches; both flags must still agree.
        config = BASE.variant(capacity_rate=5.0)
        _assert_equivalent(*_run_config_both_paths(config))

    def test_fractional_capacity(self):
        config = BASE.variant(capacity_fraction=0.5)
        _assert_equivalent(*_run_config_both_paths(config))

    def test_push_level_gate(self):
        # A gating policy bypasses the inlined no-gate fast path.
        config = BASE.variant(policy="push-level:3")
        _assert_equivalent(*_run_config_both_paths(config))

    def test_standard_caching_baseline(self):
        config = BASE.variant(mode="standard")
        _assert_equivalent(*_run_config_both_paths(config))

    @pytest.mark.parametrize("overlay_type", ["chord", "pastry"])
    def test_other_overlays(self, overlay_type):
        config = BASE.variant(overlay_type=overlay_type, num_nodes=48)
        _assert_equivalent(*_run_config_both_paths(config))


class TestScenarioEquivalence:
    """Batched ≡ per-child under every built-in adversarial scenario.

    Churn and partitions exercise the paths batching must respect:
    envelopes crossing a partition are dropped per child by the rule
    layer, and deliveries to departed nodes are dropped at delivery
    time whether grouped or not.
    """

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_builtin_scenario(self, name):
        scenario = SCENARIOS[name]
        results = {}
        for batched in (True, False):
            result = run_scenario(
                scenario,
                seed=42,
                invariants=True,
                raise_on_violation=False,
                base_config=default_base_config().variant(
                    batched_fanout=batched
                ),
            )
            assert result.ok, (name, batched, result.violations)
            results[batched] = result
        assert results[True].summary == results[False].summary
        assert (
            results[True].checker.updates_seen
            == results[False].checker.updates_seen
        )


@given(
    seed=st.integers(min_value=0, max_value=2**20),
    num_nodes=st.sampled_from([16, 32, 64]),
    total_keys=st.integers(min_value=1, max_value=4),
    replicas=st.integers(min_value=1, max_value=2),
    capacity=st.sampled_from([
        (1.0, None), (0.6, None), (1.0, 8.0), (0.8, 4.0),
    ]),
    mode=st.sampled_from(["cup", "standard-coalescing"]),
)
@settings(max_examples=12, deadline=None)
def test_batched_equals_reference_fuzz(
    seed, num_nodes, total_keys, replicas, capacity, mode
):
    fraction, rate = capacity
    config = CupConfig(
        num_nodes=num_nodes,
        total_keys=total_keys,
        replicas_per_key=replicas,
        capacity_fraction=fraction,
        capacity_rate=rate,
        mode=mode,
        query_rate=3.0,
        seed=seed,
        entry_lifetime=40.0,
        query_start=40.0,
        query_duration=120.0,
        drain=40.0,
        gc_interval=40.0,
    )
    _assert_equivalent(*_run_config_both_paths(config))


class TestFaultedFanoutEquivalence:
    """Per-recipient fault evaluation is identical in both fan-out modes.

    With a ``LinkFaults`` rule installed the batched path must abandon
    grouped delivery and make one independent loss/duplicate/jitter draw
    per child — the same draws, in the same stream order, as the
    per-child reference path.  A single whole-batch decision (or a
    different draw order) would diverge immediately: the seeded fault
    stream is consumed once per recipient.
    """

    def _faulted_run(self, batched: bool):
        from repro.sim.network import LinkFaults

        config = BASE.variant(batched_fanout=batched, seed=23)
        net = CupNetwork(config)
        handle = {}

        def install():
            spec = LinkFaults(
                net.streams.get("link-faults"),
                loss=0.15, duplicate=0.1, jitter=0.05,
            )
            handle["id"] = net.transport.add_link_faults(spec)

        net.sim.schedule_at(config.query_start, install)
        net.sim.schedule_at(
            config.query_start + 120.0,
            lambda: net.transport.remove_link_faults(handle["id"]),
        )
        summary = net.run()
        return net, summary

    def test_link_faults_evaluated_per_recipient_in_both_modes(self):
        batched_net, batched_summary = self._faulted_run(batched=True)
        reference_net, reference_summary = self._faulted_run(batched=False)
        assert batched_summary == reference_summary
        for counter in ("lost", "duplicated", "reordered"):
            assert getattr(batched_net.transport, counter) == getattr(
                reference_net.transport, counter
            ), counter
        assert batched_net.transport.lost > 0
        assert _transport_totals(batched_net) == _transport_totals(
            reference_net
        )
        assert _node_cache_state(batched_net) == _node_cache_state(
            reference_net
        )
