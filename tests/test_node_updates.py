"""Node-level tests for update handling (§2.6-§2.8) on a line topology."""

from helpers import MicroNet

from repro.core.channels import CapacityConfig
from repro.core.entry import IndexEntry
from repro.core.messages import UpdateMessage, UpdateType
from repro.core.policies import AllOutPolicy, SecondChancePolicy


def subscribe_chain(net, key="k", depth=3, lifetime=100.0):
    """Seed the authority and subscribe n1..n_depth via one query."""
    net.seed_authority(key, lifetime=lifetime)
    net.node(depth).post_local_query(key)
    net.settle()


class TestRefreshPropagation:
    def test_refresh_flows_to_interested_chain(self):
        net = MicroNet(policy=AllOutPolicy())
        subscribe_chain(net)
        hops_before = net.metrics.update_hops[UpdateType.REFRESH]
        net.refresh_authority("k")
        net.settle()
        assert net.metrics.update_hops[UpdateType.REFRESH] == hops_before + 3

    def test_refresh_extends_cache_freshness(self):
        net = MicroNet(policy=AllOutPolicy())
        subscribe_chain(net, lifetime=50.0)
        net.sim.run_until(45.0)
        net.refresh_authority("k", lifetime=50.0)
        net.settle()
        net.sim.run_until(70.0)  # past the original expiry
        assert net.node(3).cache.get("k").has_fresh(net.sim.now)

    def test_uninterested_nodes_receive_nothing(self):
        net = MicroNet(policy=AllOutPolicy())
        net.seed_authority("k")
        net.node(1).post_local_query("k")  # only n1 subscribes
        net.settle()
        net.refresh_authority("k")
        net.settle()
        assert net.node(2).cache.get("k") is None
        assert net.node(3).cache.get("k") is None

    def test_standard_mode_propagates_no_refreshes(self):
        net = MicroNet(coalesce=False, persistent_interest=False)
        subscribe_chain(net)
        net.refresh_authority("k")
        net.settle()
        assert net.metrics.update_hops[UpdateType.REFRESH] == 0
        assert net.metrics.overhead_cost == 0


class TestDeletePropagation:
    def test_delete_removes_cached_entries_downstream(self):
        net = MicroNet(policy=AllOutPolicy())
        subscribe_chain(net)
        assert net.node(3).cache.get("k").entries
        from repro.core.messages import ReplicaEvent, ReplicaMessage

        net.authority.receive(
            ReplicaMessage(ReplicaEvent.DEATH, "k", "k/r0", "addr", 100.0),
            None,
        )
        net.settle()
        assert net.node(3).cache.get("k").entries == {}
        assert net.metrics.update_hops[UpdateType.DELETE] == 3

    def test_append_adds_new_replica_downstream(self):
        net = MicroNet(policy=AllOutPolicy())
        subscribe_chain(net)
        from repro.core.messages import ReplicaEvent, ReplicaMessage

        net.authority.receive(
            ReplicaMessage(ReplicaEvent.BIRTH, "k", "k/r9", "addr9", 100.0),
            None,
        )
        net.settle()
        assert "k/r9" in net.node(3).cache.get("k").entries


class TestUpdateValidity:
    def test_expired_update_dropped_on_arrival(self):
        net = MicroNet(policy=AllOutPolicy())
        subscribe_chain(net)
        stale = UpdateMessage(
            "k", UpdateType.REFRESH,
            (IndexEntry("k", "k/r0", "addr", 1.0, net.sim.now - 10.0, 99),),
            "k/r0", net.sim.now - 10.0,
        )
        net.transport.send("n1", "n2", stale)
        dropped_before = net.metrics.updates_dropped_expired
        net.settle()
        assert net.metrics.updates_dropped_expired == dropped_before + 1

    def test_stale_sequence_discarded_not_forwarded(self):
        net = MicroNet(policy=AllOutPolicy())
        subscribe_chain(net)
        net.refresh_authority("k")  # sequence 2 propagates
        net.settle()
        old = UpdateMessage(
            "k", UpdateType.REFRESH,
            (IndexEntry("k", "k/r0", "addr", 100.0, net.sim.now, 1),),
            "k/r0", net.sim.now,
        )
        refresh_hops = net.metrics.update_hops[UpdateType.REFRESH]
        net.transport.send("n0", "n1", old)
        net.settle()
        assert net.metrics.updates_stale_discarded == 1
        # The stale copy cost its own hop but was not re-forwarded.
        assert net.metrics.update_hops[UpdateType.REFRESH] == refresh_hops + 1


class TestSecondChanceCutoff:
    def test_two_idle_intervals_cut_the_leaf(self):
        net = MicroNet(policy=SecondChancePolicy())
        subscribe_chain(net)
        net.refresh_authority("k")  # strike 1 at n3 (no queries since)
        net.settle()
        net.refresh_authority("k")  # strike 2 -> clear-bit
        net.settle()
        assert net.metrics.clear_bits_sent >= 1
        assert "n3" not in net.node(2).cache.get("k").interest

    def test_cut_node_stops_receiving(self):
        net = MicroNet(policy=SecondChancePolicy())
        subscribe_chain(net)
        for _ in range(4):
            net.refresh_authority("k")
            net.settle()
        seq_at_cut = max(
            e.sequence for e in net.node(3).cache.get("k").entries.values()
        )
        net.refresh_authority("k")
        net.settle()
        seq_after = max(
            e.sequence for e in net.node(3).cache.get("k").entries.values()
        )
        assert seq_after == seq_at_cut

    def test_queries_keep_subscription_alive(self):
        net = MicroNet(policy=SecondChancePolicy())
        subscribe_chain(net)
        for _ in range(4):
            net.node(3).post_local_query("k")  # stays popular
            net.refresh_authority("k")
            net.settle()
        assert "n3" in net.node(2).cache.get("k").interest
        assert net.metrics.clear_bits_sent == 0

    def test_clear_bit_cascades_when_chain_idle(self):
        net = MicroNet(policy=SecondChancePolicy())
        subscribe_chain(net)
        for _ in range(5):
            net.refresh_authority("k")
            net.settle()
        # Leaf cut first, then intermediates; eventually the authority's
        # own interest bit for n1 clears.
        assert net.node(0).cache.get("k").interest == set()

    def test_requery_resubscribes_after_cut(self):
        net = MicroNet(policy=SecondChancePolicy())
        subscribe_chain(net, lifetime=30.0)
        for _ in range(3):
            net.refresh_authority("k", lifetime=30.0)
            net.settle()
        assert net.node(0).cache.get("k").interest == set()
        net.sim.run_until(net.sim.now + 40.0)  # let entries expire
        net.node(3).post_local_query("k")
        net.settle()
        assert "n3" in net.node(2).cache.get("k").interest
        net.refresh_authority("k", lifetime=30.0)
        net.settle()
        assert net.node(3).cache.get("k").has_fresh(net.sim.now)


class TestPushLevelGating:
    def test_updates_stop_at_level(self):
        net = MicroNet(policy=AllOutPolicy(push_level=1))
        subscribe_chain(net)
        net.refresh_authority("k")
        net.settle()
        # Authority (depth 0) may forward to depth 1; n1 may not forward.
        assert net.metrics.update_hops[UpdateType.REFRESH] == 1
        assert net.metrics.updates_suppressed >= 1

    def test_level_zero_squelches_everything(self):
        net = MicroNet(policy=AllOutPolicy(push_level=0))
        subscribe_chain(net)
        net.refresh_authority("k")
        net.settle()
        assert net.metrics.update_hops[UpdateType.REFRESH] == 0

    def test_responses_flow_despite_level_zero(self):
        net = MicroNet(policy=AllOutPolicy(push_level=0))
        net.seed_authority("k")
        net.node(3).post_local_query("k")
        net.settle()
        assert net.metrics.answers_delivered == 1

    def test_waiter_rescued_when_maintenance_gated(self):
        # A refresh that doubles as the response must still reach waiting
        # downstream queriers even when the push-level gate blocks it.
        net = MicroNet(policy=AllOutPolicy(push_level=1), pfu_timeout=1000.0)
        net.seed_authority("k", lifetime=30.0)
        net.node(3).post_local_query("k")
        net.settle()
        net.sim.run_until(net.sim.now + 40.0)  # all entries expire
        net.node(3).post_local_query("k")  # freshness miss chain
        net.settle()
        assert net.metrics.answers_delivered == 2


class TestCapacity:
    def test_zero_capacity_degrades_to_standard(self):
        net = MicroNet(
            policy=AllOutPolicy(), capacity=CapacityConfig(fraction=0.0)
        )
        subscribe_chain(net)
        net.refresh_authority("k")
        net.settle()
        assert net.metrics.update_hops[UpdateType.REFRESH] == 0
        # But queries are still answered (responses bypass the fraction).
        net.sim.run_until(net.sim.now + 150.0)
        net.node(3).post_local_query("k")
        net.settle()
        assert net.metrics.answers_delivered == 2

    def test_rate_capacity_defers_refreshes(self):
        net = MicroNet(
            policy=AllOutPolicy(), capacity=CapacityConfig(rate=0.5)
        )
        subscribe_chain(net)
        net.refresh_authority("k")
        net.sim.run_until(net.sim.now + 1.0)
        first_leg = net.metrics.update_hops[UpdateType.REFRESH]
        net.sim.run_until(net.sim.now + 10.0)
        assert net.metrics.update_hops[UpdateType.REFRESH] >= first_leg
        assert net.metrics.update_hops[UpdateType.REFRESH] == 3

    def test_set_capacity_at_runtime(self):
        net = MicroNet(policy=AllOutPolicy())
        subscribe_chain(net)
        net.nodes["n0"].set_capacity(CapacityConfig(fraction=0.0))
        net.refresh_authority("k")
        net.settle()
        assert net.metrics.update_hops[UpdateType.REFRESH] == 0
        net.nodes["n0"].set_capacity(CapacityConfig())
        net.refresh_authority("k")
        net.settle()
        assert net.metrics.update_hops[UpdateType.REFRESH] == 3


class TestJustificationAccounting:
    def test_first_time_updates_always_justified(self):
        net = MicroNet()
        net.seed_authority("k")
        net.node(2).post_local_query("k")
        net.settle()
        assert net.metrics.justified_updates >= 1
        assert net.metrics.unjustified_updates == 0

    def test_query_justifies_recent_refresh(self):
        net = MicroNet(policy=AllOutPolicy())
        subscribe_chain(net)
        net.refresh_authority("k")
        net.settle()
        before = net.metrics.justified_updates
        net.node(3).post_local_query("k")
        assert net.metrics.justified_updates > before

    def test_unseen_window_counts_unjustified(self):
        net = MicroNet(policy=AllOutPolicy())
        subscribe_chain(net, lifetime=20.0)
        net.refresh_authority("k", lifetime=20.0)
        net.settle()
        net.sim.run_until(net.sim.now + 50.0)  # window closes unseen
        net.refresh_authority("k", lifetime=20.0)
        net.settle()
        assert net.metrics.unjustified_updates > 0
