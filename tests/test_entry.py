"""Unit tests for index entries."""

import pytest

from repro.core.entry import IndexEntry


def make(timestamp=0.0, lifetime=100.0, sequence=0):
    return IndexEntry("k", "k/r0", "addr://k/r0", lifetime, timestamp, sequence)


class TestFreshness:
    def test_fresh_within_lifetime(self):
        assert make(timestamp=0.0, lifetime=100.0).is_fresh(50.0)

    def test_expired_exactly_at_lifetime(self):
        # Strict inequality: at now == timestamp + lifetime the entry is
        # no longer usable (the refresh issued at that instant replaces it).
        assert not make(timestamp=0.0, lifetime=100.0).is_fresh(100.0)

    def test_expired_after_lifetime(self):
        assert not make(timestamp=0.0, lifetime=100.0).is_fresh(150.0)

    def test_expires_at(self):
        assert make(timestamp=10.0, lifetime=100.0).expires_at == 110.0

    def test_remaining(self):
        entry = make(timestamp=10.0, lifetime=100.0)
        assert entry.remaining(60.0) == 50.0
        assert entry.remaining(120.0) == -10.0

    def test_nonpositive_lifetime_rejected(self):
        with pytest.raises(ValueError):
            make(lifetime=0.0)
        with pytest.raises(ValueError):
            make(lifetime=-5.0)


class TestRefresh:
    def test_refreshed_rebases_timestamp(self):
        entry = make(timestamp=0.0, lifetime=100.0, sequence=3)
        newer = entry.refreshed(timestamp=100.0)
        assert newer.timestamp == 100.0
        assert newer.lifetime == 100.0
        assert newer.sequence == 4
        assert newer.is_fresh(150.0)

    def test_refreshed_can_change_lifetime(self):
        newer = make().refreshed(timestamp=50.0, lifetime=20.0)
        assert newer.lifetime == 20.0

    def test_refreshed_explicit_sequence(self):
        newer = make(sequence=3).refreshed(timestamp=1.0, sequence=10)
        assert newer.sequence == 10

    def test_refreshed_preserves_identity_fields(self):
        entry = make()
        newer = entry.refreshed(timestamp=1.0)
        assert (newer.key, newer.replica_id, newer.address) == (
            entry.key, entry.replica_id, entry.address,
        )


class TestEquality:
    def test_equal_entries(self):
        assert make() == make()

    def test_sequence_distinguishes(self):
        assert make(sequence=0) != make(sequence=1)

    def test_hashable(self):
        assert len({make(), make(), make(sequence=1)}) == 2

    def test_not_equal_to_other_types(self):
        assert make() != "entry"

    def test_repr_contains_key_fields(self):
        text = repr(make())
        assert "k/r0" in text and "seq=0" in text
