"""Node-level tests for query handling (§2.5) on a line topology.

``MicroNet`` builds n0 - n1 - n2 - n3 where n0 is the authority for
every key, so CUP-tree depths are literal: n3 is three hops out.
"""

from helpers import MicroNet


class TestLocalHits:
    def test_authority_answers_local_query_immediately(self):
        net = MicroNet()
        net.seed_authority("k")
        assert net.authority.post_local_query("k") is True
        assert net.metrics.local_hits == 1
        assert net.metrics.query_hops == 0

    def test_query_without_entries_gets_empty_answer_at_authority(self):
        net = MicroNet()
        assert net.authority.post_local_query("nothing") is True
        # An empty directory still answers (negative response).

    def test_cached_fresh_entries_answer_locally(self):
        net = MicroNet()
        net.seed_authority("k")
        net.node(3).post_local_query("k")
        net.settle()
        assert net.node(3).post_local_query("k") is True


class TestMissPath:
    def test_miss_travels_to_authority_and_back(self):
        net = MicroNet()
        net.seed_authority("k")
        assert net.node(3).post_local_query("k") is False
        net.settle()
        assert net.metrics.query_hops == 3
        assert net.metrics.first_time_update_hops == 3
        assert net.metrics.misses == 1
        assert net.metrics.answers_delivered == 1

    def test_response_populates_path_caches(self):
        net = MicroNet()
        net.seed_authority("k")
        net.node(3).post_local_query("k")
        net.settle()
        for i in (1, 2, 3):
            state = net.node(i).cache.get("k")
            assert state is not None
            assert state.has_fresh(net.sim.now)

    def test_intermediate_fresh_cache_answers(self):
        net = MicroNet()
        net.seed_authority("k")
        net.node(2).post_local_query("k")
        net.settle()
        hops_before = net.metrics.query_hops
        net.node(3).post_local_query("k")
        net.settle()
        # n3's query stops at n2 (fresh cache): one hop up, one down.
        assert net.metrics.query_hops == hops_before + 1

    def test_miss_classification_first_time_vs_freshness(self):
        net = MicroNet()
        net.seed_authority("k", lifetime=10.0)
        net.node(3).post_local_query("k")
        net.settle()
        assert net.metrics.first_time_misses == 1
        net.sim.run_until(50.0)  # everything expires
        net.refresh_authority("k", lifetime=10.0)
        net.node(3).post_local_query("k")
        net.settle()
        assert net.metrics.freshness_misses == 1


class TestCoalescing:
    def test_burst_collapses_to_one_upstream_query(self):
        net = MicroNet()
        net.seed_authority("k")
        node = net.node(3)
        node.post_local_query("k")
        node.post_local_query("k")
        node.post_local_query("k")
        assert net.metrics.coalesced_queries == 2
        net.settle()
        # One query chain up, one response chain down.
        assert net.metrics.query_hops == 3
        assert net.metrics.answers_delivered == 3

    def test_neighbor_queries_coalesce_too(self):
        net = MicroNet()
        net.seed_authority("k")
        net.node(3).post_local_query("k")
        net.node(3).post_local_query("k")
        net.settle()
        state = net.node(3).cache.get("k")
        assert not state.pending_first_update
        assert state.local_waiters == 0

    def test_interest_bit_set_for_querying_neighbor(self):
        net = MicroNet()
        net.seed_authority("k")
        net.node(3).post_local_query("k")
        net.settle()
        assert "n3" in net.node(2).cache.get("k").interest
        assert "n2" in net.node(1).cache.get("k").interest

    def test_pfu_timeout_recovers_lost_response(self):
        net = MicroNet(pfu_timeout=5.0)
        net.seed_authority("k")
        # Sever n1 so the first query dies silently.
        net.transport.unregister("n1")
        net.node(3).post_local_query("k")
        net.settle(2.0)
        assert net.metrics.answers_delivered == 0
        # Reconnect; a query after the timeout re-pushes upstream.
        net.transport.register("n1", net.nodes["n1"])
        net.sim.run_until(net.sim.now + 10.0)
        net.node(3).post_local_query("k")
        net.settle()
        assert net.metrics.answers_delivered >= 1

    def test_waiting_set_cleared_after_response(self):
        net = MicroNet()
        net.seed_authority("k")
        net.node(3).post_local_query("k")
        net.settle()
        for i in (1, 2):
            assert net.node(i).cache.get("k").waiting == set()


class TestNonCoalescingBaseline:
    def test_every_query_forwarded_individually(self):
        net = MicroNet(coalesce=False, persistent_interest=False)
        net.seed_authority("k")
        node = net.node(3)
        node.post_local_query("k")
        node.post_local_query("k")
        net.settle()
        assert net.metrics.coalesced_queries == 0
        # Two full query chains and two full response chains.
        assert net.metrics.query_hops == 6
        assert net.metrics.first_time_update_hops == 6

    def test_response_retraces_query_path_and_caches(self):
        net = MicroNet(coalesce=False, persistent_interest=False)
        net.seed_authority("k")
        net.node(3).post_local_query("k")
        net.settle()
        for i in (1, 2, 3):
            assert net.node(i).cache.get("k").has_fresh(net.sim.now)

    def test_no_interest_bits_in_standard_mode(self):
        net = MicroNet(coalesce=False, persistent_interest=False)
        net.seed_authority("k")
        net.node(3).post_local_query("k")
        net.settle()
        for i in (0, 1, 2):
            state = net.node(i).cache.get("k")
            assert state is None or state.interest == set()

    def test_intermediate_cache_still_answers(self):
        net = MicroNet(coalesce=False, persistent_interest=False)
        net.seed_authority("k")
        net.node(2).post_local_query("k")
        net.settle()
        before = net.metrics.query_hops
        net.node(3).post_local_query("k")
        net.settle()
        assert net.metrics.query_hops == before + 1


class TestPopularity:
    def test_every_query_bumps_popularity(self):
        net = MicroNet()
        net.seed_authority("k")
        net.node(3).post_local_query("k")
        net.settle()
        net.node(3).post_local_query("k")  # local hit also counts
        # n3 saw 2 queries; popularity reset happens on update arrivals.
        state = net.node(3).cache.get("k")
        assert state.popularity >= 1
