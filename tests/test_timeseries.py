"""Tests for the time-series metrics sampler."""

import pytest

from repro.metrics.timeseries import TimeSeriesSampler
from repro.sim.engine import Simulator


class TestSampler:
    def make(self, period=10.0):
        sim = Simulator()
        counter = {"value": 0.0}
        sampler = TimeSeriesSampler(
            sim, period, {"counter": lambda: counter["value"]}
        )
        return sim, counter, sampler

    def test_samples_on_period(self):
        sim, counter, sampler = self.make()
        sim.schedule(15.0, lambda: counter.update(value=5.0))
        sim.run_until(35.0)
        assert sampler.times == [0.0, 10.0, 20.0, 30.0]
        assert sampler.series("counter") == [0.0, 0.0, 5.0, 5.0]

    def test_deltas(self):
        sim, counter, sampler = self.make()
        sim.schedule(5.0, lambda: counter.update(value=3.0))
        sim.schedule(15.0, lambda: counter.update(value=10.0))
        sim.run_until(25.0)
        assert sampler.deltas("counter") == [3.0, 7.0]

    def test_stop(self):
        sim, counter, sampler = self.make()
        sim.run_until(15.0)
        sampler.stop()
        sim.run_until(100.0)
        assert len(sampler.times) == 2

    def test_window_of(self):
        sim, _, sampler = self.make()
        sim.run_until(35.0)
        assert sampler.window_of(12.0) == 1
        assert sampler.window_of(0.0) == 0
        assert sampler.window_of(99.0) == 3

    def test_window_of_without_samples(self):
        sim = Simulator()
        sampler = TimeSeriesSampler(sim, 10.0, {"x": lambda: 0.0})
        with pytest.raises(ValueError):
            sampler.window_of(1.0)

    def test_peak_window(self):
        sim, counter, sampler = self.make()
        sim.schedule(22.0, lambda: counter.update(value=100.0))
        sim.run_until(45.0)
        assert sampler.peak_window("counter") == 2

    def test_render_sparkline(self):
        sim, counter, sampler = self.make()
        sim.schedule(25.0, lambda: counter.update(value=50.0))
        sim.run_until(55.0)
        text = sampler.render(["counter"])
        assert "counter" in text
        assert "|" in text

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            TimeSeriesSampler(sim, 0.0, {"x": lambda: 0.0})
        with pytest.raises(ValueError):
            TimeSeriesSampler(sim, 1.0, {})


class TestWithSimulation:
    def test_samples_a_real_run(self):
        from repro.core.protocol import CupConfig, CupNetwork

        config = CupConfig(
            num_nodes=16, total_keys=1, query_rate=2.0, seed=4,
            entry_lifetime=50.0, query_start=50.0, query_duration=200.0,
            drain=50.0,
        )
        net = CupNetwork(config)
        sampler = TimeSeriesSampler(
            net.sim, 25.0,
            {
                "miss_cost": lambda: float(net.metrics.miss_cost),
                "overhead": lambda: float(net.metrics.overhead_cost),
            },
        )
        net.run()
        assert len(sampler.times) >= 10
        # Cumulative counters never decrease.
        series = sampler.series("miss_cost")
        assert all(b >= a for a, b in zip(series, series[1:]))
        # No queries before the query phase: first window has no misses.
        assert sampler.series("miss_cost")[1] == 0.0
