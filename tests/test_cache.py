"""Unit tests for per-key node state and the node cache."""

from repro.core.cache import KeyState, NodeCache
from repro.core.entry import IndexEntry


def entry(replica="k/r0", timestamp=0.0, lifetime=100.0, seq=0):
    return IndexEntry("k", replica, f"addr://{replica}", lifetime, timestamp, seq)


class TestEntryManagement:
    def test_apply_entry_inserts(self):
        state = KeyState("k")
        assert state.apply_entry(entry())
        assert state.entries["k/r0"].sequence == 0

    def test_apply_entry_newer_sequence_wins(self):
        state = KeyState("k")
        state.apply_entry(entry(seq=1))
        assert state.apply_entry(entry(seq=2, timestamp=50.0))
        assert state.entries["k/r0"].timestamp == 50.0

    def test_apply_entry_stale_sequence_rejected(self):
        state = KeyState("k")
        state.apply_entry(entry(seq=5))
        assert not state.apply_entry(entry(seq=4, timestamp=99.0))
        assert state.entries["k/r0"].timestamp == 0.0

    def test_apply_entry_equal_sequence_rejected(self):
        state = KeyState("k")
        state.apply_entry(entry(seq=5))
        assert not state.apply_entry(entry(seq=5))

    def test_remove_entry(self):
        state = KeyState("k")
        state.apply_entry(entry())
        assert state.remove_entry("k/r0")
        assert not state.remove_entry("k/r0")

    def test_fresh_entries_filters_expired(self):
        state = KeyState("k")
        state.apply_entry(entry(replica="k/r0", lifetime=10.0))
        state.apply_entry(entry(replica="k/r1", lifetime=100.0))
        fresh = state.fresh_entries(now=50.0)
        assert [e.replica_id for e in fresh] == ["k/r1"]

    def test_has_fresh_and_all_expired(self):
        state = KeyState("k")
        assert not state.has_fresh(0.0)
        assert not state.all_expired(0.0)  # empty cache is not "expired"
        state.apply_entry(entry(lifetime=10.0))
        assert state.has_fresh(5.0)
        assert state.all_expired(20.0)

    def test_purge_expired(self):
        state = KeyState("k")
        state.apply_entry(entry(replica="k/r0", lifetime=10.0))
        state.apply_entry(entry(replica="k/r1", lifetime=100.0))
        assert state.purge_expired(now=50.0) == 1
        assert list(state.entries) == ["k/r1"]


class TestInterestBits:
    def test_register_and_clear(self):
        state = KeyState("k")
        state.register_interest("n1")
        assert "n1" in state.interest
        assert state.clear_interest("n1")
        assert not state.clear_interest("n1")

    def test_drop_departed_neighbors(self):
        state = KeyState("k")
        state.interest.update({"a", "b", "c"})
        state.waiting.update({"a", "c"})
        state.drop_departed_neighbors({"a", "b"})
        assert state.interest == {"a", "b"}
        assert state.waiting == {"a"}


class TestJustification:
    def test_query_settles_open_windows(self):
        state = KeyState("k")
        state.record_justification_window(100.0)
        state.record_justification_window(200.0)
        justified, unjustified = state.settle_justification(now=150.0)
        assert (justified, unjustified) == (1, 1)
        assert not state.justification_deadlines

    def test_expire_justification_counts_closed(self):
        state = KeyState("k")
        state.record_justification_window(10.0)
        state.record_justification_window(300.0)
        assert state.expire_justification(now=50.0) == 1
        assert len(state.justification_deadlines) == 1

    def test_window_retention_capped(self):
        state = KeyState("k")
        for i in range(KeyState.MAX_JUSTIFICATION_WINDOWS + 10):
            state.record_justification_window(float(i))
        assert (
            len(state.justification_deadlines)
            == KeyState.MAX_JUSTIFICATION_WINDOWS
        )


class TestLifecycle:
    def test_empty_state_discardable(self):
        assert KeyState("k").is_discardable(now=0.0)

    def test_pending_state_not_discardable(self):
        state = KeyState("k")
        state.pending_first_update = True
        assert not state.is_discardable(0.0)

    def test_interested_state_not_discardable(self):
        state = KeyState("k")
        state.register_interest("n1")
        assert not state.is_discardable(0.0)

    def test_fresh_entries_not_discardable(self):
        state = KeyState("k")
        state.apply_entry(entry(lifetime=100.0))
        assert not state.is_discardable(50.0)
        assert state.is_discardable(150.0)

    def test_local_waiters_not_discardable(self):
        state = KeyState("k")
        state.local_waiters = 1
        assert not state.is_discardable(0.0)


class TestNodeCache:
    def test_get_or_create_idempotent(self):
        cache = NodeCache()
        assert cache.get_or_create("k") is cache.get_or_create("k")
        assert len(cache) == 1

    def test_get_missing_returns_none(self):
        assert NodeCache().get("k") is None

    def test_contains_and_iter(self):
        cache = NodeCache()
        cache.get_or_create("a")
        cache.get_or_create("b")
        assert "a" in cache
        assert {s.key for s in cache} == {"a", "b"}

    def test_gc_drops_expired_stateless_keys(self):
        cache = NodeCache()
        state = cache.get_or_create("k")
        state.apply_entry(entry(lifetime=10.0))
        busy = cache.get_or_create("busy")
        busy.register_interest("n1")
        assert cache.gc(now=100.0) == 1
        assert "k" not in cache
        assert "busy" in cache

    def test_gc_purges_expired_entries_of_kept_keys(self):
        cache = NodeCache()
        state = cache.get_or_create("k")
        state.apply_entry(entry(replica="k/r0", lifetime=10.0))
        state.register_interest("n1")
        cache.gc(now=100.0)
        assert state.entries == {}

    def test_patch_interest_after_churn(self):
        cache = NodeCache()
        a = cache.get_or_create("a")
        a.interest.update({"n1", "dead"})
        cache.patch_interest_after_churn({"n1", "n2"})
        assert a.interest == {"n1"}

    def test_discard(self):
        cache = NodeCache()
        cache.get_or_create("k")
        cache.discard("k")
        cache.discard("k")  # idempotent
        assert "k" not in cache
