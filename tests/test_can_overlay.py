"""Unit tests for the CAN overlay: grids, joins, leaves, routing."""

import pytest

from repro.overlay.base import RoutingError
from repro.overlay.can import CanOverlay


def total_volume(overlay):
    return sum(
        zone.volume()
        for node_id in overlay.node_ids()
        for zone in overlay.state(node_id).zones
    )


def assert_partition(overlay, samples=200):
    """Zones must tile the space: volumes sum to 1, every sampled point
    has exactly one owner."""
    assert total_volume(overlay) == pytest.approx(1.0)
    for i in range(samples):
        point = ((i * 0.618) % 1.0, (i * 0.382) % 1.0)
        owners = [
            node_id
            for node_id in overlay.node_ids()
            if overlay.state(node_id).contains(point)
        ]
        assert len(owners) == 1, f"point {point} owned by {owners}"


def assert_symmetric_neighbors(overlay):
    for node_id in overlay.node_ids():
        for neighbor in overlay.neighbors(node_id):
            assert node_id in set(overlay.neighbors(neighbor))


class TestPerfectGrid:
    def test_grid_sizes(self):
        for n in (1, 2, 4, 8, 64, 256):
            overlay = CanOverlay.perfect_grid(n)
            assert len(list(overlay.node_ids())) == n

    def test_grid_partitions_space(self):
        assert_partition(CanOverlay.perfect_grid(64))

    def test_grid_neighbors_symmetric(self):
        assert_symmetric_neighbors(CanOverlay.perfect_grid(64))

    def test_grid_node_has_four_neighbors(self):
        overlay = CanOverlay.perfect_grid(64)
        for node_id in overlay.node_ids():
            assert len(list(overlay.neighbors(node_id))) == 4

    def test_two_node_grid(self):
        overlay = CanOverlay.perfect_grid(2)
        assert set(overlay.neighbors(0)) == {1}
        assert set(overlay.neighbors(1)) == {0}

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            CanOverlay.perfect_grid(100)

    def test_routing_reaches_authority(self):
        overlay = CanOverlay.perfect_grid(64)
        for i in range(20):
            key = f"key-{i}"
            authority = overlay.authority(key)
            for start in (0, 17, 42, 63):
                path = overlay.route(start, key)
                assert path[0] == start
                assert path[-1] == authority

    def test_routes_are_simple_paths(self):
        overlay = CanOverlay.perfect_grid(256)
        for i in range(10):
            path = overlay.route(0, f"key-{i}")
            assert len(path) == len(set(path))

    def test_route_hops_are_neighbor_edges(self):
        overlay = CanOverlay.perfect_grid(64)
        path = overlay.route(0, "some-key")
        for a, b in zip(path, path[1:]):
            assert b in set(overlay.neighbors(a))

    def test_distance_bounded_by_grid_diameter(self):
        overlay = CanOverlay.perfect_grid(64)  # 8x8 torus: diameter 8
        for i in range(20):
            for start in (0, 27, 63):
                assert overlay.distance(start, f"key-{i}") <= 8

    def test_authority_is_stable_and_cached(self):
        overlay = CanOverlay.perfect_grid(16)
        assert overlay.authority("k") == overlay.authority("k")

    def test_next_hop_none_at_authority(self):
        overlay = CanOverlay.perfect_grid(16)
        authority = overlay.authority("k")
        assert overlay.next_hop(authority, "k") is None


class TestJoin:
    def test_first_join_owns_everything(self):
        overlay = CanOverlay()
        overlay.join("solo")
        assert_partition(overlay, samples=20)

    def test_join_splits_owner(self):
        overlay = CanOverlay()
        overlay.join("a")
        overlay.join("b", point=(0.75, 0.5))
        assert_partition(overlay, samples=50)
        assert set(overlay.neighbors("a")) == {"b"}
        assert set(overlay.neighbors("b")) == {"a"}

    def test_join_returns_split_owner(self):
        overlay = CanOverlay()
        overlay.join("a")
        owner = overlay.join("b", point=(0.75, 0.5))
        assert owner == "a"

    def test_many_joins_keep_invariants(self):
        overlay = CanOverlay()
        for i in range(40):
            overlay.join(f"n{i}")
        assert_partition(overlay)
        assert_symmetric_neighbors(overlay)

    def test_duplicate_join_rejected(self):
        overlay = CanOverlay()
        overlay.join("a")
        with pytest.raises(ValueError):
            overlay.join("a")

    def test_join_bumps_epoch(self):
        overlay = CanOverlay()
        overlay.join("a")
        before = overlay.epoch
        overlay.join("b")
        assert overlay.epoch > before

    def test_routing_after_joins(self):
        overlay = CanOverlay()
        for i in range(25):
            overlay.join(f"n{i}")
        for i in range(10):
            key = f"key-{i}"
            path = overlay.route("n3", key)
            assert path[-1] == overlay.authority(key)


class TestLeave:
    def build(self, n=20):
        overlay = CanOverlay()
        for i in range(n):
            overlay.join(f"n{i}")
        return overlay

    def test_leave_preserves_partition(self):
        overlay = self.build()
        overlay.leave("n7")
        assert_partition(overlay)
        assert_symmetric_neighbors(overlay)

    def test_leave_returns_takers(self):
        overlay = self.build()
        takers = overlay.leave("n7")
        assert takers
        for taker, zone in takers:
            assert taker in overlay
            assert any(
                z.contains(zone.center()) for z in overlay.state(taker).zones
            )

    def test_leave_unknown_rejected(self):
        overlay = self.build(4)
        with pytest.raises(ValueError):
            overlay.leave("ghost")

    def test_routing_after_leaves(self):
        overlay = self.build(30)
        for victim in ("n5", "n12", "n20"):
            overlay.leave(victim)
        assert_partition(overlay)
        for i in range(10):
            key = f"key-{i}"
            path = overlay.route("n0", key)
            assert path[-1] == overlay.authority(key)

    def test_churn_storm_keeps_invariants(self):
        overlay = self.build(16)
        for i in range(16, 28):
            overlay.join(f"n{i}")
            overlay.leave(f"n{i - 16}")
        assert_partition(overlay)
        assert_symmetric_neighbors(overlay)

    def test_leave_to_single_node(self):
        overlay = CanOverlay()
        overlay.join("a")
        overlay.join("b")
        overlay.leave("b")
        assert_partition(overlay, samples=20)
        assert list(overlay.node_ids()) == ["a"]

    def test_leave_last_node_empties_overlay(self):
        overlay = CanOverlay()
        overlay.join("a")
        overlay.leave("a")
        assert len(list(overlay.node_ids())) == 0

    def test_routing_stuck_raises_on_empty(self):
        overlay = CanOverlay()
        with pytest.raises(RoutingError):
            overlay.authority("k")
