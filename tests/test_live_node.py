"""Live daemon: in-process clusters over real localhost sockets.

Each test drives an ``asyncio.run`` scenario (plain pytest — no asyncio
plugin): daemons bind OS-assigned ports, dial each other, and push CUP
traffic through :class:`~repro.net.transport.LiveTransport` — the same
core classes the simulator runs, now over TCP.
"""

import asyncio
import time

import pytest

from repro.net.clock import LiveClock
from repro.net.daemon import LiveNode, LiveNodeConfig
from repro.net.seam import (
    conforming,
    missing_clock_api,
    missing_transport_methods,
)
from repro.net.transport import LiveTransport
from repro.net.wire import FrameDecoder, encode_frame
from repro.sim.engine import Simulator
from repro.sim.network import Transport


# ----------------------------------------------------------------------
# Seam conformance: both worlds provide the surface core/ consumes
# ----------------------------------------------------------------------


class _NullRouter:
    def send_wire(self, src, dst, message, direct):
        return False

    def is_peer(self, node_id):
        return False

    def call_soon(self, fn, *args):
        fn(*args)


def test_transport_seam_conformance_both_worlds():
    sim = Simulator()
    live = LiveTransport(LiveClock(), _NullRouter())
    assert missing_transport_methods(Transport(sim)) == []
    assert missing_transport_methods(live) == []
    assert conforming([Transport(sim), live])


def test_clock_seam_conformance_both_worlds():
    assert missing_clock_api(Simulator()) == []
    assert missing_clock_api(LiveClock()) == []


def test_live_clock_tracks_wall_time():
    clock = LiveClock()
    assert abs(clock.now - time.time()) < 1.0
    with pytest.raises(ValueError):
        asyncio.run(_schedule_negative(clock))


async def _schedule_negative(clock):
    clock.schedule(-1.0, lambda: None)


def test_live_transport_rejects_self_send():
    transport = LiveTransport(LiveClock(), _NullRouter())
    with pytest.raises(ValueError):
        transport.send("n1", "n1", _Probe())


def test_live_transport_counts_unroutable_as_dropped():
    transport = LiveTransport(LiveClock(), _NullRouter())
    transport.send("n1", "n2", _Probe())
    assert transport.sent == 1
    assert transport.dropped == 1


def test_live_transport_counts_wire_arrivals_as_received():
    transport = LiveTransport(LiveClock(), _NullRouter())
    inbox = []

    class Handler:
        def receive(self, message, sender):
            inbox.append((message, sender))

    transport.register("n2", Handler())
    transport.deliver_wire("n1", "n2", _Probe())
    assert transport.received == 1
    assert transport.delivered == 1
    assert inbox and inbox[0][1] == "n1"


class _Probe:
    kind = "keepalive"
    hops = 0


# ----------------------------------------------------------------------
# Cluster scenarios
# ----------------------------------------------------------------------


async def _poll(predicate, timeout=10.0, interval=0.02):
    deadline = asyncio.get_running_loop().time() + timeout
    while True:
        if predicate():
            return
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError("condition never became true")
        await asyncio.sleep(interval)


async def _start_cluster(count, **overrides):
    overrides.setdefault("quiet", True)
    overrides.setdefault("keepalive_period", 0.2)
    first = LiveNode(LiveNodeConfig(port=0, **overrides))
    await first.start()
    nodes = [first]
    for _ in range(count - 1):
        node = LiveNode(
            LiveNodeConfig(port=0, peers=(first.node_id,), **overrides)
        )
        await node.start()
        nodes.append(node)
    want = {node.node_id for node in nodes}
    await _poll(lambda: all(node.members == want for node in nodes))
    return nodes


async def _stop_all(nodes):
    for node in reversed(nodes):
        if not node._stopped.is_set():
            node.request_stop()
            await node.serve_forever()


def _run_cluster(count, scenario, **overrides):
    async def main():
        nodes = await _start_cluster(count, **overrides)
        try:
            return await scenario(nodes)
        finally:
            await _stop_all(nodes)

    return asyncio.run(main())


def test_three_nodes_converge_membership():
    async def scenario(nodes):
        want = {node.node_id for node in nodes}
        for node in nodes:
            assert node.members == want
            assert set(node.overlay.node_ids()) == want

    _run_cluster(3, scenario)


def test_put_propagates_and_get_hits_everywhere():
    async def scenario(nodes):
        key = "live/key"
        reply = await nodes[0]._client_put(
            {"t": "put", "key": key, "replica_id": "r1",
             "address": "addr", "lifetime": 120.0}
        )
        assert reply["t"] == "ok"
        authority = reply["authority"]
        assert authority in {node.node_id for node in nodes}
        for node in nodes:
            result = await node._client_get({"key": key, "timeout": 10.0})
            assert result["ok"], result
            assert result["entries"][0]["replica_id"] == "r1"
        # CUP left every subscriber a local copy: repeat gets are hits.
        for node in nodes:
            again = await node._client_get({"key": key, "timeout": 5.0})
            assert again["hit"], again

    _run_cluster(3, scenario)


def test_refresh_pushes_to_subscribers_unprompted():
    async def scenario(nodes):
        key = "live/refresh"
        put = {"t": "put", "key": key, "replica_id": "r1",
               "address": "addr", "lifetime": 120.0}
        authority_id = (await nodes[0]._client_put(dict(put)))["authority"]
        subscribers = [n for n in nodes if n.node_id != authority_id]
        for node in subscribers:
            first = await node._client_get({"key": key, "timeout": 10.0})
            assert first["ok"], first
        await nodes[0]._client_put(dict(put))  # birth again -> REFRESH push

        def arrived(node):
            state = node.node.cache.get_or_create(key)
            entries = state.fresh_entries(node.clock.now)
            return any(e.sequence >= 2 for e in entries)

        await _poll(lambda: all(arrived(n) for n in subscribers))

    _run_cluster(3, scenario)


def test_quiescent_audit_is_clean_after_traffic():
    async def scenario(nodes):
        for i, key in enumerate(["a", "b", "c"]):
            await nodes[i % len(nodes)]._client_put(
                {"t": "put", "key": key, "replica_id": f"r{i}",
                 "address": "x", "lifetime": 60.0}
            )
        for node in nodes:
            for key in ["a", "b", "c"]:
                result = await node._client_get(
                    {"key": key, "timeout": 10.0}
                )
                assert result["ok"], result
        await asyncio.sleep(0.1)  # drain in-flight clear-bit traffic
        for node in nodes:
            audit = node._client_audit()
            assert audit["ok"] is True, audit["violations"]
            info = node._client_info()
            assert info["violations"] == 0

    _run_cluster(3, scenario)


def test_graceful_leave_shrinks_membership_without_violations():
    async def scenario(nodes):
        leaver = nodes[-1]
        leaver.request_stop()
        await leaver.serve_forever()
        rest = nodes[:-1]
        want = {node.node_id for node in rest}
        await _poll(lambda: all(node.members == want for node in rest))
        for node in rest:
            assert node._client_audit()["ok"] is True

    _run_cluster(3, scenario)


def test_silent_crash_is_detected_by_keepalive():
    async def scenario(nodes):
        victim = nodes[-1]
        # Die without a leaving broadcast: stop timers, drop sockets.
        victim.keepalive.stop()
        victim._server.close()
        for link in list(victim._conns.values()):
            if link.reader_task is not None:
                link.reader_task.cancel()
            link.close()
        victim._conns.clear()
        victim._stopping = True
        victim._stopped.set()
        rest = nodes[:-1]
        want = {node.node_id for node in rest}
        await _poll(
            lambda: all(node.members == want for node in rest),
            timeout=20.0,
        )
        for node in rest:
            assert node._client_audit()["ok"] is True

    _run_cluster(3, scenario, keepalive_period=0.1, keepalive_misses=3)


def test_garbage_frames_drop_the_connection_not_the_node():
    async def scenario(nodes):
        node = nodes[0]
        host, _, port = node.node_id.rpartition(":")
        reader, writer = await asyncio.open_connection(host, int(port))
        writer.write(b"GET / HTTP/1.1\r\n\r\n")
        await writer.drain()
        data = await asyncio.wait_for(reader.read(64), timeout=5.0)
        assert data == b""  # connection dropped, nothing leaked back
        writer.close()
        # The daemon survives and still serves well-formed clients.
        reply = await _socket_request(node, {"t": "info"})
        assert reply["t"] == "info"
        assert reply["id"] == node.node_id

    _run_cluster(2, scenario)


def test_socket_client_protocol_end_to_end():
    async def scenario(nodes):
        put = await _socket_request(
            nodes[0],
            {"t": "put", "key": "sock/key", "replica_id": "r1",
             "address": "a", "lifetime": 60.0},
        )
        assert put["t"] == "ok"
        got = await _socket_request(
            nodes[1], {"t": "get", "key": "sock/key", "timeout": 10.0}
        )
        assert got["ok"], got
        assert got["entries"][0]["key"] == "sock/key"
        bad = await _socket_request(nodes[0], {"t": "frobnicate"})
        assert bad["t"] == "error"

    _run_cluster(2, scenario)


async def _socket_request(node, frame):
    host, _, port = node.node_id.rpartition(":")
    reader, writer = await asyncio.open_connection(host, int(port))
    try:
        writer.write(encode_frame(frame))
        await writer.drain()
        decoder = FrameDecoder()
        while True:
            data = await asyncio.wait_for(reader.read(1 << 16), timeout=15.0)
            assert data, "daemon closed the connection without replying"
            frames = decoder.feed(data)
            if frames:
                return frames[0]
    finally:
        writer.close()


def test_config_rejects_unknown_mode_and_codec():
    with pytest.raises(ValueError):
        LiveNodeConfig(mode="gossip")
    with pytest.raises(Exception):
        LiveNodeConfig(codec="carrier-pigeon")
