"""Live daemon: in-process clusters over real localhost sockets.

Each test drives an ``asyncio.run`` scenario (plain pytest — no asyncio
plugin): daemons bind OS-assigned ports, dial each other, and push CUP
traffic through :class:`~repro.net.transport.LiveTransport` — the same
core classes the simulator runs, now over TCP.
"""

import asyncio
import time

import pytest

from repro.net.clock import LiveClock
from repro.net.daemon import LiveNode, LiveNodeConfig
from repro.net.seam import (
    conforming,
    missing_clock_api,
    missing_router_methods,
    missing_transport_methods,
)
from repro.net.transport import LiveTransport
from repro.net.wire import FrameDecoder, encode_frame
from repro.sim.engine import Simulator
from repro.sim.network import Transport


# ----------------------------------------------------------------------
# Seam conformance: both worlds provide the surface core/ consumes
# ----------------------------------------------------------------------


class _NullRouter:
    def send_wire(self, src, dst, message, direct):
        return False

    def is_peer(self, node_id):
        return False

    def call_soon(self, fn, *args):
        fn(*args)


def test_transport_seam_conformance_both_worlds():
    sim = Simulator()
    live = LiveTransport(LiveClock(), _NullRouter())
    assert missing_transport_methods(Transport(sim)) == []
    assert missing_transport_methods(live) == []
    assert conforming([Transport(sim), live])


def test_clock_seam_conformance_both_worlds():
    assert missing_clock_api(Simulator()) == []
    assert missing_clock_api(LiveClock()) == []


def test_router_seam_conformance():
    assert missing_router_methods(_NullRouter()) == []
    assert missing_router_methods(LiveNode(LiveNodeConfig(port=0))) == []


def test_live_clock_tracks_wall_time():
    clock = LiveClock()
    assert abs(clock.now - time.time()) < 1.0
    with pytest.raises(ValueError):
        asyncio.run(_schedule_negative(clock))


async def _schedule_negative(clock):
    clock.schedule(-1.0, lambda: None)


def test_live_transport_rejects_self_send():
    transport = LiveTransport(LiveClock(), _NullRouter())
    with pytest.raises(ValueError):
        transport.send("n1", "n1", _Probe())


def test_live_transport_counts_unroutable_as_dropped():
    transport = LiveTransport(LiveClock(), _NullRouter())
    transport.send("n1", "n2", _Probe())
    assert transport.sent == 1
    assert transport.dropped == 1


def test_live_transport_counts_wire_arrivals_as_received():
    transport = LiveTransport(LiveClock(), _NullRouter())
    inbox = []

    class Handler:
        def receive(self, message, sender):
            inbox.append((message, sender))

    transport.register("n2", Handler())
    transport.deliver_wire("n1", "n2", _Probe())
    assert transport.received == 1
    assert transport.delivered == 1
    assert inbox and inbox[0][1] == "n1"


class _Probe:
    kind = "keepalive"
    hops = 0


# ----------------------------------------------------------------------
# Cluster scenarios
# ----------------------------------------------------------------------


async def _poll(predicate, timeout=10.0, interval=0.02):
    deadline = asyncio.get_running_loop().time() + timeout
    while True:
        if predicate():
            return
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError("condition never became true")
        await asyncio.sleep(interval)


async def _start_cluster(count, **overrides):
    overrides.setdefault("quiet", True)
    overrides.setdefault("keepalive_period", 0.2)
    first = LiveNode(LiveNodeConfig(port=0, **overrides))
    await first.start()
    nodes = [first]
    for _ in range(count - 1):
        node = LiveNode(
            LiveNodeConfig(port=0, peers=(first.node_id,), **overrides)
        )
        await node.start()
        nodes.append(node)
    want = {node.node_id for node in nodes}
    await _poll(lambda: all(node.members == want for node in nodes))
    return nodes


async def _stop_all(nodes):
    for node in reversed(nodes):
        if not node._stopped.is_set():
            node.request_stop()
            await node.serve_forever()


def _run_cluster(count, scenario, **overrides):
    async def main():
        nodes = await _start_cluster(count, **overrides)
        try:
            return await scenario(nodes)
        finally:
            await _stop_all(nodes)

    return asyncio.run(main())


def test_three_nodes_converge_membership():
    async def scenario(nodes):
        want = {node.node_id for node in nodes}
        for node in nodes:
            assert node.members == want
            assert set(node.overlay.node_ids()) == want

    _run_cluster(3, scenario)


def test_put_propagates_and_get_hits_everywhere():
    async def scenario(nodes):
        key = "live/key"
        reply = await nodes[0]._client_put(
            {"t": "put", "key": key, "replica_id": "r1",
             "address": "addr", "lifetime": 120.0}
        )
        assert reply["t"] == "ok"
        authority = reply["authority"]
        assert authority in {node.node_id for node in nodes}
        for node in nodes:
            result = await node._client_get({"key": key, "timeout": 10.0})
            assert result["ok"], result
            assert result["entries"][0]["replica_id"] == "r1"
        # CUP left every subscriber a local copy: repeat gets are hits.
        for node in nodes:
            again = await node._client_get({"key": key, "timeout": 5.0})
            assert again["hit"], again

    _run_cluster(3, scenario)


def test_refresh_pushes_to_subscribers_unprompted():
    async def scenario(nodes):
        key = "live/refresh"
        put = {"t": "put", "key": key, "replica_id": "r1",
               "address": "addr", "lifetime": 120.0}
        authority_id = (await nodes[0]._client_put(dict(put)))["authority"]
        subscribers = [n for n in nodes if n.node_id != authority_id]
        for node in subscribers:
            first = await node._client_get({"key": key, "timeout": 10.0})
            assert first["ok"], first
        await nodes[0]._client_put(dict(put))  # birth again -> REFRESH push

        def arrived(node):
            state = node.node.cache.get_or_create(key)
            entries = state.fresh_entries(node.clock.now)
            return any(e.sequence >= 2 for e in entries)

        await _poll(lambda: all(arrived(n) for n in subscribers))

    _run_cluster(3, scenario)


def test_quiescent_audit_is_clean_after_traffic():
    async def scenario(nodes):
        for i, key in enumerate(["a", "b", "c"]):
            await nodes[i % len(nodes)]._client_put(
                {"t": "put", "key": key, "replica_id": f"r{i}",
                 "address": "x", "lifetime": 60.0}
            )
        for node in nodes:
            for key in ["a", "b", "c"]:
                result = await node._client_get(
                    {"key": key, "timeout": 10.0}
                )
                assert result["ok"], result
        await asyncio.sleep(0.1)  # drain in-flight clear-bit traffic
        for node in nodes:
            audit = node._client_audit()
            assert audit["ok"] is True, audit["violations"]
            info = node._client_info()
            assert info["violations"] == 0

    _run_cluster(3, scenario)


def test_graceful_leave_shrinks_membership_without_violations():
    async def scenario(nodes):
        leaver = nodes[-1]
        leaver.request_stop()
        await leaver.serve_forever()
        rest = nodes[:-1]
        want = {node.node_id for node in rest}
        await _poll(lambda: all(node.members == want for node in rest))
        for node in rest:
            assert node._client_audit()["ok"] is True

    _run_cluster(3, scenario)


def test_silent_crash_is_detected_by_keepalive():
    async def scenario(nodes):
        victim = nodes[-1]
        # Die without a leaving broadcast: stop timers, drop sockets.
        victim.keepalive.stop()
        victim._server.close()
        for link in list(victim._conns.values()):
            if link.reader_task is not None:
                link.reader_task.cancel()
            link.close()
        victim._conns.clear()
        victim._stopping = True
        victim._stopped.set()
        rest = nodes[:-1]
        want = {node.node_id for node in rest}
        await _poll(
            lambda: all(node.members == want for node in rest),
            timeout=20.0,
        )
        for node in rest:
            assert node._client_audit()["ok"] is True

    _run_cluster(3, scenario, keepalive_period=0.1, keepalive_misses=3)


def test_garbage_frames_drop_the_connection_not_the_node():
    async def scenario(nodes):
        node = nodes[0]
        host, _, port = node.node_id.rpartition(":")
        reader, writer = await asyncio.open_connection(host, int(port))
        writer.write(b"GET / HTTP/1.1\r\n\r\n")
        await writer.drain()
        data = await asyncio.wait_for(reader.read(64), timeout=5.0)
        assert data == b""  # connection dropped, nothing leaked back
        writer.close()
        # The daemon survives and still serves well-formed clients.
        reply = await _socket_request(node, {"t": "info"})
        assert reply["t"] == "info"
        assert reply["id"] == node.node_id

    _run_cluster(2, scenario)


def test_socket_client_protocol_end_to_end():
    async def scenario(nodes):
        put = await _socket_request(
            nodes[0],
            {"t": "put", "key": "sock/key", "replica_id": "r1",
             "address": "a", "lifetime": 60.0},
        )
        assert put["t"] == "ok"
        got = await _socket_request(
            nodes[1], {"t": "get", "key": "sock/key", "timeout": 10.0}
        )
        assert got["ok"], got
        assert got["entries"][0]["key"] == "sock/key"
        bad = await _socket_request(nodes[0], {"t": "frobnicate"})
        assert bad["t"] == "error"

    _run_cluster(2, scenario)


async def _socket_request(node, frame):
    host, _, port = node.node_id.rpartition(":")
    reader, writer = await asyncio.open_connection(host, int(port))
    try:
        writer.write(encode_frame(frame))
        await writer.drain()
        decoder = FrameDecoder()
        while True:
            data = await asyncio.wait_for(reader.read(1 << 16), timeout=15.0)
            assert data, "daemon closed the connection without replying"
            frames = decoder.feed(data)
            if frames:
                return frames[0]
    finally:
        writer.close()


def test_config_rejects_unknown_mode_and_codec():
    with pytest.raises(ValueError):
        LiveNodeConfig(mode="gossip")
    with pytest.raises(Exception):
        LiveNodeConfig(codec="carrier-pigeon")


def test_config_rejects_bad_resilience_knobs():
    with pytest.raises(ValueError):
        LiveNodeConfig(snapshot_interval=0.0)
    with pytest.raises(ValueError):
        LiveNodeConfig(dial_backoff_base=0.0)
    with pytest.raises(ValueError):
        LiveNodeConfig(dial_backoff_base=2.0, dial_backoff_max=1.0)
    with pytest.raises(ValueError):
        LiveNodeConfig(suspect_after=0)
    with pytest.raises(ValueError):
        LiveNodeConfig(suspect_after=4, dead_after=2)
    with pytest.raises(ValueError):
        LiveNodeConfig(outbox_limit=0)


# ----------------------------------------------------------------------
# Crash durability and connection resilience
# ----------------------------------------------------------------------


async def _hard_kill(node):
    """Die like ``kill -9``: no leaving frame, no final snapshot."""
    node.keepalive.stop()
    if node._gc_process is not None:
        node._gc_process.stop()
    if node._snapshot_process is not None:
        node._snapshot_process.stop()
    node._server.close()
    for task in list(node._dialing.values()):
        task.cancel()
    for link in list(node._conns.values()):
        if link.reader_task is not None:
            link.reader_task.cancel()
        link.close()
    node._conns.clear()
    for health in node._health.values():
        health.cancel_timers()
    node._stopping = True
    node._stopped.set()


def test_warm_rejoin_restores_cache_and_reconverges(tmp_path):
    state_dir = str(tmp_path / "state")
    common = dict(quiet=True, keepalive_period=0.2)

    async def main():
        first = LiveNode(LiveNodeConfig(port=0, **common))
        await first.start()
        second = LiveNode(LiveNodeConfig(
            port=0, peers=(first.node_id,), state_dir=state_dir,
            snapshot_interval=60.0, **common,
        ))
        await second.start()
        want = {first.node_id, second.node_id}
        await _poll(lambda: first.members == want
                    and second.members == want)

        # A key whose authority is FIRST, so SECOND holds a subscriber
        # copy that only durability can bring back after the crash.
        key = next(
            f"rejoin/k{i}" for i in range(200)
            if second.overlay.authority(f"rejoin/k{i}") == first.node_id
        )
        put = await second._client_put(
            {"t": "put", "key": key, "replica_id": "r1",
             "lifetime": 300.0}
        )
        assert put["t"] == "ok"
        got = await second._client_get(
            {"t": "get", "key": key, "timeout": 10.0}
        )
        assert got["ok"], got
        await _poll(lambda: second.node.cache.states[key].has_fresh(
            second.clock.now))
        second._snapshot_state()  # the cadence's write, forced
        assert second.metrics.state_snapshots == 1
        victim_port = int(second.node_id.rsplit(":", 1)[1])
        await _hard_kill(second)
        await _poll(lambda: first.members == {first.node_id},
                    timeout=20.0)

        # Restart on the same port from the state dir alone: no seeds.
        reborn = LiveNode(LiveNodeConfig(
            port=victim_port, state_dir=state_dir,
            snapshot_interval=60.0, **common,
        ))
        await reborn.start()
        try:
            assert reborn._rejoined is True
            assert reborn.metrics.state_restored_keys >= 1
            assert key in reborn.node.cache.states
            # Immediate local hit from the restored cache — before any
            # pull could have refilled it over the network.
            hit = await reborn._client_get(
                {"t": "get", "key": key, "timeout": 5.0}
            )
            assert hit["ok"] and hit["hit"], hit
            await _poll(lambda: first.members == want
                        and reborn.members == want, timeout=20.0)
            assert reborn._client_info()["rejoined"] is True
        finally:
            await _stop_all([first, reborn])

    asyncio.run(main())


def test_cold_start_without_state_file_serves_normally(tmp_path):
    # A configured-but-empty state dir must behave exactly like a
    # stateless boot (the chaos drill's cold path).
    async def main():
        node = LiveNode(LiveNodeConfig(
            port=0, quiet=True, state_dir=str(tmp_path / "empty"),
        ))
        await node.start()
        try:
            assert node._rejoined is False
            info = node._client_info()
            assert info["rejoined"] is False
            assert info["persistence"]["saves"] == 0
        finally:
            await _stop_all([node])

    asyncio.run(main())


def test_unreachable_member_is_suspected_then_declared_dead():
    async def scenario(nodes):
        node = nodes[0]
        ghost = "127.0.0.1:1"  # nothing listens on port 1
        node._add_member(ghost)
        node._ensure_link(ghost, probe=True)
        await _poll(lambda: ghost not in node.members, timeout=20.0)
        assert node.metrics.dial_failures >= node.config.dead_after
        assert node.metrics.dial_retries >= 1
        assert node.metrics.peers_suspected >= 1
        assert node.metrics.peers_declared_dead >= 1
        assert ghost not in node._health  # bookkeeping fully reclaimed

    _run_cluster(1, scenario, dial_backoff_base=0.02,
                 dial_backoff_max=0.05, dial_backoff_jitter=0.0)


def test_dial_backoff_gates_non_probe_callers():
    async def scenario(nodes):
        node = nodes[0]
        ghost = "127.0.0.1:1"
        node._seeds.add(ghost)  # keep the retry alive w/o membership
        assert (await node._ensure_link(ghost)) is None
        assert node._health[ghost].retry_handle is not None
        # During the cooldown a plain caller gets None without a dial;
        # only the pending (far-future) redial owns the next attempt.
        assert (await node._ensure_link(ghost)) is None
        assert node.metrics.dial_failures == 1

    _run_cluster(1, scenario, dial_backoff_base=30.0,
                 dial_backoff_max=30.0)


def test_outbox_is_bounded_and_overflow_counted():
    async def scenario(nodes):
        a, b = nodes
        link = a._conns[b.node_id]
        link.writer_task.cancel()  # wedge the drain: queue can only fill
        for _ in range(a.config.outbox_limit + 5):
            link.send_json({"t": "joined", "id": "overflow-probe"})
        assert link.outbox.qsize() <= a.config.outbox_limit
        assert link.overflows >= 5
        assert a.metrics.outbox_overflows >= 5
        assert a._client_info()["livenode"]["outbox_overflows"] >= 5

    _run_cluster(2, scenario, outbox_limit=8)


def test_hazard_window_client_op():
    async def scenario(nodes):
        node = nodes[0]
        reply = await _socket_request(
            node, {"t": "hazard", "action": "open",
                   "hazards": ["loss"], "duration": 30.0},
        )
        assert reply["t"] == "ok"
        assert "loss" in reply["active"]
        reply = await _socket_request(
            node, {"t": "hazard", "action": "close",
                   "hazards": ["loss"]},
        )
        assert reply["t"] == "ok"
        assert "loss" not in reply["active"]
        bad = await _socket_request(
            node, {"t": "hazard", "action": "open",
                   "hazards": ["bogus"]},
        )
        assert bad["t"] == "error"

    _run_cluster(1, scenario)


def test_info_reports_resilience_surface():
    async def scenario(nodes):
        info = nodes[0]._client_info()
        assert info["rejoined"] is False
        assert info["open_gaps"] == 0
        assert info["persistence"] is None
        assert "state_restored_keys" in info["livenode"]
        assert isinstance(info["peers"], dict)

    _run_cluster(1, scenario)


def test_client_buffers_pipelined_response_frames(monkeypatch):
    # Two responses landing in one recv() must serve two requests in
    # order — the decoded leftover used to be dropped on the floor.
    from repro.net import client as client_mod
    from repro.net.client import NodeClient

    replies = [{"t": "ok", "n": 1}, {"t": "ok", "n": 2}]
    blob = b"".join(encode_frame(reply) for reply in replies)

    class _FakeSocket:
        def __init__(self):
            self._chunks = [blob, b""]

        def sendall(self, data):
            pass

        def recv(self, _n):
            return self._chunks.pop(0)

        def close(self):
            pass

    monkeypatch.setattr(
        client_mod.socket, "create_connection",
        lambda *args, **kwargs: _FakeSocket(),
    )
    client = NodeClient("127.0.0.1:1")
    assert client.request({"t": "a"})["n"] == 1
    assert client.request({"t": "b"})["n"] == 2
