"""Unit tests for the transport layer."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.network import Link, LinkFaults, Message, Transport


class Recorder:
    """Minimal message handler that records deliveries."""

    def __init__(self):
        self.received = []

    def receive(self, message, sender):
        self.received.append((message, sender))


class Ping(Message):
    kind = "ping"
    __slots__ = ()


def make_net(default_delay=0.1):
    sim = Simulator()
    net = Transport(sim, default_delay=default_delay)
    return sim, net


class TestLink:
    def test_self_link_rejected(self):
        with pytest.raises(ValueError):
            Link("a", "a", 0.1)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Link("a", "b", -0.1)

    def test_key_is_canonical(self):
        assert Link("a", "b", 0.1).key() == Link("b", "a", 0.2).key()


class TestDelivery:
    def test_message_delivered_after_default_delay(self):
        sim, net = make_net(default_delay=0.25)
        handler = Recorder()
        net.register("b", handler)
        net.register("a", Recorder())
        net.send("a", "b", Ping())
        sim.run_until(0.2)
        assert handler.received == []
        sim.run_until(0.3)
        assert len(handler.received) == 1
        assert handler.received[0][1] == "a"

    def test_link_delay_overrides_default(self):
        sim, net = make_net(default_delay=1.0)
        handler = Recorder()
        net.register("a", Recorder())
        net.register("b", handler)
        net.add_link("a", "b", delay=0.05)
        net.send("a", "b", Ping())
        sim.run_until(0.1)
        assert len(handler.received) == 1

    def test_hops_incremented_per_link(self):
        sim, net = make_net()
        handler = Recorder()
        net.register("a", Recorder())
        net.register("b", handler)
        message = Ping()
        net.send("a", "b", message)
        sim.run()
        assert message.hops == 1

    def test_send_to_self_rejected(self):
        _, net = make_net()
        net.register("a", Recorder())
        with pytest.raises(ValueError):
            net.send("a", "a", Ping())

    def test_send_to_unregistered_is_dropped(self):
        sim, net = make_net()
        net.register("a", Recorder())
        net.send("a", "ghost", Ping())
        sim.run()
        assert net.dropped == 1
        assert net.delivered == 0

    def test_unregister_midflight_drops(self):
        sim, net = make_net(default_delay=0.5)
        handler = Recorder()
        net.register("a", Recorder())
        net.register("b", handler)
        net.send("a", "b", Ping())
        net.unregister("b")
        sim.run()
        assert handler.received == []
        assert net.dropped == 1

    def test_unregister_removes_links(self):
        _, net = make_net(default_delay=0.5)
        net.register("a", Recorder())
        net.register("b", Recorder())
        net.add_link("a", "b", delay=0.01)
        net.unregister("b")
        assert net.link_delay("a", "b") == 0.5  # back to default

    def test_send_direct_bypasses_observers_and_counts(self):
        sim, net = make_net()
        handler = Recorder()
        observed = []
        net.register("b", handler)
        net.add_send_observer(lambda s, d, m: observed.append(m))
        message = Ping()
        net.send_direct("b", message, delay=0.2)
        sim.run()
        assert len(handler.received) == 1
        assert observed == []
        assert message.hops == 0

    def test_counters(self):
        sim, net = make_net()
        net.register("a", Recorder())
        net.register("b", Recorder())
        net.send("a", "b", Ping())
        net.send("a", "ghost", Ping())
        sim.run()
        assert net.sent == 2
        assert net.delivered == 1
        assert net.dropped == 1


class TestObservers:
    def test_observer_fires_per_hop_send(self):
        sim, net = make_net()
        seen = []
        net.register("a", Recorder())
        net.register("b", Recorder())
        net.add_send_observer(lambda src, dst, m: seen.append((src, dst)))
        net.send("a", "b", Ping())
        assert seen == [("a", "b")]  # fires at send time, pre-delivery

    def test_observer_fires_even_for_doomed_sends(self):
        sim, net = make_net()
        seen = []
        net.register("a", Recorder())
        net.add_send_observer(lambda src, dst, m: seen.append(dst))
        net.send("a", "ghost", Ping())
        sim.run()
        assert seen == ["ghost"]

    def test_multiple_observers_all_fire(self):
        sim, net = make_net()
        first, second = [], []
        net.register("a", Recorder())
        net.register("b", Recorder())
        net.add_send_observer(lambda *a: first.append(1))
        net.add_send_observer(lambda *a: second.append(1))
        net.send("a", "b", Ping())
        assert first == [1] and second == [1]

    def test_negative_default_delay_rejected(self):
        with pytest.raises(ValueError):
            Transport(Simulator(), default_delay=-0.1)


class TestDropRules:
    """The partition drop/heal rule layer (scenario-engine PR)."""

    def wired(self):
        sim, net = make_net(default_delay=0.1)
        handlers = {}
        for name in ("a", "b", "c"):
            handlers[name] = Recorder()
            net.register(name, handlers[name])
        return sim, net, handlers

    def test_drop_rule_blocks_delivery_but_charges_the_hop(self):
        sim, net, handlers = self.wired()
        observed = []
        net.add_send_observer(lambda s, d, m: observed.append((s, d)))
        net.add_drop_rule(lambda src, dst, message: dst == "b")
        net.send("a", "b", Ping())
        net.send("a", "c", Ping())
        sim.run()
        assert handlers["b"].received == []
        assert len(handlers["c"].received) == 1
        assert net.blocked == 1
        assert net.sent == 2
        # Observers fired for the blocked hop too: bandwidth was spent.
        assert observed == [("a", "b"), ("a", "c")]

    def test_remove_drop_rule_heals(self):
        sim, net, handlers = self.wired()
        rule_id = net.add_drop_rule(lambda *args: True)
        net.send("a", "b", Ping())
        net.remove_drop_rule(rule_id)
        net.send("a", "b", Ping())
        sim.run()
        assert len(handlers["b"].received) == 1
        assert net.blocked == 1

    def test_remove_unknown_rule_raises(self):
        _, net = make_net()
        with pytest.raises(KeyError, match="unknown drop rule"):
            net.remove_drop_rule(12345)

    def test_double_heal_raises(self):
        # Partition-heal idempotency: the first heal retires the handle,
        # a second heal of the same handle is a scenario bug and raises
        # instead of silently passing.
        _, net, _ = self.wired()
        rule_id = net.partition([["a"], ["b"]])
        net.remove_drop_rule(rule_id)
        with pytest.raises(KeyError):
            net.remove_drop_rule(rule_id)

    def test_multiple_rules_any_blocks(self):
        sim, net, handlers = self.wired()
        net.add_drop_rule(lambda src, dst, message: dst == "b")
        net.add_drop_rule(lambda src, dst, message: dst == "c")
        net.send("a", "b", Ping())
        net.send("a", "c", Ping())
        sim.run()
        assert handlers["b"].received == []
        assert handlers["c"].received == []
        assert net.blocked == 2

    def test_partition_blocks_only_cross_island_traffic(self):
        sim, net, handlers = self.wired()
        net.partition([["a", "b"], ["c"]])
        net.send("a", "b", Ping())  # intra-island
        net.send("a", "c", Ping())  # cross-island
        net.send("c", "b", Ping())  # cross-island, other direction
        sim.run()
        assert len(handlers["b"].received) == 1
        assert handlers["c"].received == []
        assert net.blocked == 2

    def test_nodes_outside_every_island_communicate_freely(self):
        sim, net, handlers = self.wired()
        net.partition([["a"], ["b"]])
        net.register("late", late := Recorder())
        net.send("a", "late", Ping())  # 'late' joined mid-partition
        net.send("late", "b", Ping())
        sim.run()
        assert len(late.received) == 1
        assert len(handlers["b"].received) == 1
        assert net.blocked == 0

    def test_send_direct_bypasses_rules(self):
        sim, net, handlers = self.wired()
        net.partition([["a"], ["b"]])
        net.send_direct("b", Ping(), delay=0.0, src="a")
        sim.run()
        assert len(handlers["b"].received) == 1
        assert net.blocked == 0
        assert net.sent_direct == 1

    def test_partition_rejects_overlapping_groups(self):
        _, net = make_net()
        with pytest.raises(ValueError, match="more than one"):
            net.partition([["a", "b"], ["b", "c"]])


class ScriptedRng:
    """Deterministic U(0, 1) source fed from a canned draw list."""

    def __init__(self, values):
        self.values = list(values)

    def random(self):
        return self.values.pop(0)


class Forkable(Message):
    """Fan-out requires forkable envelopes (like UpdateMessage)."""

    kind = "ping"
    __slots__ = ()

    def fork(self):
        return Forkable()


class TestLinkFaults:
    """The probabilistic loss/duplication/jitter fault layer."""

    def wired(self):
        sim, net = make_net(default_delay=0.1)
        handlers = {}
        for name in ("a", "b", "c"):
            handlers[name] = Recorder()
            net.register(name, handlers[name])
        return sim, net, handlers

    def test_probability_validation(self):
        rng = ScriptedRng([])
        with pytest.raises(ValueError, match="loss"):
            LinkFaults(rng, loss=1.5)
        with pytest.raises(ValueError, match="duplicate"):
            LinkFaults(rng, duplicate=-0.1)
        with pytest.raises(ValueError, match="jitter"):
            LinkFaults(rng, jitter=-1.0)
        with pytest.raises(ValueError, match="rng"):
            LinkFaults(None, loss=0.1)

    def test_add_rejects_non_spec(self):
        _, net = make_net()
        with pytest.raises(TypeError):
            net.add_link_faults(object())

    def test_remove_unknown_fault_rule_raises(self):
        _, net = make_net()
        with pytest.raises(KeyError, match="unknown"):
            net.remove_link_faults(999)

    def test_loss_drops_but_charges_the_hop(self):
        sim, net, handlers = self.wired()
        observed = []
        net.add_send_observer(lambda s, d, m: observed.append(d))
        net.add_link_faults(
            LinkFaults(ScriptedRng([0.4, 0.9]), loss=0.5)
        )
        net.send("a", "b", Ping())  # draw 0.4 < 0.5: lost
        net.send("a", "b", Ping())  # draw 0.9: survives
        sim.run()
        assert net.lost == 1
        assert net.sent == 2
        assert observed == ["b", "b"]  # bandwidth charged either way
        assert len(handlers["b"].received) == 1

    def test_duplicate_delivers_twice(self):
        sim, net, handlers = self.wired()
        net.add_link_faults(
            LinkFaults(ScriptedRng([0.1]), duplicate=0.5)
        )
        net.send("a", "b", Ping())
        sim.run()
        assert net.duplicated == 1
        assert len(handlers["b"].received) == 2
        assert net.sent == 1  # one send, two deliveries

    def test_jitter_delays_delivery(self):
        sim, net, handlers = self.wired()
        net.add_link_faults(LinkFaults(ScriptedRng([0.5]), jitter=1.0))
        net.send("a", "b", Ping())
        sim.run_until(0.55)  # default delay 0.1 + 0.5 jitter = 0.6
        assert handlers["b"].received == []
        sim.run()
        assert len(handlers["b"].received) == 1
        assert sim.now == pytest.approx(0.6)

    def test_reordering_counted(self):
        sim, net, handlers = self.wired()
        net.add_link_faults(
            LinkFaults(ScriptedRng([0.9, 0.0]), jitter=1.0)
        )
        first, second = Ping(), Ping()
        net.send("a", "b", first)   # arrives at 0.1 + 0.9 = 1.0
        net.send("a", "b", second)  # arrives at 0.1 + 0.0 = 0.1: overtakes
        sim.run()
        assert net.reordered == 1
        assert [m for m, _ in handlers["b"].received] == [second, first]

    def test_fanout_evaluates_faults_per_recipient(self):
        # The per-recipient contract (batched fan-out included): one
        # independent loss decision per destination, never one decision
        # for the whole batch.
        sim, net, handlers = self.wired()
        net.add_link_faults(
            LinkFaults(ScriptedRng([0.9, 0.1]), loss=0.5)
        )
        net.send_fanout("a", ["b", "c"], Forkable())
        sim.run()
        assert len(handlers["b"].received) == 1  # draw 0.9: survives
        assert handlers["c"].received == []      # draw 0.1: lost
        assert net.lost == 1
        assert net.sent == 2

    def test_fanout_evaluates_drop_rules_per_recipient(self):
        sim, net, handlers = self.wired()
        net.add_drop_rule(lambda src, dst, message: dst == "b")
        net.send_fanout("a", ["b", "c"], Forkable())
        sim.run()
        assert handlers["b"].received == []
        assert len(handlers["c"].received) == 1
        assert net.blocked == 1
        assert net.sent == 2

    def test_fanout_duplicate_per_recipient(self):
        sim, net, handlers = self.wired()
        net.add_link_faults(
            LinkFaults(ScriptedRng([0.1, 0.9]), duplicate=0.5)
        )
        net.send_fanout("a", ["b", "c"], Forkable())
        sim.run()
        assert len(handlers["b"].received) == 2  # duplicated
        assert len(handlers["c"].received) == 1
        assert net.duplicated == 1

    def test_remove_link_faults_heals(self):
        sim, net, handlers = self.wired()
        rule_id = net.add_link_faults(
            LinkFaults(ScriptedRng([0.0]), loss=1.0)
        )
        net.send("a", "b", Ping())
        net.remove_link_faults(rule_id)
        net.send("a", "b", Ping())  # no draw left, none needed
        sim.run()
        assert net.lost == 1
        assert len(handlers["b"].received) == 1
        with pytest.raises(KeyError):
            net.remove_link_faults(rule_id)

    def test_send_direct_bypasses_faults(self):
        sim, net, handlers = self.wired()
        net.add_link_faults(LinkFaults(ScriptedRng([]), loss=1.0))
        net.send_direct("b", Ping(), delay=0.1, src="a")
        sim.run()
        assert len(handlers["b"].received) == 1
        assert net.lost == 0

    def test_drop_rules_win_before_faults(self):
        # A blocked hop consumes no fault draws.
        sim, net, handlers = self.wired()
        net.add_drop_rule(lambda src, dst, message: True)
        net.add_link_faults(LinkFaults(ScriptedRng([]), loss=0.5))
        net.send("a", "b", Ping())
        sim.run()
        assert net.blocked == 1
        assert net.lost == 0
