"""Tests for keep-alive failure detection (§2.1)."""

import pytest

from repro.core.keepalive import KeepAliveMessage, KeepAliveMonitor
from repro.core.protocol import CupConfig, CupNetwork
from repro.sim.engine import Simulator
from repro.sim.network import Transport


class Probe:
    def __init__(self):
        self.suspects = []

    def __call__(self, reporter, suspect):
        self.suspects.append((reporter, suspect))


class Echo:
    """A handler that answers every keep-alive with one of its own."""

    def __init__(self, sim, transport, node_id, monitor=None):
        self._transport = transport
        self.node_id = node_id
        self.monitor = monitor

    def receive(self, message, sender):
        if self.monitor is not None:
            self.monitor.note_heard(sender)
        self._transport.send(self.node_id, sender, KeepAliveMessage())


class TestMonitorUnit:
    def build(self, miss_threshold=3):
        sim = Simulator()
        net = Transport(sim, default_delay=0.01)
        probe = Probe()
        monitor = KeepAliveMonitor(
            sim, net, "watcher", lambda: ["peer"],
            period=10.0, miss_threshold=miss_threshold, on_suspect=probe,
        )
        return sim, net, probe, monitor

    def test_validation(self):
        sim = Simulator()
        net = Transport(sim)
        with pytest.raises(ValueError):
            KeepAliveMonitor(sim, net, "w", lambda: [], 0.0, 3, lambda *a: None)
        with pytest.raises(ValueError):
            KeepAliveMonitor(sim, net, "w", lambda: [], 1.0, 0, lambda *a: None)

    def test_responsive_peer_never_suspected(self):
        sim, net, probe, monitor = self.build()
        echo = Echo(sim, net, "peer")
        net.register("peer", echo)

        # Wire the echo's replies back into the monitor.
        class Watcher:
            def receive(self, message, sender):
                monitor.note_heard(sender)

        net.register("watcher", Watcher())
        monitor.start()
        sim.run_until(200.0)
        assert probe.suspects == []
        assert monitor.beats_sent >= 19

    def test_silent_peer_suspected_after_threshold(self):
        sim, net, probe, monitor = self.build(miss_threshold=3)
        net.register("watcher", type("W", (), {"receive": lambda *a: None})())
        # "peer" is never registered: all heartbeats drop.
        monitor.start()
        sim.run_until(100.0)
        assert probe.suspects == [("watcher", "peer")]
        # Suspicion is raised once, not every period.
        assert monitor.suspicions_raised == 1
        # Detection latency: just past miss_threshold * period.
        assert 30.0 <= sim.now

    def test_hearing_again_clears_suspicion(self):
        sim, net, probe, monitor = self.build(miss_threshold=2)
        net.register("watcher", type("W", (), {"receive": lambda *a: None})())
        monitor.start()
        sim.run_until(50.0)
        assert monitor.suspected == {"peer"}
        monitor.note_heard("peer")
        assert monitor.suspected == set()

    def test_stop_halts_beats(self):
        sim, net, probe, monitor = self.build()
        net.register("watcher", type("W", (), {"receive": lambda *a: None})())
        monitor.start()
        sim.run_until(25.0)
        sent = monitor.beats_sent
        monitor.stop()
        sim.run_until(100.0)
        assert monitor.beats_sent == sent

    def test_departed_neighbors_forgotten(self):
        sim = Simulator()
        net = Transport(sim, default_delay=0.01)
        probe = Probe()
        neighbors = ["peer"]
        monitor = KeepAliveMonitor(
            sim, net, "watcher", lambda: list(neighbors),
            period=10.0, miss_threshold=2, on_suspect=probe,
        )
        net.register("watcher", type("W", (), {"receive": lambda *a: None})())
        monitor.start()
        sim.run_until(15.0)
        neighbors.clear()  # overlay rewired: peer no longer a neighbor
        sim.run_until(100.0)
        assert probe.suspects == []


def make_network(**overrides):
    base = dict(
        num_nodes=16, total_keys=2, query_rate=2.0, seed=6,
        entry_lifetime=100.0, query_start=100.0, query_duration=400.0,
        drain=100.0,
    )
    base.update(overrides)
    return CupNetwork(CupConfig(**base))


class TestNetworkIntegration:
    def test_crash_detected_and_repaired(self):
        net = make_network()
        net.enable_keepalive(period=5.0, miss_threshold=3)
        net.run_until(50.0)
        victim = next(iter(net.nodes))
        net.crash_node(victim)
        crash_time = net.sim.now
        net.run_until(crash_time + 60.0)
        assert net.failure_detections, "crash went undetected"
        detected_at, reporter, suspect = net.failure_detections[0]
        assert suspect == victim
        assert victim not in net.nodes
        assert victim not in net.overlay
        # Detection latency within a few threshold windows.
        assert detected_at - crash_time <= 5.0 * 3 * 3

    def test_no_false_positives_without_crashes(self):
        net = make_network()
        net.enable_keepalive(period=5.0, miss_threshold=3)
        net.run()
        assert net.failure_detections == []
        assert len(net.nodes) == 16

    def test_queries_recover_after_detection(self):
        net = make_network(num_nodes=16, total_keys=1, pfu_timeout=10.0)
        net.enable_keepalive(period=5.0, miss_threshold=2)
        net.run_until(99.0)
        key = net.keys[0]
        authority = net.overlay.authority(key)
        # Crash a node on some query path (not the authority itself).
        victim = next(
            n for n in net.nodes
            if n != authority and net.overlay.next_hop(n, key) == authority
        )
        net.crash_node(victim)
        net.run_until(net.sim.now + 100.0)
        assert any(s == victim for _, _, s in net.failure_detections)
        # Every node can still resolve the key.
        answered_before = (
            net.metrics.local_hits + net.metrics.answers_delivered
        )
        posted = 0
        for node_id in list(net.nodes):
            net.post_query(node_id, key)
            posted += 1
        net.run_until(net.sim.now + 30.0)
        answered = (
            net.metrics.local_hits + net.metrics.answers_delivered
            - answered_before
        )
        assert answered >= posted * 0.9

    def test_crash_unknown_node_rejected(self):
        net = make_network()
        with pytest.raises(ValueError):
            net.crash_node("ghost")

    def test_keepalives_not_counted_in_costs(self):
        quiet = make_network(seed=6)
        quiet_summary = quiet.run()
        noisy = make_network(seed=6)
        noisy.enable_keepalive(period=5.0, miss_threshold=3)
        noisy_summary = noisy.run()
        assert noisy_summary.total_cost == quiet_summary.total_cost

    def test_joiners_get_monitors(self):
        net = make_network()
        net.enable_keepalive(period=5.0, miss_threshold=3)
        net.run_until(20.0)
        node = net.join_node("late")
        assert node.keepalive_monitor is not None


class TestTimeoutEdgeCases:
    """Satellite of the scenario-engine PR: deadline boundary + heal."""

    def silent_peer_monitor(self, period=10.0, miss_threshold=3):
        sim = Simulator()
        net = Transport(sim, default_delay=0.01)
        probe = Probe()
        monitor = KeepAliveMonitor(
            sim, net, "watcher", lambda: ["peer"],
            period=period, miss_threshold=miss_threshold, on_suspect=probe,
        )
        net.register("watcher", type("W", (), {"receive": lambda *a: None})())
        return sim, net, probe, monitor

    def test_expiry_exactly_at_deadline_is_not_a_miss(self):
        """Silence of exactly period*miss_threshold does NOT suspect.

        The comparison is strict (``now - last > deadline``): the tick
        landing exactly on the deadline gives the neighbor its full
        grace; suspicion fires one period later.
        """
        sim, net, probe, monitor = self.silent_peer_monitor(
            period=10.0, miss_threshold=3
        )
        monitor.start()  # last_heard["peer"] = 0.0
        sim.run_until(30.0)  # ticks at 10, 20, 30; 30 - 0 == deadline
        assert probe.suspects == []
        assert monitor.suspected == set()
        sim.run_until(40.0)  # 40 - 0 > 30: first strictly-late tick
        assert probe.suspects == [("watcher", "peer")]

    def test_renewal_exactly_at_deadline_resets_the_clock(self):
        sim, net, probe, monitor = self.silent_peer_monitor(
            period=10.0, miss_threshold=2
        )
        monitor.start()
        sim.run_until(15.0)
        monitor.note_heard("peer")  # heard at t=15
        sim.run_until(35.0)  # ticks at 20, 30: 35-15 but checks are 20/30
        assert probe.suspects == []
        sim.run_until(40.0)  # tick at 40: 40 - 15 > 20 -> suspected
        assert probe.suspects == [("watcher", "peer")]

    def test_renewal_after_partition_heal(self):
        """A partitioned-off peer is suspected, then cleared on heal.

        Uses the transport's drop-rule layer: heartbeats cross the cut
        in neither direction, the monitor suspects, the partition heals,
        the next exchange proves the peer alive again, and the
        suspicion is re-armed (a fresh silence re-raises it).
        """
        sim = Simulator()
        net = Transport(sim, default_delay=0.01)
        probe = Probe()
        monitor = KeepAliveMonitor(
            sim, net, "watcher", lambda: ["peer"],
            period=10.0, miss_threshold=2, on_suspect=probe,
        )
        echo = Echo(sim, net, "peer")
        net.register("peer", echo)

        class Watcher:
            def receive(self, message, sender):
                monitor.note_heard(sender)

        net.register("watcher", Watcher())
        monitor.start()
        sim.run_until(15.0)
        assert monitor.suspected == set()

        rule_id = net.partition([["watcher"], ["peer"]])
        sim.run_until(50.0)
        assert monitor.suspected == {"peer"}
        assert monitor.suspicions_raised == 1
        assert net.blocked > 0

        net.remove_drop_rule(rule_id)
        sim.run_until(70.0)  # next beat gets echoed back across the heal
        assert monitor.suspected == set()

        # Re-armed: a second partition raises a second suspicion.
        net.partition([["watcher"], ["peer"]])
        sim.run_until(120.0)
        assert monitor.suspected == {"peer"}
        assert monitor.suspicions_raised == 2

    def test_network_survives_partition_false_alarm(self):
        """Integration: suspicion of a live (partitioned) node must not
        evict it — only genuinely crashed nodes complete the failure."""
        net = make_network()
        net.enable_keepalive(period=5.0, miss_threshold=2)
        net.run_until(50.0)
        members = sorted(net.nodes, key=str)
        rule_id = net.transport.partition([members[:8], members[8:]])
        net.run_until(120.0)
        net.transport.remove_drop_rule(rule_id)
        net.run_until(200.0)
        assert net.failure_detections == []
        assert len(net.nodes) == 16
