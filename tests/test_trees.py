"""Unit tests for CUP query trees (§2.10, §3.1)."""

import pytest

from repro.core.trees import QueryTree
from repro.overlay.can import CanOverlay


@pytest.fixture()
def grid():
    return CanOverlay.perfect_grid(64)


class TestVirtualTree:
    def test_spans_all_nodes(self, grid):
        tree = QueryTree.virtual(grid, "key-1")
        assert tree.nodes == set(grid.node_ids())

    def test_root_is_authority(self, grid):
        tree = QueryTree.virtual(grid, "key-1")
        assert tree.root == grid.authority("key-1")
        assert tree.parent[tree.root] is None
        assert tree.depth[tree.root] == 0

    def test_every_node_has_one_parent(self, grid):
        tree = QueryTree.virtual(grid, "key-1")
        for node in tree.nodes - {tree.root}:
            parent = tree.parent[node]
            assert parent is not None
            assert node in tree.children[parent]

    def test_depths_match_route_lengths(self, grid):
        tree = QueryTree.virtual(grid, "key-1")
        for node in list(tree.nodes)[:16]:
            assert tree.depth[node] == grid.distance(node, "key-1")

    def test_path_to_root_follows_overlay_route(self, grid):
        tree = QueryTree.virtual(grid, "key-1")
        node = next(iter(tree.nodes - {tree.root}))
        assert tree.path_to_root(node) == grid.route(node, "key-1")


class TestRealTree:
    def test_subset_of_virtual(self, grid):
        real = QueryTree.real(grid, "key-1", [0, 17, 35])
        virtual = QueryTree.virtual(grid, "key-1")
        assert real.nodes <= virtual.nodes
        for node in real.nodes - {real.root}:
            assert real.parent[node] == virtual.parent[node]

    def test_contains_querying_paths(self, grid):
        real = QueryTree.real(grid, "key-1", [42])
        assert set(grid.route(42, "key-1")) == real.nodes

    def test_empty_real_tree_is_root_only(self, grid):
        real = QueryTree.real(grid, "key-1", [])
        assert real.nodes == {real.root}

    def test_overlapping_paths_merge(self, grid):
        a, b = 3, 4
        real = QueryTree.real(grid, "key-1", [a, b])
        assert len(real) <= len(grid.route(a, "key-1")) + len(
            grid.route(b, "key-1")
        )


class TestSubtrees:
    def test_subtree_of_root_is_everything(self, grid):
        tree = QueryTree.virtual(grid, "key-1")
        assert set(tree.subtree(tree.root)) == tree.nodes

    def test_subtree_members_route_through_node(self, grid):
        tree = QueryTree.virtual(grid, "key-1")
        # Pick an interior node (a child of the root).
        interior = tree.children[tree.root][0]
        for member in tree.subtree(interior):
            assert interior in tree.path_to_root(member)

    def test_subtree_of_unknown_node_raises(self, grid):
        tree = QueryTree.real(grid, "key-1", [0])
        with pytest.raises(KeyError):
            list(tree.subtree("not-there"))

    def test_nodes_within_level(self, grid):
        tree = QueryTree.virtual(grid, "key-1")
        reachable = tree.nodes_within(2)
        assert all(tree.depth[n] <= 2 for n in reachable)
        assert tree.root in reachable

    def test_max_depth(self, grid):
        tree = QueryTree.virtual(grid, "key-1")
        assert tree.max_depth() == max(tree.depth.values())

    def test_aggregate_rate_sums_subtree(self, grid):
        tree = QueryTree.virtual(grid, "key-1")
        rates = {node: 0.5 for node in tree.nodes}
        assert tree.aggregate_rate(tree.root, rates) == pytest.approx(
            0.5 * len(tree)
        )
        leaf = next(n for n in tree.nodes if not tree.children.get(n))
        assert tree.aggregate_rate(leaf, rates) == 0.5

    def test_contains_and_len(self, grid):
        tree = QueryTree.real(grid, "key-1", [9])
        assert 9 in tree
        assert len(tree) == len(tree.nodes)
