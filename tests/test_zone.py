"""Unit tests for CAN zone geometry."""

import pytest

from repro.overlay.can import Zone


def unit_square():
    return Zone((0.0, 0.0), (1.0, 1.0))


class TestZoneBasics:
    def test_contains_interior_point(self):
        zone = Zone((0.0, 0.0), (0.5, 0.5))
        assert zone.contains((0.25, 0.25))

    def test_half_open_boundaries(self):
        zone = Zone((0.0, 0.0), (0.5, 0.5))
        assert zone.contains((0.0, 0.0))
        assert not zone.contains((0.5, 0.25))
        assert not zone.contains((0.25, 0.5))

    def test_volume(self):
        assert Zone((0.0, 0.0), (0.5, 0.25)).volume() == pytest.approx(0.125)

    def test_center(self):
        assert Zone((0.0, 0.0), (0.5, 0.5)).center() == (0.25, 0.25)

    def test_invalid_extent_rejected(self):
        with pytest.raises(ValueError):
            Zone((0.5, 0.0), (0.5, 1.0))  # zero width
        with pytest.raises(ValueError):
            Zone((0.0,), (1.0, 1.0))  # dim mismatch
        with pytest.raises(ValueError):
            Zone((-0.1, 0.0), (1.0, 1.0))  # outside unit cube

    def test_equality_and_hash(self):
        a = Zone((0.0, 0.0), (0.5, 0.5))
        b = Zone((0.0, 0.0), (0.5, 0.5))
        assert a == b and hash(a) == hash(b)


class TestSplit:
    def test_split_halves_longest_dimension(self):
        zone = Zone((0.0, 0.0), (1.0, 0.5))
        left, right = zone.split()
        assert left == Zone((0.0, 0.0), (0.5, 0.5))
        assert right == Zone((0.5, 0.0), (1.0, 0.5))

    def test_split_explicit_dimension(self):
        zone = unit_square()
        bottom, top = zone.split(dim=1)
        assert bottom == Zone((0.0, 0.0), (1.0, 0.5))
        assert top == Zone((0.0, 0.5), (1.0, 1.0))

    def test_split_preserves_volume(self):
        zone = Zone((0.25, 0.0), (0.75, 0.5))
        a, b = zone.split()
        assert a.volume() + b.volume() == pytest.approx(zone.volume())

    def test_longest_dim_tie_prefers_lowest(self):
        assert unit_square().longest_dim() == 0

    def test_repeated_splits_stay_exact(self):
        zone = unit_square()
        for _ in range(30):
            zone, _ = zone.split()
        # Dyadic boundaries stay exactly representable.
        dim = zone.longest_dim()
        a, b = zone.split()
        assert a.hi[dim] == b.lo[dim]
        assert a.try_merge(b) == zone


class TestDistance:
    def test_zero_inside(self):
        assert unit_square().torus_distance((0.3, 0.7)) == 0.0

    def test_axis_distance(self):
        zone = Zone((0.0, 0.0), (0.25, 1.0))
        # Point at x=0.5: nearest zone edge at x=0.25 -> distance 0.25.
        assert zone.torus_distance((0.5, 0.5)) == pytest.approx(0.25 ** 2)

    def test_wraparound_distance(self):
        zone = Zone((0.0, 0.0), (0.25, 1.0))
        # Point at x=0.9 is 0.1 away across the seam, not 0.65 away.
        assert zone.torus_distance((0.9, 0.5)) == pytest.approx(0.1 ** 2)

    def test_diagonal_combines_dimensions(self):
        zone = Zone((0.0, 0.0), (0.25, 0.25))
        d = zone.torus_distance((0.5, 0.5))
        assert d == pytest.approx(0.25 ** 2 + 0.25 ** 2)


class TestAbuts:
    def test_face_adjacency(self):
        a = Zone((0.0, 0.0), (0.5, 0.5))
        b = Zone((0.5, 0.0), (1.0, 0.5))
        assert a.abuts(b) and b.abuts(a)

    def test_corner_contact_is_not_adjacency(self):
        a = Zone((0.0, 0.0), (0.5, 0.5))
        b = Zone((0.5, 0.5), (1.0, 1.0))
        assert not a.abuts(b)

    def test_seam_adjacency(self):
        a = Zone((0.0, 0.0), (0.25, 1.0))
        b = Zone((0.75, 0.0), (1.0, 1.0))
        assert a.abuts(b)  # touching across the 1.0 -> 0.0 seam

    def test_partial_overlap_side(self):
        a = Zone((0.0, 0.0), (0.5, 0.5))
        b = Zone((0.5, 0.25), (1.0, 0.75))
        assert a.abuts(b)

    def test_disjoint_not_adjacent(self):
        a = Zone((0.0, 0.0), (0.25, 0.25))
        b = Zone((0.5, 0.5), (0.75, 0.75))
        assert not a.abuts(b)

    def test_identical_zones_not_adjacent(self):
        a = unit_square()
        assert not a.abuts(unit_square())

    def test_full_width_zone_adjacent_vertically(self):
        a = Zone((0.0, 0.0), (1.0, 0.5))
        b = Zone((0.0, 0.5), (1.0, 1.0))
        assert a.abuts(b)


class TestMerge:
    def test_merge_along_x(self):
        a = Zone((0.0, 0.0), (0.5, 0.5))
        b = Zone((0.5, 0.0), (1.0, 0.5))
        assert a.try_merge(b) == Zone((0.0, 0.0), (1.0, 0.5))
        assert b.try_merge(a) == Zone((0.0, 0.0), (1.0, 0.5))

    def test_merge_requires_identical_other_extents(self):
        a = Zone((0.0, 0.0), (0.5, 0.5))
        b = Zone((0.5, 0.0), (1.0, 0.25))
        assert a.try_merge(b) is None

    def test_merge_requires_abutment(self):
        a = Zone((0.0, 0.0), (0.25, 0.5))
        b = Zone((0.5, 0.0), (0.75, 0.5))
        assert a.try_merge(b) is None

    def test_identical_zones_do_not_merge(self):
        a = unit_square()
        assert a.try_merge(unit_square()) is None

    def test_split_then_merge_roundtrip(self):
        zone = Zone((0.25, 0.25), (0.75, 0.75))
        a, b = zone.split()
        assert a.try_merge(b) == zone
