"""Tests for the unreliable-transport recovery layer.

Unit-level: the :class:`RecoveryManager` state machine driven directly —
sequence stamping, gap detection, NACK retransmission, capped
exponential backoff, duplicate suppression, degradation to pull, and
membership pruning.  Integration-level: whole networks over a faulty
transport (the chaos built-ins), crash/recover membership, and the
quiescence convergence audit including its violation path.
"""

import pytest

from repro.core.messages import NackMessage, UpdateMessage, UpdateType
from repro.core.protocol import CupConfig, CupNetwork
from repro.core.recovery import RecoveryConfig, RecoveryManager
from repro.scenarios import SCENARIOS, with_chaos
from repro.scenarios.runner import run_scenario
from repro.sim.engine import Simulator
from repro.sim.network import Transport


class Recorder:
    def __init__(self):
        self.received = []

    def receive(self, message, sender):
        self.received.append((message, sender))


class FakeMetrics:
    """Just the recovery counters the manager increments."""

    def __init__(self):
        self.gaps_detected = 0
        self.nacks_sent = 0
        self.recovery_retries = 0
        self.recovered_updates = 0
        self.degraded_reads = 0
        self.degraded_repromotions = 0
        self.duplicates_suppressed = 0


def _stale_copy(entry):
    """A version-rolled-back duplicate of a cached index entry."""
    from repro.core.entry import IndexEntry

    return IndexEntry(
        key=entry.key, replica_id=entry.replica_id, address=entry.address,
        lifetime=entry.lifetime, timestamp=entry.timestamp,
        sequence=entry.sequence - 1,
    )


def make_update(key="k00000", seq=None):
    update = UpdateMessage(key, UpdateType.REFRESH, (), "r0", issued_at=0.0)
    update.hop_seq = seq
    return update


def make_manager(config=None, node_id="child"):
    sim = Simulator()
    net = Transport(sim, default_delay=0.1)
    inboxes = {"parent": Recorder(), "child": Recorder()}
    for name, inbox in inboxes.items():
        net.register(name, inbox)
    metrics = FakeMetrics()
    pulls = []
    manager = RecoveryManager(
        sim, net, node_id, metrics, config or RecoveryConfig(),
        request_pull=pulls.append,
    )
    return sim, net, inboxes, manager, metrics, pulls


class TestRecoveryConfig:
    def test_defaults_valid(self):
        config = RecoveryConfig()
        assert config.max_retries == 4
        assert config.buffer_size == 64

    @pytest.mark.parametrize("bad", [
        dict(max_retries=-1),
        dict(base_timeout=0.0),
        dict(backoff=0.5),
        dict(max_timeout=0.1, base_timeout=0.5),
        dict(buffer_size=0),
    ])
    def test_invalid_knobs_rejected(self, bad):
        with pytest.raises(ValueError):
            RecoveryConfig(**bad)

    def test_cup_config_resolves_recovery_knobs(self):
        config = CupConfig(
            num_nodes=8, reliable_transport=False,
            recovery_max_retries=2, recovery_base_timeout=0.25,
        )
        resolved = config.resolved_recovery()
        assert resolved.max_retries == 2
        assert resolved.base_timeout == 0.25

    def test_invalid_recovery_knobs_rejected_at_validate(self):
        config = CupConfig(
            num_nodes=8, reliable_transport=False, recovery_backoff=0.0
        )
        with pytest.raises(ValueError):
            config.validate()


class TestStamping:
    def test_sequences_monotonic_per_link(self):
        _, _, _, manager, _, _ = make_manager(node_id="parent")
        for expected in (1, 2, 3):
            update = make_update()
            manager.stamp("child", update)
            assert update.hop_seq == expected

    def test_links_independent(self):
        _, _, _, manager, _, _ = make_manager(node_id="parent")
        a, b = make_update("ka"), make_update("kb")
        manager.stamp("child", a)
        manager.stamp("child", b)
        assert a.hop_seq == 1 and b.hop_seq == 1
        other = make_update("ka")
        manager.stamp("other-child", other)
        assert other.hop_seq == 1

    def test_nack_retransmits_buffered_forks(self):
        sim, _, inboxes, manager, _, _ = make_manager(node_id="parent")
        originals = [make_update() for _ in range(3)]
        for update in originals:
            manager.stamp("child", update)
        manager.handle_nack(NackMessage("k00000", (2, 3)), "child")
        sim.run()
        resent = [m for m, _ in inboxes["child"].received]
        assert sorted(m.hop_seq for m in resent) == [2, 3]
        # Retransmissions are forks, never the buffered envelope itself.
        assert all(m not in originals for m in resent)

    def test_buffer_is_bounded_and_evicts_fifo(self):
        config = RecoveryConfig(buffer_size=4)
        sim, _, inboxes, manager, _, _ = make_manager(config, "parent")
        for _ in range(10):
            manager.stamp("child", make_update())
        # Seqs 1..6 were evicted; only 7..10 remain resendable.
        manager.handle_nack(NackMessage("k00000", (1, 2, 9)), "child")
        sim.run()
        assert [m.hop_seq for m, _ in inboxes["child"].received] == [9]

    def test_nack_for_unknown_link_is_ignored(self):
        sim, _, inboxes, manager, _, _ = make_manager(node_id="parent")
        manager.handle_nack(NackMessage("k00000", (1,)), "child")
        sim.run()
        assert inboxes["child"].received == []


class TestGapDetection:
    def test_in_order_arrivals_apply_and_advance_watermark(self):
        _, _, _, manager, metrics, _ = make_manager()
        for seq in (1, 2, 3):
            assert manager.note_received("parent", "k00000", seq)
            assert manager.watermark("parent", "k00000") == seq
        assert metrics.gaps_detected == 0
        assert manager.open_gaps() == {}

    def test_jump_opens_gap_and_nacks_upstream(self):
        sim, _, inboxes, manager, metrics, _ = make_manager()
        assert manager.note_received("parent", "k00000", 1)
        assert manager.note_received("parent", "k00000", 4)
        assert metrics.gaps_detected == 2
        assert manager.open_gaps() == {("parent", "k00000"): (2, 3)}
        sim.run_until(0.2)  # deliver the NACK, don't reach the retry timer
        nacks = [m for m, _ in inboxes["parent"].received]
        assert len(nacks) == 1
        assert nacks[0].kind == "nack"
        assert nacks[0].key == "k00000"
        assert nacks[0].missing == (2, 3)
        assert metrics.nacks_sent == 1

    def test_late_arrivals_fill_gap_and_close_it(self):
        _, _, _, manager, metrics, _ = make_manager()
        manager.note_received("parent", "k00000", 1)
        manager.note_received("parent", "k00000", 4)
        assert manager.note_received("parent", "k00000", 2)
        assert manager.note_received("parent", "k00000", 3)
        assert metrics.recovered_updates == 2
        assert manager.open_gaps() == {}
        # The watermark never regressed while the gap filled.
        assert manager.watermark("parent", "k00000") == 4

    def test_duplicates_suppressed(self):
        _, _, _, manager, metrics, _ = make_manager()
        manager.note_received("parent", "k00000", 1)
        assert not manager.note_received("parent", "k00000", 1)
        assert metrics.duplicates_suppressed == 1
        # A gap member arriving twice: first fills, second suppresses.
        manager.note_received("parent", "k00000", 3)
        assert manager.note_received("parent", "k00000", 2)
        assert not manager.note_received("parent", "k00000", 2)
        assert metrics.duplicates_suppressed == 2

    def test_growing_gap_counts_only_new_members(self):
        _, _, _, manager, metrics, _ = make_manager()
        manager.note_received("parent", "k00000", 2)  # gap {1}
        manager.note_received("parent", "k00000", 4)  # gap {1, 3}
        assert metrics.gaps_detected == 2
        assert manager.open_gaps() == {("parent", "k00000"): (1, 3)}


class TestRetryAndDegradation:
    def test_backoff_schedule_then_degrade(self):
        config = RecoveryConfig(max_retries=2, base_timeout=0.5, backoff=2.0)
        sim, _, inboxes, manager, metrics, pulls = make_manager(config)
        manager.note_received("parent", "k00000", 2)  # gap {1}, never filled
        sim.run()
        # Timer fires at 0.5, 0.5+1.0=1.5, 1.5+2.0=3.5 (degrade).
        assert sim.now == pytest.approx(3.5)
        assert metrics.recovery_retries == 2
        assert metrics.nacks_sent == 3  # initial + 2 retries
        assert metrics.degraded_reads == 1
        assert manager.degraded_keys == {"k00000"}
        assert pulls == ["k00000"]
        assert manager.open_gaps() == {}

    def test_timeout_capped_at_max(self):
        config = RecoveryConfig(
            max_retries=1, base_timeout=1.0, backoff=10.0, max_timeout=2.0
        )
        sim, _, _, manager, _, pulls = make_manager(config)
        manager.note_received("parent", "k00000", 2)
        sim.run()
        # 1.0 (first retry) + min(10.0, 2.0) = 3.0 degrade, not 11.0.
        assert sim.now < 4.0
        assert pulls == ["k00000"]

    def test_fill_before_timeout_cancels_timer(self):
        sim, _, _, manager, metrics, pulls = make_manager()
        manager.note_received("parent", "k00000", 2)
        manager.note_received("parent", "k00000", 1)
        sim.run()
        assert metrics.recovery_retries == 0
        assert pulls == []
        assert sim.now < 1.0  # nothing left but the one NACK delivery

    def test_zero_retries_degrades_on_first_timeout(self):
        config = RecoveryConfig(max_retries=0)
        sim, _, _, manager, metrics, pulls = make_manager(config)
        manager.note_received("parent", "k00000", 2)
        sim.run()
        assert metrics.recovery_retries == 0
        assert pulls == ["k00000"]

    def test_corpse_sends_no_nacks(self):
        sim, net, inboxes, manager, metrics, _ = make_manager()
        net.unregister("child")  # the owner itself went dark
        manager.note_received("parent", "k00000", 3)
        sim.run_until(0.5)
        assert inboxes["parent"].received == []
        assert metrics.nacks_sent == 0

    def test_nack_skipped_when_sender_departed(self):
        sim, net, inboxes, manager, metrics, _ = make_manager()
        net.unregister("parent")
        manager.note_received("parent", "k00000", 3)
        sim.run_until(0.4)
        assert metrics.nacks_sent == 0


class TestRepromotion:
    """Degraded marks lift when the recovery pull is finally answered."""

    def _degraded_manager(self):
        config = RecoveryConfig(max_retries=0, base_timeout=0.1)
        sim, _, _, manager, metrics, pulls = make_manager(config)
        manager.note_received("parent", "k00000", 2)  # gap, never filled
        sim.run()
        assert manager.degraded_keys == {"k00000"}
        assert pulls == ["k00000"]
        return manager, metrics

    def test_note_refreshed_clears_the_mark_and_counts(self):
        manager, metrics = self._degraded_manager()
        manager.note_refreshed("k00000")
        assert manager.degraded_keys == set()
        assert metrics.degraded_repromotions == 1

    def test_note_refreshed_is_idempotent(self):
        manager, metrics = self._degraded_manager()
        manager.note_refreshed("k00000")
        manager.note_refreshed("k00000")
        assert metrics.degraded_repromotions == 1

    def test_note_refreshed_on_never_degraded_key_is_a_noop(self):
        _, _, _, manager, metrics, _ = make_manager()
        manager.note_refreshed("other")
        assert metrics.degraded_repromotions == 0
        assert manager.degraded_keys == set()

    def test_key_can_degrade_again_after_repromotion(self):
        config = RecoveryConfig(max_retries=0, base_timeout=0.1)
        sim, _, _, manager, metrics, pulls = make_manager(config)
        manager.note_received("parent", "k00000", 2)
        sim.run()
        manager.note_refreshed("k00000")
        manager.note_received("parent", "k00000", 5)  # fresh gap
        sim.run()
        assert manager.degraded_keys == {"k00000"}
        assert metrics.degraded_reads == 2
        assert metrics.degraded_repromotions == 1

    def test_pull_response_repromotes_through_the_node(self):
        """End to end over a lossy mesh: keys degraded mid-run lift
        their mark once maintenance traffic re-delivers fresh state, and
        the run's report carries the re-promotion count."""
        scenario = with_chaos(
            SCENARIOS["flash-crowd"], loss=0.3, duplicate=0.1
        )
        result = run_scenario(
            scenario, seed=7, raise_on_violation=False, convergence=True
        )
        report = result.network.metrics.recovery_report()
        assert "degraded_repromotions" in report
        assert report["degraded_repromotions"] >= 0
        degraded_now = set()
        for node in result.network.nodes.values():
            if node.recovery is not None:
                degraded_now |= node.recovery.degraded_keys
        # Every currently-marked key must still be justified: marks are
        # no longer append-only, so the union reflects only keys whose
        # pulls have not yet been answered.
        assert report["degraded_reads"] >= len(degraded_now)


class TestPrunePeers:
    def test_gap_toward_departed_peer_degrades_immediately(self):
        sim, _, _, manager, metrics, pulls = make_manager()
        manager.note_received("parent", "k00000", 3)
        manager.prune_peers(alive=["child"])
        assert pulls == ["k00000"]
        assert metrics.degraded_reads == 1
        assert manager.open_gaps() == {}
        assert manager.watermark("parent", "k00000") == 0  # state dropped
        sim.run()
        assert metrics.recovery_retries == 0  # timer went with the gap

    def test_state_toward_alive_peers_survives(self):
        _, _, _, manager, _, pulls = make_manager()
        manager.note_received("parent", "k00000", 3)
        manager.prune_peers(alive=["parent", "child"])
        assert pulls == []
        assert manager.open_gaps() == {("parent", "k00000"): (1, 2)}
        assert manager.watermark("parent", "k00000") == 3


class TestNodeWiring:
    def tiny(self, **overrides):
        base = dict(
            num_nodes=16, total_keys=4, query_rate=3.0, seed=11,
            entry_lifetime=40.0, query_start=60.0, query_duration=120.0,
            drain=60.0,
        )
        base.update(overrides)
        return CupConfig(**base)

    def test_reliable_default_has_no_recovery_manager(self):
        net = CupNetwork(self.tiny())
        assert all(node.recovery is None for node in net.nodes.values())

    def test_unreliable_config_wires_recovery_everywhere(self):
        net = CupNetwork(self.tiny(reliable_transport=False))
        assert all(
            node.recovery is not None for node in net.nodes.values()
        )
        # Stamping happens on the per-child path only; batching is off.
        assert all(not node.batched_fanout for node in net.nodes.values())

    def test_standard_mode_never_gets_recovery(self):
        net = CupNetwork(
            self.tiny(reliable_transport=False, mode="standard")
        )
        assert all(node.recovery is None for node in net.nodes.values())


class TestCrashRecover:
    def tiny(self):
        return CupConfig(
            num_nodes=16, total_keys=4, query_rate=3.0, seed=11,
            entry_lifetime=40.0, query_start=60.0, query_duration=120.0,
            drain=60.0,
        )

    def test_crash_then_recover_restores_membership(self):
        net = CupNetwork(self.tiny())
        checker = net.attach_invariants(hazards={"crash"})
        net.run_until(80.0)
        victim = next(iter(net.nodes))
        net.crash_node(victim)
        assert not net.transport.is_registered(victim)
        assert victim not in net._member_list
        net.run_until(90.0)
        net.recover_node(victim)
        assert net.transport.is_registered(victim)
        assert victim in net._member_list
        assert victim not in net._crashed
        net.run()
        assert checker.ok

    def test_recover_requires_a_crashed_node(self):
        net = CupNetwork(self.tiny())
        net.attach_invariants(hazards={"crash"})
        with pytest.raises(ValueError, match="not crashed"):
            net.recover_node(next(iter(net.nodes)))

    def test_recover_unknown_node_rejected(self):
        net = CupNetwork(self.tiny())
        with pytest.raises(ValueError, match="not a member"):
            net.recover_node("ghost")


class TestEndToEnd:
    def test_lossy_mesh_recovers_and_converges(self):
        result = run_scenario(
            SCENARIOS["lossy-mesh"], seed=7, convergence=True
        )
        assert result.ok
        transport = result.network.transport
        assert transport.lost > 0
        report = result.network.metrics.recovery_report()
        assert report["gaps_detected"] > 0
        assert report["recovered_updates"] > 0
        assert "transport faults:" in result.report()
        assert "recovery:" in result.report()

    def test_chaos_monkey_survives_everything(self):
        result = run_scenario(
            SCENARIOS["chaos-monkey"], seed=7, convergence=True
        )
        assert result.ok
        transport = result.network.transport
        assert transport.lost > 0
        assert transport.duplicated > 0
        assert not result.network._crashed  # every victim recovered

    def test_with_chaos_wraps_any_scenario(self):
        chaotic = with_chaos(
            SCENARIOS["steady-state"], loss=0.2, duplicate=0.1, jitter=0.1
        )
        assert chaotic.name == "steady-state+chaos"
        assert {"loss", "duplication", "reorder"} <= chaotic.hazards()
        assert ("reliable_transport", False) in chaotic.overrides
        result = run_scenario(chaotic, seed=7, convergence=True)
        assert result.ok
        assert result.network.transport.lost > 0

    def test_with_chaos_requires_a_fault(self):
        with pytest.raises(ValueError, match="at least one"):
            with_chaos(SCENARIOS["steady-state"], 0.0, 0.0, 0.0)


class TestConvergenceAudit:
    def tiny(self):
        return CupConfig(
            num_nodes=16, total_keys=4, query_rate=3.0, seed=11,
            entry_lifetime=40.0, query_start=60.0, query_duration=120.0,
            drain=60.0,
        )

    def test_invalid_slack_rejected(self):
        net = CupNetwork(self.tiny())
        checker = net.attach_invariants()
        with pytest.raises(ValueError, match="slack"):
            checker.audit_convergence(slack=-1.0)

    def test_clean_run_converges(self):
        net = CupNetwork(self.tiny())
        checker = net.attach_invariants()
        net.run()
        checker.audit_convergence(slack=0.0)
        assert checker.ok

    def test_silent_staleness_detected(self):
        net = CupNetwork(self.tiny())
        checker = net.attach_invariants(raise_immediately=False)
        net.run()
        # Roll back one subscribed node's cached version — the silent
        # staleness a broken recovery layer would leave behind.
        corrupted = False
        for node_id, node in net.nodes.items():
            for state in node.cache:
                key = state.key
                authority_id = net.overlay.authority(key)
                if authority_id == node_id:
                    continue
                settled = net.nodes[authority_id].authority_index \
                    .fresh_entries(key, net.sim.now)
                if not settled:
                    continue
                if not checker._subscribed(node_id, key, authority_id):
                    continue
                held = state.entries.get(settled[0].replica_id)
                if held is None:
                    continue
                # A distinct stale copy: cache entries can alias the
                # authority's own objects, and mutating a shared entry
                # would "age" both sides of the comparison at once.
                state.entries[held.replica_id] = _stale_copy(held)
                corrupted = True
                break
            if corrupted:
                break
        assert corrupted, "no subscribed cached entry found to corrupt"
        checker.audit_convergence(slack=0.0)
        assert not checker.ok
        assert any(
            v.invariant == "convergence" for v in checker.violations
        )

    def test_degraded_key_is_excused(self):
        net = CupNetwork(self.tiny())
        checker = net.attach_invariants(raise_immediately=False)
        net.run()
        # Same corruption as above, but the node declared the key
        # degraded — the audit must excuse it.
        for node_id, node in net.nodes.items():
            for state in node.cache:
                key = state.key
                authority_id = net.overlay.authority(key)
                if authority_id == node_id:
                    continue
                settled = net.nodes[authority_id].authority_index \
                    .fresh_entries(key, net.sim.now)
                if not settled:
                    continue
                if not checker._subscribed(node_id, key, authority_id):
                    continue
                held = state.entries.get(settled[0].replica_id)
                if held is None:
                    continue
                state.entries[held.replica_id] = _stale_copy(held)
                node.recovery = RecoveryManager(
                    net.sim, net.transport, node_id, None,
                    RecoveryConfig(), request_pull=lambda key: None,
                )
                node.recovery.degraded_keys.add(key)
                checker.audit_convergence(slack=0.0)
                assert checker.ok
                return
        pytest.fail("no subscribed cached entry found to corrupt")

    def test_runner_requires_invariants_for_convergence(self):
        with pytest.raises(ValueError, match="invariants"):
            run_scenario(
                SCENARIOS["steady-state"], invariants=False,
                convergence=True,
            )
