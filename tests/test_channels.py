"""Unit tests for outgoing update channels and capacity control (§2.8)."""

import numpy as np
import pytest

from repro.core.channels import CapacityConfig, OutgoingUpdateChannels
from repro.core.entry import IndexEntry
from repro.core.messages import UpdateMessage, UpdateType
from repro.sim.engine import Simulator


def entry(lifetime=100.0, timestamp=0.0, replica="k/r0"):
    return IndexEntry("k", replica, "addr", lifetime, timestamp)


def update(update_type=UpdateType.REFRESH, lifetime=100.0, timestamp=0.0):
    return UpdateMessage(
        "k", update_type, (entry(lifetime, timestamp),), "k/r0", timestamp
    )


def make_channels(capacity=None, rng=None):
    sim = Simulator()
    sent = []
    channels = OutgoingUpdateChannels(
        sim, lambda neighbor, u: sent.append((neighbor, u)),
        capacity=capacity, rng=rng,
    )
    return sim, channels, sent


class TestCapacityConfig:
    def test_defaults_unlimited(self):
        assert CapacityConfig().unlimited()

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            CapacityConfig(fraction=-0.1)
        with pytest.raises(ValueError):
            CapacityConfig(fraction=1.1)

    def test_rate_must_be_positive(self):
        with pytest.raises(ValueError):
            CapacityConfig(rate=0.0)

    def test_limited_configs(self):
        assert not CapacityConfig(fraction=0.5).unlimited()
        assert not CapacityConfig(rate=10.0).unlimited()


class TestUnlimited:
    def test_sends_immediately(self):
        _, channels, sent = make_channels()
        assert channels.push("n1", update())
        assert len(sent) == 1
        assert channels.forwarded == 1


class TestFractionalCapacity:
    def test_zero_fraction_suppresses_maintenance(self):
        rng = np.random.default_rng(1)
        _, channels, sent = make_channels(CapacityConfig(fraction=0.0), rng)
        assert not channels.push("n1", update(UpdateType.REFRESH))
        assert sent == []
        assert channels.suppressed == 1

    def test_first_time_updates_bypass_fraction(self):
        rng = np.random.default_rng(1)
        _, channels, sent = make_channels(CapacityConfig(fraction=0.0), rng)
        assert channels.push("n1", update(UpdateType.FIRST_TIME))
        assert len(sent) == 1

    def test_fraction_statistics(self):
        rng = np.random.default_rng(7)
        _, channels, sent = make_channels(CapacityConfig(fraction=0.25), rng)
        for _ in range(2000):
            channels.push("n1", update())
        assert 400 <= len(sent) <= 600  # ~500 expected

    def test_fraction_without_rng_raises(self):
        _, channels, _ = make_channels(CapacityConfig(fraction=0.5), rng=None)
        with pytest.raises(RuntimeError):
            channels.push("n1", update())


class TestRatePump:
    def test_rate_spaces_sends(self):
        sim, channels, sent = make_channels(CapacityConfig(rate=2.0))
        for _ in range(4):
            channels.push("n1", update())
        sim.run_until(1.0)   # 2 sends fit in the first second
        assert len(sent) == 2
        sim.run_until(2.0)
        assert len(sent) == 4

    def test_priority_ordering_within_queue(self):
        sim, channels, sent = make_channels(CapacityConfig(rate=10.0))
        channels.push("n1", update(UpdateType.APPEND))
        channels.push("n1", update(UpdateType.REFRESH))
        channels.push("n1", update(UpdateType.DELETE))
        channels.push("n1", update(UpdateType.FIRST_TIME))
        sim.run_until(1.0)
        kinds = [u.update_type for _, u in sent]
        assert kinds == [
            UpdateType.FIRST_TIME,
            UpdateType.DELETE,
            UpdateType.REFRESH,
            UpdateType.APPEND,
        ]

    def test_near_expiry_first_within_type(self):
        sim, channels, sent = make_channels(CapacityConfig(rate=10.0))
        late = update(UpdateType.REFRESH, lifetime=500.0)
        soon = update(UpdateType.REFRESH, lifetime=50.0)
        channels.push("n1", late)
        channels.push("n1", soon)
        sim.run_until(1.0)
        assert sent[0][1] is soon
        assert sent[1][1] is late

    def test_longest_queue_served_first(self):
        sim, channels, sent = make_channels(CapacityConfig(rate=1.0))
        channels.push("a", update())
        channels.push("b", update())
        channels.push("b", update())
        sim.run_until(1.0)
        assert sent[0][0] == "b"

    def test_expired_updates_dropped_from_queue(self):
        sim, channels, sent = make_channels(CapacityConfig(rate=1.0))
        channels.push("n1", update(lifetime=0.5))
        channels.push("n1", update(lifetime=100.0))
        sim.run_until(1.0)  # first pump at t=1; 0.5-lifetime is expired
        assert len(sent) == 1
        assert channels.expired_in_queue == 1

    def test_queue_length(self):
        _, channels, _ = make_channels(CapacityConfig(rate=1.0))
        channels.push("n1", update())
        channels.push("n1", update())
        assert channels.queue_length("n1") == 2
        assert channels.queue_length("other") == 0


class TestCapacityChanges:
    def test_raising_to_unlimited_flushes(self):
        sim, channels, sent = make_channels(CapacityConfig(rate=0.001))
        for _ in range(3):
            channels.push("n1", update())
        channels.set_capacity(CapacityConfig())
        assert len(sent) == 3

    def test_lowering_capacity_midstream(self):
        rng = np.random.default_rng(3)
        sim, channels, sent = make_channels(rng=rng)
        channels.push("n1", update())
        channels.set_capacity(CapacityConfig(fraction=0.0))
        channels.push("n1", update())
        assert len(sent) == 1
        assert channels.suppressed == 1

    def test_restoring_rate_restarts_pump(self):
        sim, channels, sent = make_channels(CapacityConfig(rate=1.0))
        channels.push("n1", update())
        channels.push("n1", update())
        sim.run_until(1.0)
        assert len(sent) == 1
        channels.set_capacity(CapacityConfig(rate=100.0))
        sim.run_until(1.2)
        assert len(sent) == 2

    def test_pump_event_cleared_after_natural_fire(self):
        # A fired pump must not leave a stale event reference behind:
        # a later set_capacity would cancel an already-fired event.
        sim, channels, sent = make_channels(CapacityConfig(rate=1.0))
        channels.push("n1", update())
        sim.run_until(1.0)  # pump fires, drains the only update
        assert len(sent) == 1
        assert channels._pump_event is None

    def test_rate_change_mid_drain_repaces_cleanly(self):
        # Three queued updates drain at rate 1; mid-drain (after the
        # first token, with the pump's next event already scheduled and
        # one having fired naturally) the rate rises to 10.  The
        # remaining updates must drain at the new pace, exactly once
        # each, with an exact pending-event count on the simulator.
        sim, channels, sent = make_channels(CapacityConfig(rate=1.0))
        for _ in range(3):
            channels.push("n1", update(lifetime=1000.0))
        sim.run_until(1.0)
        assert len(sent) == 1
        channels.set_capacity(CapacityConfig(rate=10.0))
        sim.run_until(1.1)
        assert len(sent) == 2
        sim.run_until(1.25)  # next token at 1.1 + 0.1 (+ float epsilon)
        assert len(sent) == 3
        # Nothing queued: the pump stops and leaves no dangling events.
        sim.run_until(5.0)
        assert len(sent) == 3
        assert sim.pending == 0
        assert channels._pump_event is None

    def test_rate_change_after_natural_drain_then_new_push(self):
        # The stale-reference scenario end to end: the pump fires
        # naturally (queue empty, no reschedule), capacity changes, and
        # a new push must start a fresh pump at the new rate.
        sim, channels, sent = make_channels(CapacityConfig(rate=2.0))
        channels.push("n1", update(lifetime=1000.0))
        sim.run_until(1.0)
        assert len(sent) == 1
        channels.set_capacity(CapacityConfig(rate=100.0))
        channels.push("n1", update(lifetime=1000.0))
        sim.run_until(1.1)
        assert len(sent) == 2
