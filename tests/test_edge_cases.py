"""Edge-case and failure-injection tests across modules."""

import pytest
from helpers import LineOverlay, MicroNet

from repro.core.messages import UpdateType
from repro.core.policies import AllOutPolicy
from repro.core.protocol import CupConfig, CupNetwork
from repro.core.trees import QueryTree
from repro.overlay.base import RoutingError
from repro.overlay.can import CanOverlay
from repro.overlay.chord import ChordOverlay
from repro.sim.network import Message


class TestOverlayBaseHelpers:
    def test_contains_and_len(self):
        overlay = CanOverlay.perfect_grid(4)
        assert 0 in overlay
        assert "ghost" not in overlay
        assert len(overlay) == 4

    def test_route_from_authority_is_singleton(self):
        overlay = CanOverlay.perfect_grid(16)
        authority = overlay.authority("k")
        assert overlay.route(authority, "k") == [authority]
        assert overlay.distance(authority, "k") == 0

    def test_next_hop_from_non_member_raises(self):
        overlay = CanOverlay.perfect_grid(4)
        with pytest.raises(RoutingError):
            overlay.next_hop("ghost", "k")
        chord = ChordOverlay.build(["a", "b", "c"])
        with pytest.raises(RoutingError):
            chord.next_hop("ghost", "k")


class TestQueryTreeOnChord:
    def test_virtual_tree_spans_ring(self):
        overlay = ChordOverlay.build([f"n{i}" for i in range(24)])
        tree = QueryTree.virtual(overlay, "some-key")
        assert tree.nodes == set(overlay.node_ids())
        assert tree.root == overlay.authority("some-key")

    def test_depths_match_routes(self):
        overlay = ChordOverlay.build([f"n{i}" for i in range(16)])
        tree = QueryTree.virtual(overlay, "some-key")
        for node in list(tree.nodes)[:8]:
            assert tree.depth[node] == overlay.distance(node, "some-key")


class TestNodeEdges:
    def test_unknown_message_kind_raises(self):
        net = MicroNet()

        class Weird(Message):
            kind = "weird"
            __slots__ = ()

        with pytest.raises(ValueError):
            net.authority.receive(Weird(), "n1")

    def test_node_gc_reclaims_dead_state(self):
        net = MicroNet()
        net.seed_authority("k", lifetime=10.0)
        net.node(3).post_local_query("k")
        net.settle()
        assert len(net.node(3).cache) == 1
        net.sim.run_until(net.sim.now + 100.0)
        # Wait for second-chance teardown traffic to finish, then gc.
        reclaimed = net.node(3).gc()
        assert reclaimed == 1
        assert len(net.node(3).cache) == 0

    def test_clear_bit_for_unknown_key_ignored(self):
        net = MicroNet()
        from repro.core.messages import ClearBitMessage

        net.authority.receive(ClearBitMessage("never-seen"), "n1")
        # No state created as a side effect.
        assert net.authority.cache.get("never-seen") is None

    def test_delete_for_unknown_key_harmless(self):
        net = MicroNet(policy=AllOutPolicy())
        from repro.core.entry import IndexEntry
        from repro.core.messages import UpdateMessage

        update = UpdateMessage(
            "mystery", UpdateType.DELETE,
            (IndexEntry("mystery", "m/r0", "addr", 10.0, net.sim.now),),
            "m/r0", net.sim.now,
        )
        net.transport.send("n0", "n1", update)
        net.settle()
        # No crash; the (empty) state simply records nothing.

    def test_empty_response_clears_pfu_without_entries(self):
        net = MicroNet()
        # No replicas seeded: authority answers with an empty first-time
        # update (a negative response).
        net.node(2).post_local_query("nothing-there")
        net.settle()
        state = net.node(2).cache.get("nothing-there")
        assert state is not None
        assert not state.pending_first_update
        assert state.entries == {}
        assert net.metrics.answers_delivered == 1


class TestLineOverlayHelper:
    def test_line_overlay_shape(self):
        overlay = LineOverlay(3)
        assert overlay.authority("k") == "n0"
        assert overlay.next_hop("n2", "k") == "n1"
        assert overlay.next_hop("n0", "k") is None
        assert set(overlay.neighbors("n1")) == {"n0", "n2"}

    def test_line_overlay_requires_length(self):
        with pytest.raises(ValueError):
            LineOverlay(0)


class TestTracingIntegration:
    def test_network_tracer_records_churn(self):
        config = CupConfig(
            num_nodes=8, total_keys=1, query_rate=1.0, seed=2, trace=True,
            entry_lifetime=50.0, query_start=50.0, query_duration=100.0,
            drain=50.0,
        )
        net = CupNetwork(config)
        net.run_until(10.0)
        net.join_node("extra")
        net.leave_node("extra", graceful=True)
        churn_records = net.tracer.by_category("churn")
        assert [r.fields["event"] for r in churn_records] == ["join", "leave"]

    def test_tracer_disabled_by_default(self):
        config = CupConfig(num_nodes=4, total_keys=1)
        net = CupNetwork(config)
        net.run_until(5.0)
        net.join_node("extra")
        assert net.tracer.records == []


class TestStandardCoalescingMode:
    def test_intermediate_between_std_and_cup(self):
        base = CupConfig(
            num_nodes=64, total_keys=1, query_rate=2.0, seed=9,
            entry_lifetime=50.0, query_start=100.0, query_duration=500.0,
            drain=100.0,
        )
        cup = CupNetwork(base).run()
        coal = CupNetwork(base.variant(mode="standard-coalescing")).run()
        std = CupNetwork(base.variant(mode="standard")).run()
        assert coal.overhead_cost == 0
        assert cup.miss_cost <= coal.miss_cost
        assert coal.miss_cost <= std.miss_cost * 1.02

    def test_coalescing_mode_counts_coalesced(self):
        base = CupConfig(
            num_nodes=64, total_keys=1, query_rate=20.0, seed=9,
            entry_lifetime=50.0, query_start=100.0, query_duration=300.0,
            drain=100.0, mode="standard-coalescing",
        )
        summary = CupNetwork(base).run()
        assert summary.coalesced_queries > 0


class TestInFlightExpiry:
    def test_update_expiring_in_flight_dropped(self):
        # Long link delays: the query reaches the authority at t=15 while
        # the entry (18 s TTL) is still fresh, but the response's first
        # hop lands at t=20 — expired in flight, dropped (§2.6 case 3).
        net = MicroNet(policy=AllOutPolicy(), link_delay=5.0)
        net.seed_authority("k", lifetime=18.0)
        net.node(3).post_local_query("k")
        net.sim.run_until(40.0)
        assert net.metrics.updates_dropped_expired >= 1
        assert net.metrics.answers_delivered == 0
