"""Tests for the runtime invariant checker.

Covers: clean verdicts on benign runs in every protocol mode, the
read-only guarantee (a checked run's summary is identical to an
unchecked one's), violation *detection* (each invariant is made to fire
by corrupting state the way a real bug would), hazard declaration and
relaxation, and the structural audits.
"""

import pytest

from repro.core.messages import UpdateMessage, UpdateType
from repro.core.protocol import CupConfig, CupNetwork
from repro.invariants import HAZARDS, InvariantViolationError


def tiny_config(**overrides):
    base = dict(
        num_nodes=16, total_keys=4, query_rate=3.0, seed=11,
        entry_lifetime=40.0, query_start=60.0, query_duration=180.0,
        drain=60.0,
    )
    base.update(overrides)
    return CupConfig(**base)


class TestCleanRuns:
    @pytest.mark.parametrize(
        "mode", ["cup", "standard", "standard-coalescing"]
    )
    def test_benign_run_has_no_violations(self, mode):
        net = CupNetwork(tiny_config(mode=mode))
        checker = net.attach_invariants(check_interval=20.0)
        net.run()
        assert checker.ok
        assert checker.audits_run > 1
        assert checker.updates_seen > 0

    @pytest.mark.parametrize("overlay", ["can", "chord", "pastry"])
    def test_benign_run_every_overlay(self, overlay):
        net = CupNetwork(tiny_config(overlay_type=overlay))
        checker = net.attach_invariants(check_interval=20.0)
        net.run()
        assert checker.ok

    def test_checker_is_read_only(self):
        """A checked run's metrics match an unchecked run's exactly."""
        config = tiny_config()
        checked_net = CupNetwork(config)
        checked_net.attach_invariants(check_interval=15.0)
        checked = checked_net.run()
        unchecked = CupNetwork(config).run()
        assert checked == unchecked

    def test_rate_limited_run_with_capacity_hazard(self):
        net = CupNetwork(
            tiny_config(capacity_rate=4.0, capacity_fraction=0.6)
        )
        checker = net.attach_invariants(
            hazards={"capacity"}, check_interval=20.0
        )
        net.run()
        assert checker.ok


class TestWiring:
    def test_double_attach_rejected(self):
        net = CupNetwork(tiny_config())
        net.attach_invariants()
        with pytest.raises(RuntimeError):
            net.attach_invariants()

    def test_unknown_hazard_rejected(self):
        net = CupNetwork(tiny_config())
        with pytest.raises(ValueError, match="unknown hazards"):
            net.attach_invariants(hazards={"gremlins"})

    def test_invalid_check_interval_rejected(self):
        net = CupNetwork(tiny_config())
        with pytest.raises(ValueError):
            net.attach_invariants(check_interval=0.0)

    def test_joiners_get_the_probe(self):
        net = CupNetwork(tiny_config())
        checker = net.attach_invariants(hazards={"churn"})
        node = net.join_node("late-joiner")
        assert node.invariant_probe is checker
        assert checker.membership_events == 1

    def test_hazard_constants_exported(self):
        assert {
            "churn", "crash", "partition", "capacity",
            "loss", "duplication", "reorder",
        } == set(HAZARDS)


class TestViolationDetection:
    """Each invariant must actually fire when its property is broken."""

    def run_network(self, until=150.0, **overrides):
        net = CupNetwork(tiny_config(**overrides))
        checker = net.attach_invariants()
        if until:
            net.attach_workload()
            net.workload.begin()
            net.run_until(until)
        return net, checker

    def test_version_regression_detected(self):
        from repro.core.entry import IndexEntry

        net, checker = self.run_network()
        # Take any applied watermark and replay an older sequence
        # through the probe — exactly what a broken apply_entry()
        # stale-guard would let through.
        (node_id, key, rid), seq = next(iter(checker._watermarks.items()))
        assert seq >= 1
        stale = IndexEntry(
            key=key, replica_id=rid, address="addr://stale",
            lifetime=10.0, timestamp=net.sim.now, sequence=0,
        )
        with pytest.raises(InvariantViolationError, match="monotonicity"):
            checker.entry_applied(node_id, key, stale)

    def test_duplicate_delivery_detected(self):
        net, checker = self.run_network()
        node_id = next(iter(net.nodes))
        update = UpdateMessage(
            "k00000", UpdateType.REFRESH, (), "r0", issued_at=90.0
        )
        checker.update_delivered(node_id, update, "someone")
        with pytest.raises(InvariantViolationError, match="no-duplication"):
            checker.update_delivered(node_id, update, "someone")

    def test_cost_balance_detects_counter_tampering(self):
        net, checker = self.run_network()
        net.metrics.query_hops += 7  # a double-counting bug
        with pytest.raises(InvariantViolationError, match="cost-balance"):
            checker.check_quiescent()

    def test_loss_detected_when_answer_goes_missing(self):
        net, checker = self.run_network()
        # Forge a lost answer: a waiter that was never served.
        node = next(iter(net.nodes.values()))
        state = node.cache.get_or_create("k00000")
        state.local_waiters += 1
        state.pending_first_update = True
        net.metrics.misses += 1
        net.metrics.first_time_misses += 1
        net.metrics.queries_posted += 1
        checker._posted += 1
        with pytest.raises(InvariantViolationError, match="no-loss"):
            checker.check_quiescent()

    def test_interest_bit_for_departed_node_detected(self):
        net, checker = self.run_network()
        node = next(iter(net.nodes.values()))
        state = node.cache.get_or_create("k00001")
        state.register_interest("ghost-node")
        with pytest.raises(
            InvariantViolationError, match="interest-consistency"
        ):
            checker.audit_network()

    def test_interest_bit_for_wrong_parent_detected(self):
        net, checker = self.run_network()
        key = "k00002"
        authority = net.overlay.authority(key)
        # A node that is NOT on some other node's upstream path claims
        # interest from it: pick any member whose next_hop differs.
        wrong = None
        for node_id in net.nodes:
            if node_id == authority:
                continue
            parent = net.overlay.next_hop(node_id, key)
            for holder in net.nodes:
                if holder not in (parent, node_id):
                    wrong = (holder, node_id)
                    break
            if wrong:
                break
        holder, child = wrong
        net.nodes[holder].cache.get_or_create(key).register_interest(child)
        with pytest.raises(
            InvariantViolationError, match="interest-consistency"
        ):
            checker.audit_network()

    def test_undeclared_churn_detected(self):
        net, checker = self.run_network(until=None)
        with pytest.raises(InvariantViolationError, match="hazard"):
            net.leave_node(next(iter(net.nodes)))

    def test_undeclared_join_detected(self):
        """Joins re-route keys too: undeclared ones are flagged at the
        join, not blamed on interest consistency at the next audit."""
        net, checker = self.run_network(until=None)
        with pytest.raises(InvariantViolationError, match="hazard"):
            net.join_node("stranger")

    def test_double_answer_detected(self):
        net, checker = self.run_network()
        net.metrics.answers_delivered += 1
        checker._answers += 1
        with pytest.raises(InvariantViolationError, match="exceeds"):
            checker.check_quiescent()

    def test_structural_cache_corruption_detected(self):
        net, checker = self.run_network()
        node = next(iter(net.nodes.values()))
        state = node.cache.get_or_create("k00003")
        state.local_waiters = -2
        with pytest.raises(InvariantViolationError, match="structural"):
            checker.audit_network()

    def test_collect_mode_accumulates_instead_of_raising(self):
        net = CupNetwork(tiny_config())
        checker = net.attach_invariants(raise_immediately=False)
        net.run_until(150.0)
        node = next(iter(net.nodes.values()))
        node.cache.get_or_create("k00001").register_interest("ghost")
        node.cache.get_or_create("k00002").local_waiters = -1
        checker.audit_network()
        assert not checker.ok
        invariants = {v.invariant for v in checker.violations}
        assert "interest-consistency" in invariants
        assert "structural" in invariants
        assert "ghost" in checker.report()


class TestHazardWindows:
    """Timed windows widen ``active_hazards()`` past the base set."""

    def make(self, **kwargs):
        net = CupNetwork(tiny_config())
        checker = net.attach_invariants(**kwargs)
        return net, checker

    def test_window_adds_hazard_then_expires_with_the_clock(self):
        net, checker = self.make()
        assert checker.active_hazards() == checker.hazards
        checker.open_hazard_window(["loss"], duration=10.0)
        assert "loss" in checker.active_hazards()
        assert checker.hazards == frozenset()  # base set untouched
        net.run_until(20.0)
        assert "loss" not in checker.active_hazards()

    def test_indefinite_window_stays_until_closed(self):
        net, checker = self.make()
        checker.open_hazard_window(["loss"])
        net.run_until(100.0)
        assert "loss" in checker.active_hazards()
        checker.close_hazard_window(["loss"])
        assert "loss" not in checker.active_hazards()

    def test_overlapping_windows_keep_the_later_expiry(self):
        net, checker = self.make()
        checker.open_hazard_window(["loss"], duration=50.0)
        checker.open_hazard_window(["loss"], duration=5.0)  # no shorten
        net.run_until(20.0)
        assert "loss" in checker.active_hazards()
        net.run_until(60.0)
        assert "loss" not in checker.active_hazards()

    def test_close_without_arguments_clears_every_window(self):
        _net, checker = self.make()
        checker.open_hazard_window(["loss", "reorder"])
        checker.close_hazard_window()
        assert checker.active_hazards() == checker.hazards

    def test_window_relaxes_churn_like_a_declared_hazard(self):
        net, checker = self.make()
        checker.open_hazard_window(["churn", "crash"])
        net.leave_node(next(iter(net.nodes)))  # tolerated: window open
        checker.close_hazard_window()
        with pytest.raises(InvariantViolationError, match="hazard"):
            net.leave_node(next(iter(net.nodes)))

    def test_unknown_or_negative_window_rejected(self):
        _net, checker = self.make()
        with pytest.raises(ValueError, match="unknown hazards"):
            checker.open_hazard_window(["gremlins"])
        with pytest.raises(ValueError):
            checker.open_hazard_window(["loss"], duration=-1.0)

    def test_report_names_open_windows(self):
        _net, checker = self.make()
        checker.open_hazard_window(["loss"], duration=30.0)
        assert "loss" in checker.report()


class TestRelaxation:
    def test_churn_relaxes_tree_and_sequence_checks(self):
        net = CupNetwork(tiny_config())
        checker = net.attach_invariants(hazards={"churn"}, check_interval=20.0)
        net.run_until(100.0)
        victims = [n for n in list(net.nodes) if n != 0][:3]
        for victim in victims:
            net.leave_node(victim, graceful=False)
        net.join_node("replacement")
        net.run()
        assert checker.ok
        assert checker.membership_events == 4

    def test_partition_relaxes_loss_freedom(self):
        net = CupNetwork(tiny_config())
        checker = net.attach_invariants(
            hazards={"partition"}, check_interval=20.0
        )
        members = sorted(net.nodes, key=str)
        islands = [members[::2], members[1::2]]
        rule = {}
        net.sim.schedule_at(
            80.0, lambda: rule.setdefault(
                "id", net.transport.partition(islands)
            )
        )
        net.sim.schedule_at(
            160.0, lambda: net.transport.remove_drop_rule(rule["id"])
        )
        net.run()
        assert checker.ok
        assert net.transport.blocked > 0
