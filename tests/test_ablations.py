"""Tests for the ablation harnesses at tiny scale."""

from repro.experiments.ablations import (
    AblationResult,
    run_aggregation_ablation,
    run_capacity_mechanism_ablation,
    run_coalescing_ablation,
    run_overlay_ablation,
    run_zipf_ablation,
)
from repro.experiments.config import TINY


class TestAblationResult:
    def test_table_and_expectations(self):
        result = AblationResult("Demo", ["a", "b"])
        result.add_row("x", 1)
        result.expect("claim", True)
        report = result.report()
        assert "Demo" in report
        assert "[PASS] claim" in report
        assert result.all_expectations_hold()

    def test_failed_expectation_surfaces(self):
        result = AblationResult("Demo", ["a"])
        result.expect("broken claim", False)
        assert not result.all_expectations_hold()
        assert "[FAIL] broken claim" in result.report()


class TestCoalescingAblation:
    def test_runs_and_holds(self):
        result = run_coalescing_ablation(TINY, paper_rate=10.0, seed=7)
        assert result.all_expectations_hold(), result.report()
        assert len(result.rows) == 3

    def test_variant_labels_present(self):
        result = run_coalescing_ablation(TINY, paper_rate=10.0, seed=7)
        table = result.format_table()
        assert "standard (open connections)" in table
        assert "full CUP" in table


class TestOverlayAblation:
    def test_runs_and_holds(self):
        result = run_overlay_ablation(TINY, paper_rate=1.0, seed=7)
        assert result.all_expectations_hold(), result.report()
        table = result.format_table()
        assert "can" in table and "chord" in table


class TestCapacityMechanismAblation:
    def test_runs_and_holds(self):
        result = run_capacity_mechanism_ablation(TINY, paper_rate=10.0, seed=7)
        assert result.all_expectations_hold(), result.report()
        table = result.format_table()
        assert "rate pump" in table
        assert "fractional" in table


class TestAggregationAblation:
    def test_runs_and_holds(self):
        result = run_aggregation_ablation(
            TINY, paper_rate=1.0, replicas=5, seed=7
        )
        assert result.all_expectations_hold(), result.report()
        table = result.format_table()
        assert "aggregate" in table
        assert "sample" in table


class TestZipfAblation:
    def test_runs_and_holds(self):
        result = run_zipf_ablation(
            TINY, paper_rate=10.0, total_keys=8, exponents=(0.0, 1.4),
            seed=7,
        )
        assert result.all_expectations_hold(), result.report()
        assert len(result.rows) == 2
