"""Tests for CupConfig validation and CupNetwork assembly/churn."""

import pytest

from repro.core.channels import CapacityConfig
from repro.core.policies import SecondChancePolicy
from repro.core.protocol import CupConfig, CupNetwork


def quick_config(**overrides):
    base = dict(
        num_nodes=16, total_keys=2, query_rate=2.0, seed=3,
        entry_lifetime=50.0, query_start=100.0, query_duration=300.0,
        drain=100.0, gc_interval=50.0,
    )
    base.update(overrides)
    return CupConfig(**base)


class TestConfig:
    def test_defaults_validate(self):
        CupConfig().validate()

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            quick_config(mode="turbo").validate()

    def test_invalid_overlay(self):
        with pytest.raises(ValueError):
            quick_config(overlay_type="hypercube").validate()

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            quick_config(query_rate=0.0).validate()

    def test_invalid_capacity_fraction(self):
        with pytest.raises(ValueError):
            quick_config(capacity_fraction=2.0).validate()

    def test_invalid_key_distribution(self):
        with pytest.raises(ValueError):
            quick_config(key_distribution="pareto").validate()

    def test_total_keys_overrides_keys_per_node(self):
        assert quick_config(total_keys=7).resolved_total_keys() == 7

    def test_keys_per_node_scaling(self):
        config = quick_config(total_keys=None, keys_per_node=2.0)
        assert config.resolved_total_keys() == 32

    def test_time_properties(self):
        config = quick_config()
        assert config.query_end == 400.0
        assert config.sim_end == 500.0

    def test_variant_replaces_fields(self):
        config = quick_config()
        twin = config.variant(mode="standard")
        assert twin.mode == "standard"
        assert twin.seed == config.seed
        assert config.mode == "cup"

    def test_policy_resolution_from_string(self):
        assert quick_config(policy="linear:0.5").resolved_policy().alpha == 0.5

    def test_policy_object_passthrough(self):
        policy = SecondChancePolicy()
        assert quick_config(policy=policy).resolved_policy() is policy


class TestNetworkBuild:
    def test_builds_power_of_two_grid(self):
        net = CupNetwork(quick_config(num_nodes=16))
        assert len(net.nodes) == 16

    def test_builds_join_based_can_for_odd_sizes(self):
        net = CupNetwork(quick_config(num_nodes=10))
        assert len(net.nodes) == 10

    def test_builds_chord(self):
        net = CupNetwork(quick_config(overlay_type="chord"))
        assert len(net.nodes) == 16

    def test_keys_created(self):
        net = CupNetwork(quick_config(total_keys=5))
        assert len(net.keys) == 5

    def test_replica_population(self):
        net = CupNetwork(quick_config(total_keys=3, replicas_per_key=4))
        assert len(net.replicas) == 12

    def test_run_returns_summary(self):
        summary = CupNetwork(quick_config()).run()
        assert summary.queries_posted > 0
        assert summary.total_cost == summary.miss_cost + summary.overhead_cost

    def test_same_seed_same_results(self):
        a = CupNetwork(quick_config()).run()
        b = CupNetwork(quick_config()).run()
        assert a == b

    def test_different_seeds_differ(self):
        a = CupNetwork(quick_config(seed=1)).run()
        b = CupNetwork(quick_config(seed=2)).run()
        assert a != b

    def test_same_workload_across_modes(self):
        cup = CupNetwork(quick_config()).run()
        std = CupNetwork(quick_config(mode="standard")).run()
        assert cup.queries_posted == std.queries_posted

    def test_jittered_link_delays(self):
        config = quick_config(link_delay=0.05, link_delay_jitter=0.02)
        net = CupNetwork(config)
        delays = {
            net.transport.link_delay(a, b)
            for a in net.nodes for b in net.overlay.neighbors(a)
        }
        assert len(delays) > 1

    def test_post_query_direct(self):
        net = CupNetwork(quick_config())
        net.run_until(60.0)  # replicas announced
        node_id = next(iter(net.nodes))
        net.post_query(node_id, net.keys[0])
        assert net.metrics.queries_posted == 1


class TestCapacityHooks:
    def test_set_node_capacity(self):
        net = CupNetwork(quick_config())
        node_id = next(iter(net.nodes))
        net.set_node_capacity(node_id, CapacityConfig(fraction=0.5))
        assert net.nodes[node_id].channels.capacity.fraction == 0.5


class TestChurn:
    def test_join_adds_member(self):
        net = CupNetwork(quick_config())
        net.run_until(60.0)
        net.join_node("newbie")
        assert "newbie" in net.nodes
        assert "newbie" in net.live_node_ids()

    def test_join_duplicate_rejected(self):
        net = CupNetwork(quick_config())
        with pytest.raises(ValueError):
            net.join_node(0)

    def test_join_hands_over_index_entries(self):
        net = CupNetwork(quick_config(num_nodes=4, total_keys=32))
        net.run_until(60.0)  # all replicas born
        total_before = sum(
            n.authority_index.entry_count() for n in net.nodes.values()
        )
        net.join_node("newbie")
        total_after = sum(
            n.authority_index.entry_count() for n in net.nodes.values()
        )
        assert total_after == total_before
        # Every key's entries now live at its current authority.
        for key in net.keys:
            owner = net.overlay.authority(key)
            for node_id, node in net.nodes.items():
                if node.authority_index.owns(key):
                    assert node_id == owner

    def test_graceful_leave_hands_over(self):
        net = CupNetwork(quick_config(num_nodes=8, total_keys=16))
        net.run_until(60.0)
        total_before = sum(
            n.authority_index.entry_count() for n in net.nodes.values()
        )
        victim = next(iter(net.nodes))
        net.leave_node(victim, graceful=True)
        total_after = sum(
            n.authority_index.entry_count() for n in net.nodes.values()
        )
        assert total_after == total_before

    def test_ungraceful_leave_loses_entries(self):
        net = CupNetwork(quick_config(num_nodes=8, total_keys=16))
        net.run_until(60.0)
        victim = max(
            net.nodes,
            key=lambda n: net.nodes[n].authority_index.entry_count(),
        )
        lost = net.nodes[victim].authority_index.entry_count()
        assert lost > 0
        total_before = sum(
            n.authority_index.entry_count() for n in net.nodes.values()
        )
        net.leave_node(victim, graceful=False)
        total_after = sum(
            n.authority_index.entry_count() for n in net.nodes.values()
        )
        assert total_after == total_before - lost

    def test_leave_patches_interest_bits(self):
        net = CupNetwork(quick_config(num_nodes=8, total_keys=1))
        net.run_until(60.0)
        key = net.keys[0]
        # Subscribe everyone by querying from every node.
        for node_id in list(net.nodes):
            net.post_query(node_id, key)
        net.run_until(70.0)
        victim = next(
            n for n in net.nodes if net.overlay.authority(key) != n
        )
        net.leave_node(victim, graceful=True)
        for node in net.nodes.values():
            state = node.cache.get(key)
            if state is not None:
                assert victim not in state.interest

    def test_queries_still_answered_after_churn(self):
        net = CupNetwork(quick_config(num_nodes=8, total_keys=4))
        net.run_until(60.0)
        victim = next(iter(net.nodes))
        net.leave_node(victim, graceful=True)
        net.join_node("replacement")
        answered_before = net.metrics.answers_delivered
        hits_before = net.metrics.local_hits
        for key in net.keys:
            poster = next(iter(net.nodes))
            net.post_query(poster, key)
        net.run_until(net.sim.now + 20.0)
        answered = (
            net.metrics.answers_delivered - answered_before
            + net.metrics.local_hits - hits_before
        )
        assert answered == len(net.keys)

    def test_leave_unknown_rejected(self):
        net = CupNetwork(quick_config())
        with pytest.raises(ValueError):
            net.leave_node("ghost")
