"""Durable snapshots with deterministic restart.

The referee test is the heart of this file: for every built-in scenario
(chaos included) a straight run and a snapshotted / torn-down /
restored / finished run must produce **byte-identical** summaries, with
the restored network passing the full consistency audit.  Around it:
the checkpoint file format (magic, header, fingerprint gate, atomic
write), auto-checkpointing during ``run()`` (cadence must not perturb
results), and the recovery state machine surviving a snapshot taken
mid-backoff with gaps open and retry timers armed.
"""

import json
import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.protocol import CupConfig, CupNetwork
from repro.persistence import (
    DEFAULT_EVERY_EVENTS,
    CheckpointError,
    CheckpointFormatError,
    FingerprintMismatch,
    checkpoint_info,
    load_checkpoint,
    restore_network,
    save_checkpoint,
    snapshot_network,
    verify_restored,
)
from repro.persistence.checkpoint import FORMAT_VERSION, MAGIC
from repro.scenarios import SCENARIOS, Quiet, Scenario, with_chaos


def canonical(summary) -> bytes:
    """The byte form the referee compares (sorted-keys JSON)."""
    return json.dumps(summary.to_dict(), sort_keys=True).encode()


def build_network(scenario, seed=42, invariants=True):
    config = scenario.build_config(seed=seed)
    network = CupNetwork(config)
    if invariants:
        network.attach_invariants(
            hazards=scenario.hazards(),
            check_interval=30.0,
            raise_immediately=False,
        )
    scenario.compile_onto(network)
    return network


def tiny_config(**overrides) -> CupConfig:
    base = dict(
        num_nodes=16, total_keys=2, query_rate=2.0, seed=11,
        entry_lifetime=40.0, query_start=60.0, query_duration=120.0,
        drain=60.0, gc_interval=40.0,
    )
    base.update(overrides)
    return CupConfig(**base)


# ----------------------------------------------------------------------
# The referee: straight ≡ snapshot / tear down / restore / finish
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_referee_snapshot_restore_finish(name):
    scenario = SCENARIOS[name]
    straight = build_network(scenario)
    expected = straight.run()
    assert straight.invariants.ok, straight.invariants.report()

    resumed = build_network(scenario)
    cut = scenario.build_config(seed=42).sim_end * 0.5
    assert resumed.run(until=cut) is None  # partial runs return nothing
    blob = snapshot_network(resumed)
    del resumed  # the original is gone; only the bytes survive

    restored = restore_network(blob)
    assert verify_restored(restored) == []
    summary = restored.run()
    assert canonical(summary) == canonical(expected)
    assert restored.invariants.ok, restored.invariants.report()


def test_referee_holds_under_chaos_transport():
    scenario = with_chaos(SCENARIOS["partition-heal"], loss=0.15,
                          duplicate=0.1, jitter=0.05)
    expected = build_network(scenario).run()
    resumed = build_network(scenario)
    resumed.run(until=scenario.build_config(seed=42).sim_end * 0.6)
    restored = restore_network(snapshot_network(resumed))
    verify_restored(restored)
    assert canonical(restored.run()) == canonical(expected)


def test_snapshot_does_not_perturb_the_run():
    """Snapshotting is read-only: a run with a mid-run snapshot taken
    (and discarded) finishes exactly like one without."""
    scenario = SCENARIOS["steady-state"]
    expected = build_network(scenario).run()
    observed_net = build_network(scenario)
    observed_net.run(until=150.0)
    snapshot_network(observed_net)  # taken and dropped
    assert canonical(observed_net.run()) == canonical(expected)


# ----------------------------------------------------------------------
# File format and gates
# ----------------------------------------------------------------------


def test_checkpoint_file_roundtrip(tmp_path):
    net = CupNetwork(tiny_config())
    net.run(until=100.0)
    path = tmp_path / "deep" / "run.ckpt"
    assert save_checkpoint(net, path) == os.fspath(path)

    info = checkpoint_info(path)
    assert info["format"] == FORMAT_VERSION
    assert info["sim_now"] == pytest.approx(100.0)
    assert info["num_nodes"] == 16
    assert info["seed"] == 11

    expected = CupNetwork(tiny_config()).run()
    resumed = load_checkpoint(path).run()
    assert canonical(resumed) == canonical(expected)


def test_bad_magic_and_format_version_rejected():
    net = CupNetwork(tiny_config())
    blob = snapshot_network(net)
    with pytest.raises(CheckpointFormatError):
        restore_network(b"not a checkpoint")
    header, payload = blob[len(MAGIC):].split(b"\n", 1)
    forged = json.loads(header)
    forged["format"] = FORMAT_VERSION + 1
    reblob = MAGIC + json.dumps(forged, sort_keys=True).encode() + b"\n" + payload
    with pytest.raises(CheckpointFormatError):
        restore_network(reblob)


def test_fingerprint_mismatch_blocks_resume():
    net = CupNetwork(tiny_config())
    blob = snapshot_network(net)
    header, payload = blob[len(MAGIC):].split(b"\n", 1)
    forged = json.loads(header)
    forged["fingerprint"] = "0" * 16
    reblob = MAGIC + json.dumps(forged, sort_keys=True).encode() + b"\n" + payload
    with pytest.raises(FingerprintMismatch):
        restore_network(reblob)
    # Forensic override still loads.
    assert restore_network(reblob, verify_fingerprint=False).sim.now == 0.0


def test_verify_restored_catches_corruption():
    net = build_network(SCENARIOS["steady-state"])
    net.run(until=150.0)
    restored = restore_network(snapshot_network(net))
    node = next(iter(restored.nodes.values()))
    state = next(iter(node.cache.states.values()))
    state.local_waiters = -1
    with pytest.raises(CheckpointError, match="negative local waiter"):
        verify_restored(restored)


# ----------------------------------------------------------------------
# Auto-checkpointing in the run loop
# ----------------------------------------------------------------------


def test_auto_checkpoint_writes_and_never_perturbs(tmp_path):
    expected = CupNetwork(tiny_config()).run()

    path = tmp_path / "auto.ckpt"
    net = CupNetwork(tiny_config())
    net.enable_checkpoints(path, every_events=100)
    assert canonical(net.run()) == canonical(expected)
    assert path.exists()

    # The file holds a usable mid-run state: resuming finishes to the
    # same bytes — the CI kill-resume drill in script form.
    info = checkpoint_info(path)
    assert info["sim_now"] <= info["sim_end"]
    resumed = load_checkpoint(path)
    assert canonical(resumed.run()) == canonical(expected)


def test_auto_checkpoint_by_simulated_seconds(tmp_path):
    expected = CupNetwork(tiny_config()).run()
    path = tmp_path / "auto.ckpt"
    net = CupNetwork(tiny_config())
    net.enable_checkpoints(path, every_seconds=25.0)
    assert canonical(net.run()) == canonical(expected)
    assert path.exists()


def test_checkpoint_config_knobs(tmp_path):
    config = tiny_config(
        checkpoint_path=str(tmp_path / "cfg.ckpt"),
        checkpoint_every_events=150,
    )
    expected = CupNetwork(tiny_config()).run()
    assert canonical(CupNetwork(config).run()) == canonical(expected)
    assert (tmp_path / "cfg.ckpt").exists()
    with pytest.raises(ValueError):
        tiny_config(checkpoint_every_events=0).validate()
    with pytest.raises(ValueError):
        tiny_config(checkpoint_every_seconds=-1.0).validate()
    assert DEFAULT_EVERY_EVENTS >= 1


# ----------------------------------------------------------------------
# Recovery state machine across a snapshot (mid-backoff)
# ----------------------------------------------------------------------


def lossy_scenario(loss=0.3, seed_duration=150.0):
    return with_chaos(
        Scenario(
            name="lossy-quiet", description="loss over steady traffic",
            phases=(Quiet(duration=seed_duration),),
        ),
        loss=loss, duplicate=0.1, jitter=0.05,
    )


def snapshot_with_open_gaps(network, horizon, step=5.0):
    """Advance until some node has an open recovery gap, then snapshot."""
    t = network.sim.now
    while t < horizon:
        t += step
        network.run(until=t)
        for node in network.nodes.values():
            if node.recovery is not None and node.recovery.open_gaps():
                return snapshot_network(network)
    pytest.skip("no recovery gap ever opened at this seed")


def test_recovery_state_resumes_mid_backoff():
    scenario = lossy_scenario()
    config = scenario.build_config(seed=7)
    straight = CupNetwork(config)
    scenario.compile_onto(straight)
    expected = straight.run()

    resumed = CupNetwork(config)
    scenario.compile_onto(resumed)
    blob = snapshot_with_open_gaps(resumed, horizon=config.sim_end * 0.8)

    # The restored recovery managers carry the exact gap bookkeeping —
    # watermarks, missing sequences, retransmission buffers — of the
    # originals, with their backoff timers still armed.
    restored = restore_network(blob)
    gaps_seen = 0
    for node_id, node in resumed.nodes.items():
        twin = restored.nodes[node_id].recovery
        mine = node.recovery
        if mine is None:
            assert twin is None
            continue
        assert twin.open_gaps() == mine.open_gaps()
        assert set(twin._sent) == set(mine._sent)
        for (sender, key) in mine._recv_high:
            assert twin.watermark(sender, key) == mine.watermark(sender, key)
        gaps_seen += len(mine.open_gaps())
    assert gaps_seen > 0

    # ... and those timers fire on schedule: both copies finish the run
    # to bytes identical to the uninterrupted one.
    assert canonical(restored.run()) == canonical(expected)
    assert canonical(resumed.run()) == canonical(expected)


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    loss=st.sampled_from([0.1, 0.2, 0.35]),
    seed=st.integers(0, 2**16),
    cut=st.sampled_from([0.3, 0.5, 0.75]),
)
def test_restored_equals_straight_under_chaos(loss, seed, cut):
    """Hypothesis oracle: straight ≡ snapshot/restore, any chaos mix."""
    scenario = lossy_scenario(loss=loss, seed_duration=90.0)
    config = scenario.build_config(seed=seed)

    straight = CupNetwork(config)
    scenario.compile_onto(straight)
    expected = straight.run()

    resumed = CupNetwork(config)
    scenario.compile_onto(resumed)
    resumed.run(until=config.sim_end * cut)
    restored = restore_network(snapshot_network(resumed))
    verify_restored(restored)
    assert canonical(restored.run()) == canonical(expected)

# ----------------------------------------------------------------------
# Corruption diagnostics: every malformed file fails as
# CheckpointFormatError naming the offending path
# ----------------------------------------------------------------------


def test_truncated_header_is_a_format_error_not_a_raw_valueerror():
    # A file cut off before the header's newline used to surface as the
    # bytes-split ValueError; it must be a CheckpointFormatError.
    net = CupNetwork(tiny_config())
    blob = snapshot_network(net)
    end = blob.index(b"\n", len(MAGIC))
    with pytest.raises(CheckpointFormatError, match="no header terminator"):
        restore_network(blob[:end])


def test_corrupt_json_header_is_a_format_error():
    payload = b"garbage-that-is-not-json\n" + b"\x80\x04."
    with pytest.raises(CheckpointFormatError, match="header"):
        restore_network(MAGIC + payload)


def test_non_dict_header_is_a_format_error():
    blob = MAGIC + b"[1, 2, 3]\n" + b"\x80\x04."
    with pytest.raises(CheckpointFormatError, match="JSON object"):
        restore_network(blob)


def test_truncated_pickle_payload_is_a_format_error():
    net = CupNetwork(tiny_config())
    blob = snapshot_network(net)
    with pytest.raises(CheckpointFormatError, match="payload"):
        restore_network(blob[: len(blob) // 2], verify_fingerprint=False)


def test_corrupt_file_errors_name_the_path(tmp_path):
    victim = tmp_path / "corrupt.ckpt"
    victim.write_bytes(b"not a checkpoint at all")
    with pytest.raises(CheckpointFormatError, match="corrupt.ckpt"):
        load_checkpoint(victim)
    with pytest.raises(CheckpointFormatError, match="corrupt.ckpt"):
        checkpoint_info(victim)


def test_truncated_file_on_disk_names_the_path(tmp_path):
    net = CupNetwork(tiny_config())
    net.run(until=50.0)
    path = tmp_path / "run.ckpt"
    save_checkpoint(net, path)
    blob = path.read_bytes()
    victim = tmp_path / "torn.ckpt"
    victim.write_bytes(blob[: len(blob) - len(blob) // 3])
    with pytest.raises(CheckpointFormatError, match="torn.ckpt"):
        load_checkpoint(victim)
    # The header survives truncation of the payload, so inspection
    # still works — info reads only the front of the file.
    assert checkpoint_info(victim)["format"] == FORMAT_VERSION


def test_header_without_newline_mentions_truncation(tmp_path):
    victim = tmp_path / "headless.ckpt"
    victim.write_bytes(MAGIC + b'{"format": 1, "no-newline": true')
    with pytest.raises(
        CheckpointFormatError, match="truncated file or oversized header"
    ):
        checkpoint_info(victim)
