"""Topology snapshot cache + sweep-aware executor behaviour."""

import pytest

from repro.core.protocol import CupConfig, CupNetwork
from repro.experiments import executor, runcache, topology
from repro.experiments.executor import Cell
from repro.experiments.runner import clear_cache
from repro.scenarios import SCENARIOS


@pytest.fixture(autouse=True)
def _fresh_caches():
    saved = runcache.snapshot()
    runcache.configure(enabled=False)
    clear_cache()
    topology.clear()
    yield
    topology.clear()
    clear_cache()
    runcache.restore(saved)


def _config(**overrides):
    base = dict(
        num_nodes=32, total_keys=2, query_rate=2.0, seed=9,
        entry_lifetime=40.0, query_start=40.0, query_duration=80.0,
        drain=40.0,
    )
    base.update(overrides)
    return CupConfig(**base)


class TestSnapshotKey:
    def test_seed_irrelevant_for_deterministic_topologies(self):
        a = topology.snapshot_key(_config(seed=1))
        b = topology.snapshot_key(_config(seed=2))
        assert a == b  # perfect grid: seed does not shape the overlay

    def test_seed_participates_for_random_can(self):
        a = topology.snapshot_key(_config(num_nodes=33, seed=1))
        b = topology.snapshot_key(_config(num_nodes=33, seed=2))
        assert a != b

    def test_overlay_type_and_size_distinguish(self):
        keys = {
            topology.snapshot_key(_config()),
            topology.snapshot_key(_config(num_nodes=64)),
            topology.snapshot_key(_config(overlay_type="chord")),
            topology.snapshot_key(_config(overlay_type="pastry")),
        }
        assert len(keys) == 4


class TestLease:
    def test_lease_is_cached_and_bounded(self):
        config = _config()
        first = topology.lease(config)
        assert topology.lease(config) is first
        assert topology.stats == {"hits": 1, "misses": 1}
        for n in (8, 16, 64, 128, 256):
            topology.lease(_config(num_nodes=n))
        # The original snapshot was evicted by the LRU bound.
        assert topology.leased(config) is None

    def test_snapshot_run_matches_private_run(self):
        config = _config()
        private = CupNetwork(config).run()
        shared = CupNetwork(config, topology=topology.lease(config)).run()
        again = CupNetwork(config, topology=topology.lease(config)).run()
        assert private == shared == again

    def test_random_can_snapshot_matches_private_build(self):
        config = _config(num_nodes=33)
        private = CupNetwork(config).run()
        shared = CupNetwork(config, topology=topology.lease(config)).run()
        assert private == shared

    def test_snapshot_reports_zero_routing_build(self):
        config = _config()
        net = CupNetwork(config, topology=topology.lease(config))
        assert net.metrics.routing_build_seconds == 0.0
        assert net.metrics.routing_table_builds == 0

    def test_membership_changes_rejected_on_snapshot(self):
        config = _config()
        net = CupNetwork(config, topology=topology.lease(config))
        with pytest.raises(RuntimeError, match="shared topology snapshot"):
            net.join_node(999)
        with pytest.raises(RuntimeError, match="shared topology snapshot"):
            net.leave_node(0)
        with pytest.raises(RuntimeError, match="shared topology snapshot"):
            net.crash_node(0)
        # The guard fires before any mutation: the network is intact.
        assert len(net.nodes) == config.num_nodes

    def test_private_network_still_churns(self):
        net = CupNetwork(_config())
        net.join_node(999)
        net.leave_node(999)


class TestExecutorIntegration:
    def test_sweep_cells_share_one_snapshot(self):
        config = _config()
        cells = [
            Cell(f"rate-{rate}", config.variant(query_rate=rate))
            for rate in (1.0, 2.0, 3.0)
        ]
        executor.execute(cells, workers=1, use_cache=False)
        assert topology.stats["misses"] == 1
        assert topology.stats["hits"] == 2

    def test_churn_scenarios_build_privately(self):
        scenario = SCENARIOS["churn-storm"]
        cell = Cell("storm", _config(), scenario=scenario)
        executor.execute([cell], workers=1, use_cache=False)
        assert topology.stats == {"hits": 0, "misses": 0}

    def test_partition_scenario_leases(self):
        scenario = SCENARIOS["partition-heal"]
        assert not (scenario.hazards() & {"churn", "crash"})
        cell = Cell("split", _config(), scenario=scenario)
        executor.execute([cell], workers=1, use_cache=False)
        assert topology.stats["misses"] == 1

    def test_executor_results_unchanged_by_snapshot_reuse(self):
        config = _config()
        cells = [Cell("a", config), Cell("b", config.variant(seed=10))]
        via_executor = executor.execute(cells, workers=1, use_cache=False)
        assert via_executor["a"] == CupNetwork(config).run()
        assert via_executor["b"] == CupNetwork(config.variant(seed=10)).run()

    def test_parallel_pool_persists_across_batches(self):
        config = _config()
        first = executor.execute(
            [Cell("a", config), Cell("b", config.variant(seed=10))],
            workers=2, use_cache=False,
        )
        pool = executor._pool
        assert pool is not None
        second = executor.execute(
            [Cell("c", config.variant(seed=11)),
             Cell("d", config.variant(seed=12))],
            workers=2, use_cache=False,
        )
        assert executor._pool is pool  # same workers, warm snapshots
        assert set(first) == {"a", "b"} and set(second) == {"c", "d"}
        executor.shutdown_pool()
        assert executor._pool is None
