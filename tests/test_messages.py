"""Unit tests for the CUP wire message types."""

from repro.core.entry import IndexEntry
from repro.core.messages import (
    ClearBitMessage,
    QueryMessage,
    ReplicaEvent,
    ReplicaMessage,
    UpdateMessage,
    UpdateType,
)


def entry(timestamp=0.0, lifetime=100.0, replica="k/r0", seq=0):
    return IndexEntry("k", replica, f"addr://{replica}", lifetime, timestamp, seq)


def update(entries, update_type=UpdateType.REFRESH, route=None):
    return UpdateMessage("k", update_type, tuple(entries), "k/r0", 0.0, route=route)


class TestUpdateExpiry:
    def test_fresh_update_not_expired(self):
        assert not update([entry()]).is_expired(50.0)

    def test_all_entries_expired(self):
        assert update([entry(lifetime=10.0)]).is_expired(20.0)

    def test_one_fresh_entry_keeps_update_alive(self):
        u = update([entry(lifetime=10.0), entry(lifetime=100.0, replica="k/r1")])
        assert not u.is_expired(20.0)

    def test_empty_update_never_expires(self):
        assert not update([]).is_expired(1e9)

    def test_carried_expiry_is_latest(self):
        u = update([
            entry(timestamp=0.0, lifetime=10.0),
            entry(timestamp=0.0, lifetime=70.0, replica="k/r1"),
        ])
        assert u.carried_expiry() == 70.0

    def test_carried_expiry_empty(self):
        assert update([]).carried_expiry() == 0.0


class TestFork:
    def test_fork_preserves_payload(self):
        u = update([entry()], route=("a", "b"))
        copy = u.fork()
        assert copy.key == u.key
        assert copy.entries is u.entries
        assert copy.update_type == u.update_type
        assert copy.route == ("a", "b")

    def test_fork_hops_independent(self):
        u = update([entry()])
        u.hops = 3
        copy = u.fork()
        copy.hops += 1
        assert u.hops == 3
        assert copy.hops == 4


class TestMessageKinds:
    def test_kind_tags(self):
        assert QueryMessage("k").kind == "query"
        assert update([]).kind == "update"
        assert ClearBitMessage("k").kind == "clear_bit"
        assert ReplicaMessage(
            ReplicaEvent.BIRTH, "k", "k/r0", "addr", 10.0
        ).kind == "replica"

    def test_query_defaults_to_no_path(self):
        assert QueryMessage("k").path is None

    def test_query_carries_open_connection_path(self):
        q = QueryMessage("k", path=("n3", "n2"))
        assert q.path == ("n3", "n2")

    def test_update_type_priorities_ordered(self):
        assert (
            UpdateType.FIRST_TIME
            < UpdateType.DELETE
            < UpdateType.REFRESH
            < UpdateType.APPEND
        )

    def test_reprs_readable(self):
        assert "k" in repr(QueryMessage("k"))
        assert "REFRESH" in repr(update([entry()]))
        assert "birth" in repr(
            ReplicaMessage(ReplicaEvent.BIRTH, "k", "k/r0", "addr", 10.0)
        )
