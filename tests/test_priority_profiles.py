"""Tests for the §2.8 channel priority profiles."""

import pytest

from repro.core.channels import (
    DEFAULT_PRIORITIES,
    FLASH_CROWD_PRIORITIES,
    PRIORITY_PROFILES,
    CapacityConfig,
    OutgoingUpdateChannels,
)
from repro.core.entry import IndexEntry
from repro.core.messages import UpdateMessage, UpdateType
from repro.core.protocol import CupConfig, CupNetwork
from repro.sim.engine import Simulator


def update(update_type):
    entry = IndexEntry("k", "k/r0", "addr", 100.0, 0.0)
    return UpdateMessage("k", update_type, (entry,), "k/r0", 0.0)


class TestProfiles:
    def test_profiles_registered(self):
        assert PRIORITY_PROFILES["latency"] is DEFAULT_PRIORITIES
        assert PRIORITY_PROFILES["flash-crowd"] is FLASH_CROWD_PRIORITIES

    def test_every_profile_covers_every_type(self):
        for profile in PRIORITY_PROFILES.values():
            assert set(profile) == set(UpdateType)

    def test_first_time_always_first(self):
        for profile in PRIORITY_PROFILES.values():
            assert profile[UpdateType.FIRST_TIME] == min(profile.values())

    def test_flash_crowd_promotes_appends(self):
        assert (
            FLASH_CROWD_PRIORITIES[UpdateType.APPEND]
            < FLASH_CROWD_PRIORITIES[UpdateType.REFRESH]
        )
        assert (
            DEFAULT_PRIORITIES[UpdateType.APPEND]
            > DEFAULT_PRIORITIES[UpdateType.REFRESH]
        )


class TestDrainOrder:
    def drain_order(self, priorities):
        sim = Simulator()
        sent = []
        channels = OutgoingUpdateChannels(
            sim, lambda n, u: sent.append(u.update_type),
            capacity=CapacityConfig(rate=100.0), priorities=priorities,
        )
        channels.push("n1", update(UpdateType.REFRESH))
        channels.push("n1", update(UpdateType.APPEND))
        channels.push("n1", update(UpdateType.DELETE))
        sim.run_until(1.0)
        return sent

    def test_latency_profile_order(self):
        assert self.drain_order(DEFAULT_PRIORITIES) == [
            UpdateType.DELETE, UpdateType.REFRESH, UpdateType.APPEND,
        ]

    def test_flash_crowd_profile_order(self):
        assert self.drain_order(FLASH_CROWD_PRIORITIES) == [
            UpdateType.APPEND, UpdateType.DELETE, UpdateType.REFRESH,
        ]


class TestConfigPlumbing:
    def test_profile_reaches_nodes(self):
        config = CupConfig(
            num_nodes=4, total_keys=1, priority_profile="flash-crowd"
        )
        net = CupNetwork(config)
        node = next(iter(net.nodes.values()))
        assert node.channels._priorities is FLASH_CROWD_PRIORITIES

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            CupConfig(priority_profile="yolo").validate()
