"""Wire codec: framing edge cases and total message round-trips."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.entry import IndexEntry
from repro.core.keepalive import KeepAliveMessage
from repro.core.messages import (
    ClearBitMessage,
    NackMessage,
    QueryMessage,
    ReplicaEvent,
    ReplicaMessage,
    UpdateMessage,
    UpdateType,
)
from repro.net.wire import (
    HEADER_BYTES,
    MAX_FRAME_BYTES,
    FrameDecoder,
    WireError,
    available_codecs,
    encode_frame,
    entry_from_wire,
    entry_to_wire,
    message_from_wire,
    message_to_wire,
    resolve_codec,
)


def roundtrip(message):
    return message_from_wire(message_to_wire(message))


def entry(key="k", replica="r1", seq=3):
    return IndexEntry(key=key, replica_id=replica, address="10.0.0.1",
                      lifetime=300.0, timestamp=1234.5, sequence=seq)


# ----------------------------------------------------------------------
# Message round-trips: one per wire-transportable kind
# ----------------------------------------------------------------------


def test_query_roundtrip_with_path():
    msg = QueryMessage("some/key", path=("a", "b", "c"))
    msg.hops = 7
    out = roundtrip(msg)
    assert isinstance(out, QueryMessage)
    assert out.key == "some/key"
    assert out.path == ("a", "b", "c")
    assert out.hops == 7


def test_query_roundtrip_none_path_stays_none():
    out = roundtrip(QueryMessage("k", path=None))
    assert out.path is None


def test_query_roundtrip_empty_path_stays_empty():
    out = roundtrip(QueryMessage("k", path=()))
    assert out.path == ()
    assert out.path is not None


@pytest.mark.parametrize("update_type", list(UpdateType))
def test_update_roundtrip_every_type(update_type):
    msg = UpdateMessage(
        key="k", update_type=update_type,
        entries=(entry(seq=1), entry(replica="r2", seq=2)),
        replica_id="r1", issued_at=99.25, route=("n1", "n2"),
    )
    msg.hops = 2
    msg.hop_seq = 41
    out = roundtrip(msg)
    assert isinstance(out, UpdateMessage)
    assert out.update_type is update_type
    assert out.entries == msg.entries
    assert out.replica_id == "r1"
    assert out.issued_at == 99.25
    assert out.route == ("n1", "n2")
    assert out.hop_seq == 41
    assert out.hops == 2


def test_update_roundtrip_null_route_and_hop_seq():
    msg = UpdateMessage(key="k", update_type=UpdateType.REFRESH,
                        entries=(), replica_id=None, issued_at=0.0)
    out = roundtrip(msg)
    assert out.route is None
    assert out.hop_seq is None
    assert out.entries == ()


def test_clear_bit_roundtrip():
    out = roundtrip(ClearBitMessage("k"))
    assert isinstance(out, ClearBitMessage)
    assert out.key == "k"


def test_nack_roundtrip():
    msg = NackMessage("k", (4, 5, 9))
    out = roundtrip(msg)
    assert isinstance(out, NackMessage)
    assert out.missing == (4, 5, 9)


def test_keepalive_roundtrip():
    out = roundtrip(KeepAliveMessage())
    assert isinstance(out, KeepAliveMessage)
    assert out.kind == "keepalive"


@pytest.mark.parametrize("event", list(ReplicaEvent))
def test_replica_roundtrip_every_event(event):
    msg = ReplicaMessage(event=event, key="k", replica_id="r9",
                         address="addr", lifetime=120.0)
    out = roundtrip(msg)
    assert isinstance(out, ReplicaMessage)
    assert out.event is event
    assert out.replica_id == "r9"
    assert out.lifetime == 120.0


def test_entry_roundtrip_equality():
    original = entry()
    assert entry_from_wire(entry_to_wire(original)) == original


def test_unknown_kind_raises_wire_error():
    with pytest.raises(WireError):
        message_from_wire({"kind": "gossip", "hops": 0})


def test_malformed_update_raises_wire_error():
    with pytest.raises(WireError, match="update"):
        message_from_wire({"kind": "update", "hops": 0, "key": "k"})


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------


#: Every codec importable in this environment; json is always present,
#: msgpack rides along when installed.  Frame round-trips below run
#: once per codec so both wire formats stay honest.
CODECS = sorted(available_codecs())


def test_codec_registry_always_has_json():
    assert "json" in available_codecs()
    assert resolve_codec("json") == 1
    with pytest.raises(WireError, match="not available"):
        resolve_codec("carrier-pigeon")


def test_unavailable_codec_is_a_clean_wire_error():
    # When msgpack is not importable, requesting it must fail as a
    # WireError naming the available codecs — not an ImportError from
    # deep inside the encoder.  (With msgpack installed this asserts
    # the same contract via a codec that can never exist.)
    missing = ("msgpack" if "msgpack" not in available_codecs()
               else "msgpack-ng")
    with pytest.raises(WireError, match="not available") as excinfo:
        resolve_codec(missing)
    assert "json" in str(excinfo.value)
    with pytest.raises(WireError, match="not available"):
        encode_frame({"t": "x"}, missing)


@pytest.mark.parametrize("codec", CODECS)
def test_frame_roundtrip_single(codec):
    decoder = FrameDecoder()
    frames = decoder.feed(
        encode_frame({"t": "hello", "id": "n1"}, codec)
    )
    assert frames == [{"t": "hello", "id": "n1"}]
    assert decoder.buffered == 0


@pytest.mark.parametrize("codec", CODECS)
def test_frame_roundtrip_many_in_one_read(codec):
    payloads = [{"i": i} for i in range(20)]
    blob = b"".join(encode_frame(p, codec) for p in payloads)
    assert FrameDecoder().feed(blob) == payloads


@pytest.mark.parametrize("codec", CODECS)
def test_frame_roundtrip_byte_at_a_time(codec):
    payloads = [{"t": "msg", "n": i, "data": "x" * i} for i in range(8)]
    blob = b"".join(encode_frame(p, codec) for p in payloads)
    decoder = FrameDecoder()
    out = []
    for i in range(len(blob)):
        out.extend(decoder.feed(blob[i:i + 1]))
    assert out == payloads
    assert decoder.buffered == 0


@pytest.mark.parametrize("codec", CODECS)
def test_message_roundtrip_through_frames_each_codec(codec):
    msg = UpdateMessage(
        key="k", update_type=UpdateType.REFRESH,
        entries=(entry(seq=1), entry(replica="r2", seq=2)),
        replica_id="r1", issued_at=99.25, route=("n1", "n2"),
    )
    msg.hops = 2
    blob = encode_frame(message_to_wire(msg), codec)
    (decoded,) = FrameDecoder().feed(blob)
    restored = message_from_wire(decoded)
    assert message_to_wire(restored) == message_to_wire(msg)


def test_partial_frame_returns_nothing_until_complete():
    frame = encode_frame({"k": "v"})
    decoder = FrameDecoder()
    assert decoder.feed(frame[:HEADER_BYTES + 1]) == []
    assert decoder.buffered == HEADER_BYTES + 1
    assert decoder.feed(frame[HEADER_BYTES + 1:]) == [{"k": "v"}]


def test_oversize_length_rejected_from_header_alone():
    header = struct.pack("!IB", MAX_FRAME_BYTES + 1, 1)
    with pytest.raises(WireError, match="exceeds"):
        FrameDecoder().feed(header)


def test_unknown_codec_tag_rejected_from_header_alone():
    header = struct.pack("!IB", 10, 77)
    with pytest.raises(WireError, match="codec tag"):
        FrameDecoder().feed(header)


def test_garbage_prefix_detected_before_payload_arrives():
    # b"GET / HT" begins with a huge big-endian "length"; the decoder
    # must not sit waiting for gigabytes of payload.
    with pytest.raises(WireError):
        FrameDecoder().feed(b"GET / HTTP/1.1\r\n")


def test_undecodable_payload_raises():
    blob = struct.pack("!IB", 4, 1) + b"\xff\xfe\xfd\xfc"
    with pytest.raises(WireError, match="undecodable"):
        FrameDecoder().feed(blob)


def test_non_map_payload_raises():
    payload = b"[1,2]"
    blob = struct.pack("!IB", len(payload), 1) + payload
    with pytest.raises(WireError, match="must be a map"):
        FrameDecoder().feed(blob)


def test_encode_frame_rejects_oversize_payload():
    with pytest.raises(WireError, match="exceeds"):
        encode_frame({"blob": "x" * (MAX_FRAME_BYTES + 16)})


# ----------------------------------------------------------------------
# Property fuzz: arbitrary chunking never changes what decodes
# ----------------------------------------------------------------------

_wire_entries = st.builds(
    IndexEntry,
    key=st.text(min_size=1, max_size=8),
    replica_id=st.text(min_size=1, max_size=8),
    address=st.text(max_size=12),
    lifetime=st.floats(0.001, 1e6, allow_nan=False),
    timestamp=st.floats(0.0, 1e9, allow_nan=False),
    sequence=st.integers(0, 2**31),
)

_wire_messages = st.one_of(
    st.builds(
        QueryMessage,
        st.text(min_size=1, max_size=16),
        path=st.none() | st.tuples() | st.lists(
            st.text(min_size=1, max_size=6), max_size=4
        ).map(tuple),
    ),
    st.builds(
        UpdateMessage,
        key=st.text(min_size=1, max_size=16),
        update_type=st.sampled_from(list(UpdateType)),
        entries=st.lists(_wire_entries, max_size=3).map(tuple),
        replica_id=st.none() | st.text(min_size=1, max_size=8),
        issued_at=st.floats(0.0, 1e9, allow_nan=False),
        route=st.none() | st.lists(
            st.text(min_size=1, max_size=6), max_size=3
        ).map(tuple),
    ),
    st.builds(ClearBitMessage, st.text(min_size=1, max_size=16)),
    st.builds(
        NackMessage,
        st.text(min_size=1, max_size=16),
        st.lists(st.integers(0, 2**20), min_size=1, max_size=6).map(tuple),
    ),
    st.builds(KeepAliveMessage),
    st.builds(
        ReplicaMessage,
        event=st.sampled_from(list(ReplicaEvent)),
        key=st.text(min_size=1, max_size=16),
        replica_id=st.text(min_size=1, max_size=8),
        address=st.text(max_size=12),
        lifetime=st.floats(0.001, 1e6, allow_nan=False),
    ),
)


@settings(max_examples=150, deadline=None)
@given(
    messages=st.lists(_wire_messages, min_size=1, max_size=6),
    hops=st.integers(0, 64),
    chunk_seed=st.randoms(use_true_random=False),
)
def test_fuzz_roundtrip_survives_arbitrary_chunking(
    messages, hops, chunk_seed
):
    for message in messages:
        message.hops = hops
    blob = b"".join(
        encode_frame(message_to_wire(m)) for m in messages
    )
    decoder = FrameDecoder()
    decoded = []
    position = 0
    while position < len(blob):
        step = chunk_seed.randint(1, 13)
        decoded.extend(decoder.feed(blob[position:position + step]))
        position += step
    assert decoder.buffered == 0
    assert len(decoded) == len(messages)
    for original, data in zip(messages, decoded):
        restored = message_from_wire(data)
        assert type(restored) is type(original)
        assert message_to_wire(restored) == message_to_wire(original)


@settings(max_examples=100, deadline=None)
@given(garbage=st.binary(min_size=HEADER_BYTES, max_size=64))
def test_fuzz_garbage_never_hangs_or_decodes_silently(garbage):
    decoder = FrameDecoder()
    try:
        frames = decoder.feed(garbage)
    except WireError:
        return  # rejected: the connection would be dropped
    # Anything accepted must have been a structurally valid frame
    # stream; whatever remains buffered is a plausible partial frame.
    assert all(isinstance(f, dict) for f in frames)
    assert decoder.buffered <= len(garbage)
