"""Unreliable-transport survival layer: gap detection, NACK, degradation.

CUP as specified assumes exactly-once, in-order delivery — the paper's
cost model never prices a lost update.  This module adds the machinery a
node needs to survive a transport that loses, duplicates, or reorders
messages (see :class:`repro.sim.network.LinkFaults`):

* **Sequence stamping.**  Every update a node transmits to a neighbor
  carries a per-(neighbor, key) hop sequence number (``hop_seq`` on
  :class:`~repro.core.messages.UpdateMessage`), stamped just before the
  transport send.  Recently sent envelopes are kept in a bounded
  per-link buffer for retransmission.

* **Gap detection + NACK.**  The receiver tracks a per-(sender, key)
  watermark.  A sequence jump means intervening updates were lost: the
  node records the missing numbers, sends a
  :class:`~repro.core.messages.NackMessage` upstream, and arms a retry
  timer.  Retries back off exponentially (capped) because the NACK and
  the retransmission are themselves subject to loss.

* **Duplicate suppression.**  A sequence number at or below the
  watermark that is not a recorded gap member has already been applied;
  the duplicate is counted and dropped before it can touch the cache.

* **Graceful degradation.**  When retries exhaust, or the upstream peer
  departs, the node stops waiting: it records a *degraded read* for the
  key and falls back to pull-on-miss — re-issuing a query up the overlay
  so the existing first-time-update machinery re-grafts its interest and
  refills the cache.  The tree self-heals instead of serving stale data
  forever.

The manager is inert unless constructed — nodes on the default reliable
path (``CupConfig.reliable_transport=True``) never instantiate one, so
the golden-pin byte-identity of the reliable path is preserved.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Optional, Set, Tuple

from repro.core.messages import NackMessage, UpdateMessage
from repro.sim.network import NodeId


@dataclass(frozen=True)
class RecoveryConfig:
    """Tuning knobs for the recovery state machine.

    Attributes
    ----------
    max_retries:
        NACK retransmissions per gap before the node gives up and
        degrades to a pull.  Retry counts are bounded by this cap.
    base_timeout:
        Seconds to wait for the first retransmission before re-NACKing.
    backoff:
        Multiplier applied to the timeout on every retry (exponential
        backoff).
    max_timeout:
        Ceiling on the backed-off timeout.
    buffer_size:
        Sent-update envelopes retained per (neighbor, key) link for
        retransmission; older envelopes are evicted FIFO and become
        unrecoverable over that link.
    """

    max_retries: int = 4
    base_timeout: float = 0.5
    backoff: float = 2.0
    max_timeout: float = 8.0
    buffer_size: int = 64

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.base_timeout <= 0:
            raise ValueError(
                f"base_timeout must be > 0, got {self.base_timeout}"
            )
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {self.backoff}")
        if self.max_timeout < self.base_timeout:
            raise ValueError(
                f"max_timeout ({self.max_timeout}) must be >= base_timeout "
                f"({self.base_timeout})"
            )
        if self.buffer_size < 1:
            raise ValueError(
                f"buffer_size must be >= 1, got {self.buffer_size}"
            )


class _Gap:
    """One open recovery episode toward a (sender, key) link."""

    __slots__ = ("missing", "retries", "timer")

    def __init__(self) -> None:
        self.missing: Set[int] = set()
        self.retries = 0
        self.timer = None


class RecoveryManager:
    """Per-node recovery state machine over an unreliable transport.

    Parameters
    ----------
    sim:
        The event engine, used for retry timers.
    transport:
        Used to send NACKs and retransmissions (overlay hops).
    node_id:
        The owning node's identifier.
    metrics:
        A :class:`~repro.metrics.collector.MetricsCollector` (or None)
        whose recovery counters this manager increments.
    config:
        :class:`RecoveryConfig` knobs.
    request_pull:
        Callback ``(key) -> None`` invoked on degradation; the node
        re-issues a query upstream so interest re-grafts and the cache
        refills through the normal first-time-update path.
    """

    __slots__ = (
        "_sim", "_transport", "_node_id", "_metrics", "config",
        "_request_pull", "_send_seq", "_sent", "_recv_high", "_gaps",
        "degraded_keys",
    )

    def __init__(
        self,
        sim,
        transport,
        node_id: NodeId,
        metrics,
        config: RecoveryConfig,
        request_pull: Callable[[str], None],
    ):
        self._sim = sim
        self._transport = transport
        self._node_id = node_id
        self._metrics = metrics
        self.config = config
        self._request_pull = request_pull
        # Sender side: next sequence number and bounded retransmission
        # buffer, both per (neighbor, key).
        self._send_seq: Dict[Tuple[NodeId, str], int] = {}
        self._sent: Dict[Tuple[NodeId, str], Deque[UpdateMessage]] = {}
        # Receiver side: highest sequence seen per (sender, key), plus
        # open gaps awaiting retransmission.
        self._recv_high: Dict[Tuple[NodeId, str], int] = {}
        self._gaps: Dict[Tuple[NodeId, str], _Gap] = {}
        #: Keys this node has given up recovering over a broken link and
        #: served (or refreshed) through a degraded pull instead.  The
        #: convergence audit excuses these.
        self.degraded_keys: Set[str] = set()

    # ------------------------------------------------------------------
    # Sender side
    # ------------------------------------------------------------------

    def stamp(self, neighbor: NodeId, update: UpdateMessage) -> None:
        """Assign the next (neighbor, key) sequence and buffer the envelope.

        Called by the node immediately before every per-neighbor
        transport send of a CUP (non-routed) update.
        """
        link = (neighbor, update.key)
        seq = self._send_seq.get(link, 0) + 1
        self._send_seq[link] = seq
        update.hop_seq = seq
        buffer = self._sent.get(link)
        if buffer is None:
            buffer = deque(maxlen=self.config.buffer_size)
            self._sent[link] = buffer
        buffer.append(update)

    def handle_nack(self, message: NackMessage, child: NodeId) -> None:
        """Retransmit buffered envelopes a child reports as missing.

        Envelopes evicted from the bounded buffer cannot be resent; the
        child's retry/degradation machinery copes.  Retransmissions are
        fresh forks so per-branch hop counters stay independent.
        """
        buffer = self._sent.get((child, message.key))
        if buffer is None:
            return
        wanted = set(message.missing)
        for envelope in buffer:
            if envelope.hop_seq in wanted:
                self._transport.send(self._node_id, child, envelope.fork())

    # ------------------------------------------------------------------
    # Receiver side
    # ------------------------------------------------------------------

    def note_received(self, sender: NodeId, key: str, seq: int) -> bool:
        """Record an arriving sequence number; return True to apply it.

        Advances the watermark on in-order or ahead-of-order arrivals
        (opening a gap for any skipped numbers), fills gap members on
        late arrivals, and suppresses duplicates (returns False).
        """
        link = (sender, key)
        high = self._recv_high.get(link, 0)
        if seq > high:
            self._recv_high[link] = seq
            if seq > high + 1:
                self._open_gap(link, range(high + 1, seq))
            return True
        gap = self._gaps.get(link)
        if gap is not None and seq in gap.missing:
            gap.missing.discard(seq)
            metrics = self._metrics
            if metrics is not None:
                metrics.recovered_updates += 1
            if not gap.missing:
                self._close_gap(link)
            return True
        metrics = self._metrics
        if metrics is not None:
            metrics.duplicates_suppressed += 1
        return False

    def _open_gap(self, link: Tuple[NodeId, str], missing) -> None:
        gap = self._gaps.get(link)
        fresh = gap is None
        if fresh:
            gap = _Gap()
            self._gaps[link] = gap
        new = [seq for seq in missing if seq not in gap.missing]
        gap.missing.update(new)
        metrics = self._metrics
        if metrics is not None:
            metrics.gaps_detected += len(new)
        self._send_nack(link, gap)
        if fresh:
            self._arm_timer(link, gap)

    def _close_gap(self, link: Tuple[NodeId, str]) -> None:
        gap = self._gaps.pop(link, None)
        if gap is not None and gap.timer is not None:
            gap.timer.cancel()
            gap.timer = None

    def _send_nack(self, link: Tuple[NodeId, str], gap: _Gap) -> None:
        sender, key = link
        if not self._transport.is_registered(self._node_id):
            # This node itself departed or crashed with the timer armed;
            # a corpse sends nothing.
            return
        if not self._transport.is_registered(sender):
            return
        nack = NackMessage(key, tuple(sorted(gap.missing)))
        self._transport.send(self._node_id, sender, nack)
        metrics = self._metrics
        if metrics is not None:
            metrics.nacks_sent += 1

    def _arm_timer(self, link: Tuple[NodeId, str], gap: _Gap) -> None:
        config = self.config
        timeout = min(
            config.base_timeout * (config.backoff ** gap.retries),
            config.max_timeout,
        )
        gap.timer = self._sim.schedule(timeout, self._retry, link)

    def _retry(self, link: Tuple[NodeId, str]) -> None:
        gap = self._gaps.get(link)
        if gap is None:
            return
        gap.timer = None
        if gap.retries >= self.config.max_retries:
            self._degrade(link)
            return
        gap.retries += 1
        metrics = self._metrics
        if metrics is not None:
            metrics.recovery_retries += 1
        self._send_nack(link, gap)
        self._arm_timer(link, gap)

    # ------------------------------------------------------------------
    # Degradation
    # ------------------------------------------------------------------

    def _degrade(self, link: Tuple[NodeId, str]) -> None:
        """Give up on a gap: record the degraded read, pull instead."""
        self._close_gap(link)
        _sender, key = link
        self.degraded_keys.add(key)
        metrics = self._metrics
        if metrics is not None:
            metrics.degraded_reads += 1
        self._request_pull(key)

    def note_refreshed(self, key: str) -> None:
        """A fresh response landed for ``key``: lift its degraded mark.

        The mark exists to excuse staleness *while the pull is in
        flight*; once the re-query's response (or a maintenance update
        answering the pending flag) refills the cache, the key is a
        first-class subscriber again and the convergence audit must hold
        it to the normal standard.  Leaving the mark in place forever
        would excuse any later silent staleness — exactly the failure
        mode the audit exists to catch.
        """
        if key in self.degraded_keys:
            self.degraded_keys.discard(key)
            metrics = self._metrics
            if metrics is not None:
                metrics.degraded_repromotions += 1

    def prune_peers(self, alive) -> None:
        """React to membership change: drop state toward departed peers.

        Gaps waiting on a departed sender can never be filled by
        retransmission — degrade immediately rather than burning the
        retry budget against a dead link.  Sender-side buffers toward
        departed children are garbage.
        """
        alive = set(alive)
        for link in [l for l in self._gaps if l[0] not in alive]:
            self._degrade(link)
        for registry in (self._recv_high, self._sent, self._send_seq):
            for link in [l for l in registry if l[0] not in alive]:
                del registry[link]

    # ------------------------------------------------------------------
    # Durable state (live-node persistence)
    # ------------------------------------------------------------------

    def export_state(self) -> dict:
        """Plain-data snapshot of the state a restart must not forget.

        Three pieces survive a process death; everything else is
        legitimately volatile:

        * ``send_seq`` — reusing per-(neighbor, key) sequence numbers
          after a restart would make this node's fresh updates look like
          duplicates to every downstream watermark, so they would be
          silently suppressed until the counter caught up.
        * ``recv_high`` — forgetting receive watermarks would make the
          first in-order arrival after restart look like a giant gap and
          trigger a NACK storm for updates that were already applied.
        * ``degraded`` — keys this node already gave up recovering; open
          gaps are folded in, because their retry timers die with the
          process and the post-restore reconcile pull is what actually
          refills them.

        Retransmission buffers are deliberately dropped: a NACK arriving
        after restart simply finds nothing to resend, and the child's
        own retry/degradation machinery copes — exactly as it does when
        the bounded buffer evicts.
        """
        degraded = set(self.degraded_keys)
        degraded.update(key for _sender, key in self._gaps)
        return {
            "send_seq": dict(self._send_seq),
            "recv_high": dict(self._recv_high),
            "degraded": sorted(degraded),
        }

    def import_state(self, state: dict) -> None:
        """Install an :meth:`export_state` snapshot (max-merge semantics).

        Watermarks and sequences only ever move forward, so a restore
        into a manager that has already seen traffic keeps whichever
        side is further along.
        """
        for link, seq in state.get("send_seq", {}).items():
            link = (link[0], link[1])
            if seq > self._send_seq.get(link, 0):
                self._send_seq[link] = seq
        for link, seq in state.get("recv_high", {}).items():
            link = (link[0], link[1])
            if seq > self._recv_high.get(link, 0):
                self._recv_high[link] = seq
        self.degraded_keys.update(state.get("degraded", ()))

    # ------------------------------------------------------------------
    # Introspection (tests, invariant audits)
    # ------------------------------------------------------------------

    def open_gaps(self) -> Dict[Tuple[NodeId, str], Tuple[int, ...]]:
        """Snapshot of unresolved gaps: link -> sorted missing seqs."""
        return {
            link: tuple(sorted(gap.missing))
            for link, gap in self._gaps.items()
        }

    def watermark(self, sender: NodeId, key: str) -> int:
        """Highest sequence seen from ``sender`` for ``key`` (0 if none)."""
        return self._recv_high.get((sender, key), 0)
