"""Incentive-based cut-off policies (§3.4 of the paper).

On receiving an update for a key, a node with no interested downstream
neighbors decides whether there is incentive to keep receiving updates;
if not, it pushes a Clear-Bit message upstream.  The incentive is the
key's *popularity* — the number of queries received since the last
cut-off-relevant update.

The paper examines two families:

* **Probability-based** thresholds approximate the chance an update at
  distance ``D`` from the authority is justified: the *linear* policy
  keeps receiving iff ``popularity >= alpha * D``; the *logarithmic*
  policy iff ``popularity >= alpha * lg(D)``.
* **Log-based** policies look at the recent history of update arrivals:
  if the last ``strikes_to_cut`` consecutive update intervals saw no
  queries, cut off.  *Second-chance* is the member of this family the
  paper recommends: one query-less interval earns a second chance, a
  second consecutive one triggers the clear-bit (the paper labels this
  n=3 counting the bounding updates; the behaviour is identical).

Policies also govern the *forwarding* side: the push-level experiments of
§3.3 propagate every update down the real query tree but only to nodes
within ``p`` hops of the authority.  :class:`AllOutPolicy` with a
``push_level`` models exactly that.

Policy objects are shared across all nodes of a simulation and hold no
per-key state themselves; mutable bookkeeping lives in
``KeyState.policy_state`` via :meth:`CutoffPolicy.new_state`.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Any, Optional

from repro.core.cache import KeyState


class CutoffPolicy(ABC):
    """Decides when a node stops receiving and stops forwarding updates."""

    #: Human-readable name used in reports and tables.
    name: str = "abstract"

    #: Whether decisions need the node's hop distance from the authority.
    #: Policies that don't (e.g. second-chance — the paper highlights its
    #: distance independence) let nodes skip route-length computation.
    needs_distance: bool = False

    def new_state(self) -> Any:
        """Fresh per-key mutable bookkeeping (stored on the KeyState)."""
        return None

    def observe_update(self, state: KeyState) -> None:
        """Hook invoked on every cut-off-relevant update arrival, *before*
        :meth:`should_keep_receiving`, so history-based policies can
        account the elapsed interval."""

    @abstractmethod
    def should_keep_receiving(self, state: KeyState, distance: int) -> bool:
        """Whether the key is popular enough to keep the updates coming.

        Evaluated only when the node has no interested downstream
        neighbors (§2.6 case 2); ``distance`` is the node's hop count to
        the authority (only meaningful when :attr:`needs_distance`).
        """

    def may_forward(self, distance: int) -> bool:
        """Whether a node at ``distance`` may push updates one hop further.

        Default: always (propagation is bounded by interest bits and the
        receiving side's cut-offs, not by the sender).
        """
        return True

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class AllOutPolicy(CutoffPolicy):
    """Propagate every update to every interested node — optionally capped
    at a push level.

    With ``push_level=None`` this is the paper's "all-out" strategy
    (§3.1): minimum latency, overhead be damned.  With ``push_level=p``
    updates reach only nodes within ``p`` hops of the authority — the
    configuration swept by Figures 3 and 4.  ``push_level=0`` squelches
    all maintenance updates at the authority, which *is* standard caching.
    """

    def __init__(self, push_level: Optional[int] = None):
        if push_level is not None and push_level < 0:
            raise ValueError(f"push_level must be >= 0, got {push_level}")
        self.push_level = push_level
        self.name = (
            "all-out" if push_level is None else f"push-level-{push_level}"
        )
        self.needs_distance = push_level is not None

    def should_keep_receiving(self, state: KeyState, distance: int) -> bool:
        return True

    def may_forward(self, distance: int) -> bool:
        if self.push_level is None:
            return True
        # A node at distance D forwards to children at D + 1; cap there.
        return distance + 1 <= self.push_level


class LinearPolicy(CutoffPolicy):
    """Probability-based cut-off with a linear distance threshold.

    Keep receiving iff at least ``alpha * D`` queries arrived since the
    last update, where ``D`` is the node's distance from the authority.
    The further from the authority, the more queries it takes to justify
    the longer propagation path.
    """

    needs_distance = True

    def __init__(self, alpha: float):
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        self.alpha = alpha
        self.name = f"linear(alpha={alpha:g})"

    def should_keep_receiving(self, state: KeyState, distance: int) -> bool:
        return state.popularity >= self.alpha * distance


class LogarithmicPolicy(CutoffPolicy):
    """Probability-based cut-off with a logarithmic distance threshold.

    Keep receiving iff ``popularity >= alpha * lg(D)``.  More lenient
    than linear: the threshold grows slowly as updates travel away from
    the root, so distant nodes are not starved as aggressively.
    """

    needs_distance = True

    def __init__(self, alpha: float):
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        self.alpha = alpha
        self.name = f"log(alpha={alpha:g})"

    def should_keep_receiving(self, state: KeyState, distance: int) -> bool:
        threshold = self.alpha * math.log2(distance) if distance > 1 else 0.0
        return state.popularity >= threshold


class _LogBasedState:
    """Consecutive query-less update intervals seen for one key."""

    __slots__ = ("strikes",)

    def __init__(self) -> None:
        self.strikes = 0


class LogBasedPolicy(CutoffPolicy):
    """History-based cut-off: cut after ``strikes_to_cut`` consecutive
    update arrivals with zero queries in between.

    Adapts to the *timing* of queries within the workload instead of to
    network distance, which is why the paper finds it tracks shifts in
    key popularity that probability-based policies miss.
    """

    def __init__(self, strikes_to_cut: int, name: Optional[str] = None):
        if strikes_to_cut < 1:
            raise ValueError(
                f"strikes_to_cut must be >= 1, got {strikes_to_cut}"
            )
        self.strikes_to_cut = strikes_to_cut
        self.name = name or f"log-based(n={strikes_to_cut})"

    def new_state(self) -> _LogBasedState:
        return _LogBasedState()

    def observe_update(self, state: KeyState) -> None:
        if state.policy_state is None:
            state.policy_state = self.new_state()
        if state.popularity > 0:
            state.policy_state.strikes = 0
        else:
            state.policy_state.strikes += 1

    def should_keep_receiving(self, state: KeyState, distance: int) -> bool:
        if state.policy_state is None:
            return True
        return state.policy_state.strikes < self.strikes_to_cut


class SecondChancePolicy(LogBasedPolicy):
    """The paper's recommended policy (§3.4).

    When an update arrives and no queries were seen since the previous
    update, the key gets a "second chance"; if the next update still
    finds no queries, the node cuts off.  The two pushed updates cost the
    parent two hops — exactly what one saved query miss (one hop up, one
    hop down) recovers, so the grace period is self-financing.
    """

    def __init__(self) -> None:
        super().__init__(strikes_to_cut=2, name="second-chance")


def make_policy(spec: str) -> CutoffPolicy:
    """Build a policy from a compact string spec (CLI / config files).

    Accepted forms::

        all-out            push everything everywhere
        push-level:P       all-out capped at push level P
        linear:A           linear threshold with alpha = A
        log:A              logarithmic threshold with alpha = A
        log-based:N        cut after N query-less update intervals
        second-chance      the paper's recommended policy
    """
    spec = spec.strip().lower()
    if spec in ("all-out", "allout", "all_out"):
        return AllOutPolicy()
    if spec in ("second-chance", "secondchance", "second_chance"):
        return SecondChancePolicy()
    if ":" in spec:
        head, _, arg = spec.partition(":")
        head = head.strip()
        arg = arg.strip()
        if head in ("push-level", "push_level", "pushlevel"):
            return AllOutPolicy(push_level=int(arg))
        if head == "linear":
            return LinearPolicy(alpha=float(arg))
        if head in ("log", "logarithmic"):
            return LogarithmicPolicy(alpha=float(arg))
        if head in ("log-based", "log_based", "logbased"):
            return LogBasedPolicy(strikes_to_cut=int(arg))
    raise ValueError(f"unrecognized policy spec: {spec!r}")
