"""Per-node, per-key CUP bookkeeping (§2.3 of the paper).

At each node, index entries are grouped by key.  For every key a node has
seen, it keeps:

* the cached index entries themselves (disjoint from the node's local
  index directory — authority-owned entries live in
  :class:`repro.replicas.authority.AuthorityIndex`);
* a Pending-First-Update flag that coalesces query bursts;
* an interest bit vector — here a set of neighbor ids — recording which
  neighbors want updates;
* the number of open local client connections awaiting an answer;
* a popularity measure (queries since the last cut-off-relevant update);
* per-key mutable state for the cut-off policy (e.g. second-chance
  strikes);
* a cached upstream parent (the overlay next hop), hop distance and
  am-I-the-authority bit, each invalidated by overlay epoch bumps after
  churn.

The paper notes this bookkeeping "involves no network overhead" and is
negligible next to the query-latency savings; accordingly nothing in this
module touches the transport.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Iterator, List, Optional, Set

from repro.core.entry import IndexEntry
from repro.sim.network import NodeId


class KeyState:
    """Everything one node tracks about one non-local key."""

    __slots__ = (
        "key",
        "entries",
        "pending_first_update",
        "pending_since",
        "interest",
        "waiting",
        "local_waiters",
        "popularity",
        "policy_state",
        "parent",
        "parent_epoch",
        "distance",
        "distance_epoch",
        "is_authority_here",
        "authority_epoch",
        "designated_replica",
        "clear_bit_sent",
        "justification_deadlines",
        "_interest_sorted",
        "min_expires",
        "max_expires",
    )

    #: Cap on retained justification windows per key; refreshes arrive at
    #: most once per lifetime per replica, so this never truncates in
    #: practice — it is a guard against pathological configurations.
    MAX_JUSTIFICATION_WINDOWS = 64

    def __init__(self, key: str):
        self.key = key
        self.entries: Dict[str, IndexEntry] = {}
        self.pending_first_update = False
        self.pending_since = 0.0
        self.interest: Set[NodeId] = set()
        # Neighbors owed a first-time response: the subset of `interest`
        # whose queries were coalesced behind the current PFU.  First-time
        # updates fan out to these; maintenance updates fan out to all of
        # `interest`.  Keeping them separate prevents a response from
        # being broadcast to long-subscribed neighbors that asked nothing.
        self.waiting: Set[NodeId] = set()
        self.local_waiters = 0
        self.popularity = 0
        self.policy_state: Any = None
        self.parent: Optional[NodeId] = None
        self.parent_epoch = -1
        self.distance = -1
        self.distance_epoch = -1
        # Whether the owning node is this key's authority, per overlay
        # epoch: the query fast path answers "am I the authority?" from
        # here without re-entering the overlay (node.py's hot path).
        self.is_authority_here = False
        self.authority_epoch = -1
        self.designated_replica: Optional[str] = None
        self.clear_bit_sent = False
        self.justification_deadlines: Deque[float] = deque()
        # Memoized deterministic fan-out order (see sorted_interest).
        self._interest_sorted: Optional[tuple] = None
        # Conservative lower bound on the earliest entry expiration: the
        # gc sweep skips the per-entry scan entirely while the clock has
        # not reached it.  Maintained on entry application (replacing an
        # entry can only leave the bound stale-low, never stale-high, so
        # a false positive costs one scan, never a missed purge); the gc
        # scan itself re-tightens it.
        self.min_expires = float("inf")
        # Exact latest entry expiration (-inf when empty): has_fresh —
        # evaluated on every query and every response-readiness check —
        # is a single comparison against it instead of an entry walk.
        # Kept exact by apply/remove/purge (removal of the maximal entry
        # triggers a recompute; expired-only purges cannot remove it
        # while it is still ahead of the clock).
        self.max_expires = float("-inf")

    # ------------------------------------------------------------------
    # Entry freshness
    # ------------------------------------------------------------------

    def fresh_entries(self, now: float) -> List[IndexEntry]:
        """The cached entries still usable to answer queries at ``now``."""
        return [e for e in self.entries.values() if e.is_fresh(now)]

    def has_fresh(self, now: float) -> bool:
        """Whether at least one cached entry is fresh (§2.5 case 1)."""
        return now < self.max_expires

    def all_expired(self, now: float) -> bool:
        """Whether the key is cached but unusable (§2.5 case 3)."""
        return bool(self.entries) and not self.has_fresh(now)

    def purge_expired(self, now: float) -> int:
        """Drop expired entries; returns how many were removed."""
        stale = [rid for rid, e in self.entries.items() if not e.is_fresh(now)]
        for rid in stale:
            del self.entries[rid]
        if stale:
            self._recompute_expiry_bounds()
        return len(stale)

    def _recompute_expiry_bounds(self) -> None:
        """Re-derive min/max entry expirations after entry removal."""
        min_expires = float("inf")
        max_expires = float("-inf")
        for entry in self.entries.values():
            expires = entry.timestamp + entry.lifetime
            if expires < min_expires:
                min_expires = expires
            if expires > max_expires:
                max_expires = expires
        self.min_expires = min_expires
        self.max_expires = max_expires

    def apply_entry(self, entry: IndexEntry) -> bool:
        """Insert or refresh one entry, respecting sequence numbers.

        Returns ``False`` when the cache already holds a same-or-newer
        version for that replica (an out-of-order or duplicate update),
        ``True`` when the entry was stored.

        NOTE: the single-entry hot path in ``CupNode._handle_update``
        inlines this method (sequence guard + expiry-bound
        maintenance); semantic changes here must be mirrored there.
        """
        current = self.entries.get(entry.replica_id)
        if current is not None and current.sequence >= entry.sequence:
            return False
        self.entries[entry.replica_id] = entry
        expires = entry.timestamp + entry.lifetime
        if (
            current is not None
            and expires < current.timestamp + current.lifetime
        ):
            # A replacement that *shrinks* the expiry (a refresh always
            # extends it, so this is a theoretical path): the replaced
            # entry may have carried the max bound — re-derive both.
            self._recompute_expiry_bounds()
            return True
        if expires < self.min_expires:
            self.min_expires = expires
        if expires > self.max_expires:
            self.max_expires = expires
        return True

    def remove_entry(self, replica_id: str) -> bool:
        """Delete the entry for ``replica_id`` if present."""
        if self.entries.pop(replica_id, None) is None:
            return False
        self._recompute_expiry_bounds()
        return True

    # ------------------------------------------------------------------
    # Interest bookkeeping
    # ------------------------------------------------------------------

    def register_interest(self, neighbor: NodeId) -> None:
        """Set the neighbor's interest bit (it asked about this key)."""
        if neighbor not in self.interest:
            self.interest.add(neighbor)
            self._interest_sorted = None

    def clear_interest(self, neighbor: NodeId) -> bool:
        """Clear the neighbor's interest bit; True if it was set."""
        if neighbor in self.interest:
            self.interest.discard(neighbor)
            self._interest_sorted = None
            return True
        return False

    def clear_all_interest(self) -> None:
        """Drop every interest bit (standard caching after a response)."""
        if self.interest:
            self.interest.clear()
            self._interest_sorted = None

    def drop_departed_neighbors(self, alive: Set[NodeId]) -> None:
        """Patch the bit vector after churn (§2.9): keep only live nodes."""
        self.interest &= alive
        self.waiting &= alive
        self._interest_sorted = None

    def sorted_interest(self) -> tuple:
        """Interested neighbors in deterministic (str-keyed) fan-out order.

        Memoized: the ordering is recomputed only when the interest set
        changes, not once per forwarded update.  A length check guards
        against callers that mutate ``interest`` directly.
        """
        cached = self._interest_sorted
        if cached is not None and len(cached) == len(self.interest):
            return cached
        interest = self.interest
        if len(interest) <= 1:
            cached = tuple(interest)
        else:
            cached = tuple(sorted(interest, key=str))
        self._interest_sorted = cached
        return cached

    # ------------------------------------------------------------------
    # Justification accounting (§3.1)
    # ------------------------------------------------------------------

    def record_justification_window(self, deadline: float) -> None:
        """Remember that an update applied here must see a query by
        ``deadline`` to be justified."""
        if len(self.justification_deadlines) < self.MAX_JUSTIFICATION_WINDOWS:
            self.justification_deadlines.append(deadline)

    def settle_justification(self, now: float) -> tuple[int, int]:
        """Resolve pending windows against a query arriving at ``now``.

        Returns ``(justified, unjustified)``: windows still open at
        ``now`` are justified by this query; windows that closed before
        ``now`` went unjustified.
        """
        justified = 0
        unjustified = 0
        while self.justification_deadlines:
            deadline = self.justification_deadlines.popleft()
            if deadline >= now:
                justified += 1
            else:
                unjustified += 1
        return justified, unjustified

    def expire_justification(self, now: float) -> int:
        """Count (and drop) windows that closed before ``now`` unseen."""
        expired = 0
        while self.justification_deadlines and self.justification_deadlines[0] < now:
            self.justification_deadlines.popleft()
            expired += 1
        return expired

    # ------------------------------------------------------------------
    # Invariant support
    # ------------------------------------------------------------------

    def audit_consistency(self) -> List[str]:
        """Structural self-check; returns problem descriptions (or []).

        Consumed by the runtime invariant checker: these are properties
        of the data structure itself (indexing, counters, flag/waiter
        coupling), independent of protocol semantics and of the clock,
        and must hold at every simulation instant.
        """
        problems: List[str] = []
        for replica_id, entry in self.entries.items():
            if entry.replica_id != replica_id:
                problems.append(
                    f"key {self.key!r}: entry indexed under "
                    f"{replica_id!r} names replica {entry.replica_id!r}"
                )
            if entry.key != self.key:
                problems.append(
                    f"key {self.key!r}: cached entry belongs to key "
                    f"{entry.key!r}"
                )
        if self.local_waiters < 0:
            problems.append(
                f"key {self.key!r}: negative local waiter count "
                f"{self.local_waiters}"
            )
        # Note: ``waiting <= interest`` is deliberately NOT checked — a
        # cut-off can race an outstanding coalesced query (the child
        # clears its bit upstream while the parent still owes it a
        # response), and the parent's ``waiting`` entry legitimately
        # outlives the interest bit so the starved-response rescue in
        # node.py can still answer the querier.
        return problems

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def is_discardable(self, now: float) -> bool:
        """Whether the state carries no information worth keeping.

        True when every entry has expired and nothing is pending: no
        interested neighbor, no waiting local client, no outstanding
        upstream query.
        """
        return (
            not self.pending_first_update
            and not self.interest
            and not self.waiting
            and self.local_waiters == 0
            and not self.has_fresh(now)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KeyState({self.key!r}, entries={len(self.entries)}, "
            f"pfu={self.pending_first_update}, interest={len(self.interest)}, "
            f"pop={self.popularity})"
        )


class NodeCache:
    """All per-key CUP state held by one node.

    Thin dict wrapper; it exists so garbage collection, churn patching
    and statistics have one owner, and so the node logic reads naturally
    (``cache.get_or_create(key)``).
    """

    __slots__ = ("states",)

    def __init__(self) -> None:
        self.states: Dict[str, KeyState] = {}

    def get(self, key: str) -> Optional[KeyState]:
        return self.states.get(key)

    def get_or_create(self, key: str) -> KeyState:
        state = self.states.get(key)
        if state is None:
            state = KeyState(key)
            self.states[key] = state
        return state

    def discard(self, key: str) -> None:
        self.states.pop(key, None)

    def gc(self, now: float) -> int:
        """Drop expired entries and stateless keys; returns keys removed.

        Run periodically by long simulations to bound memory; correctness
        never depends on it because freshness is always checked at use.
        The sweep visits every node each tick — O(N·keys) per tick at
        network scale — so the purge and discard checks are inlined here
        rather than paying two method frames per key.  After the purge
        every surviving entry is fresh, so ``has_fresh`` reduces to
        ``bool(entries)`` and :meth:`KeyState.is_discardable` to the flag
        checks below.
        """
        removed = None
        inf = float("inf")
        for key, state in self.states.items():
            entries = state.entries
            if entries:
                if now < state.min_expires:
                    # Provably nothing to purge, and a state with fresh
                    # entries is never discardable: skip the scan.
                    continue
                stale = None
                min_expires = inf
                max_expires = -inf
                for rid, e in entries.items():
                    expires = e.timestamp + e.lifetime
                    if expires <= now:
                        if stale is None:
                            stale = [rid]
                        else:
                            stale.append(rid)
                    else:
                        if expires < min_expires:
                            min_expires = expires
                        if expires > max_expires:
                            max_expires = expires
                if stale is not None:
                    for rid in stale:
                        del entries[rid]
                state.min_expires = min_expires
                state.max_expires = max_expires
                if entries:
                    continue
            if not (
                state.pending_first_update
                or state.interest
                or state.waiting
                or state.local_waiters
            ):
                if removed is None:
                    removed = [key]
                else:
                    removed.append(key)
        if removed is None:
            return 0
        for key in removed:
            del self.states[key]
        return len(removed)

    def patch_interest_after_churn(self, alive: Set[NodeId]) -> None:
        """§2.9: drop departed neighbors from every interest bit vector."""
        for state in self.states.values():
            state.drop_departed_neighbors(alive)

    def audit_consistency(self) -> List[str]:
        """Structural problems across every key's state (see KeyState)."""
        problems: List[str] = []
        for key, state in self.states.items():
            if state.key != key:
                problems.append(
                    f"state for key {state.key!r} indexed under {key!r}"
                )
            problems.extend(state.audit_consistency())
        return problems

    def __iter__(self) -> Iterator[KeyState]:
        return iter(self.states.values())

    def __len__(self) -> int:
        return len(self.states)

    def __contains__(self, key: str) -> bool:
        return key in self.states
