"""Neighbor keep-alive exchange and failure detection (§2.1).

"Each node periodically exchanges keep-alive messages with its neighbors
to confirm their existence and to trigger recovery mechanisms should one
of the neighbors fail."

A :class:`KeepAliveMonitor` runs on each node: it sends a keep-alive to
every current overlay neighbor each period, treats *any* received
traffic as proof of life (keep-alives effectively piggyback on protocol
messages), and reports a neighbor as suspected once nothing has been
heard for ``miss_threshold`` periods.  The network layer acts on the
report by completing the failure: the overlay absorbs the dead node's
zone and interest bit vectors get patched (§2.9's ungraceful departure).

Until detection fires, the overlay still routes through the dead node —
queries sent to it are dropped by the transport and recovered later by
the Pending-First-Update timeout.  That window is the price of real
failure detection, and tests measure it.

Keep-alive traffic is control-plane: it has its own message kind, which
the metrics collector does not count toward the paper's hop costs (the
paper's cost model likewise excludes keep-alives, §2.3/§3.1).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional

from repro.sim.engine import Simulator
from repro.sim.network import Message, NodeId, Transport
from repro.sim.process import PeriodicProcess

NeighborsFn = Callable[[], Iterable[NodeId]]
SuspectFn = Callable[[NodeId, NodeId], None]


class KeepAliveMessage(Message):
    """One heartbeat.  Not counted by the cost model."""

    kind = "keepalive"
    __slots__ = ()


class KeepAliveMonitor:
    """One node's heartbeat loop and neighbor liveness table.

    Parameters
    ----------
    sim, transport:
        Substrate; heartbeats ride the normal transport (and are
        therefore subject to link delays and drops like any message).
    node_id:
        The owning node.
    neighbors_fn:
        Returns the node's *current* overlay neighbors (re-read every
        period, so churn is honored).
    period:
        Seconds between heartbeats.
    miss_threshold:
        Consecutive silent periods before a neighbor is suspected.
    on_suspect:
        Callback ``(reporter, suspect)`` invoked once per suspicion
        episode (re-armed if the suspect is heard again).
    """

    def __init__(
        self,
        sim: Simulator,
        transport: Transport,
        node_id: NodeId,
        neighbors_fn: NeighborsFn,
        period: float,
        miss_threshold: int,
        on_suspect: SuspectFn,
    ):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if miss_threshold < 1:
            raise ValueError(
                f"miss_threshold must be >= 1, got {miss_threshold}"
            )
        self._sim = sim
        self._transport = transport
        self.node_id = node_id
        self._neighbors_fn = neighbors_fn
        self.period = period
        self.miss_threshold = miss_threshold
        self._on_suspect = on_suspect
        self._last_heard: Dict[NodeId, float] = {}
        self._suspected: set = set()
        self._process: Optional[PeriodicProcess] = None
        self.beats_sent = 0
        self.suspicions_raised = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        if self._process is not None:
            return
        now = self._sim.now
        for neighbor in self._neighbors_fn():
            self._last_heard.setdefault(neighbor, now)
        self._process = PeriodicProcess(self._sim, self.period, self._tick)

    def stop(self) -> None:
        if self._process is not None:
            self._process.stop()
            self._process = None

    # ------------------------------------------------------------------
    # Liveness bookkeeping
    # ------------------------------------------------------------------

    def note_heard(self, sender: NodeId) -> None:
        """Any message from ``sender`` proves it alive."""
        self._last_heard[sender] = self._sim.now
        self._suspected.discard(sender)

    def _tick(self) -> None:
        now = self._sim.now
        deadline = self.period * self.miss_threshold
        current = set(self._neighbors_fn())
        # Forget ex-neighbors (churn rewired the overlay around them).
        for stale in [n for n in self._last_heard if n not in current]:
            del self._last_heard[stale]
            self._suspected.discard(stale)
        for neighbor in current:
            self._transport.send(self.node_id, neighbor, KeepAliveMessage())
            self.beats_sent += 1
            last = self._last_heard.setdefault(neighbor, now)
            if now - last > deadline and neighbor not in self._suspected:
                self._suspected.add(neighbor)
                self.suspicions_raised += 1
                self._on_suspect(self.node_id, neighbor)

    @property
    def suspected(self) -> set:
        return set(self._suspected)
