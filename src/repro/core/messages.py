"""CUP wire messages.

Three message families travel over the overlay transport:

* :class:`QueryMessage` — up the query channels, one hop at a time,
  toward the authority node.
* :class:`UpdateMessage` — down the update channels along reverse query
  paths.  Four types (§2.4): first-time updates (query responses),
  deletes, refreshes and appends.
* :class:`ClearBitMessage` — up one hop, telling the upstream neighbor to
  clear its interest bit for this node (§2.7).

A fourth family, :class:`ReplicaMessage`, is the off-overlay control
traffic from content replicas to authority nodes (birth, refresh,
deletion — §2.1); it is delivered directly and never counted as overlay
hops, matching the paper's cost model.
"""

from __future__ import annotations

import enum
from typing import Optional, Tuple

from repro.core.entry import IndexEntry
from repro.sim.network import Message, NodeId


class UpdateType(enum.IntEnum):
    """The four update categories of §2.4, ordered by push priority (§2.8).

    Lower value = higher priority when an update channel reorders its
    queue under limited capacity: first-time updates carry query
    responses, deletes prevent errors, refreshes prevent freshness
    misses, appends add capacity.
    """

    FIRST_TIME = 0
    DELETE = 1
    REFRESH = 2
    APPEND = 3


class QueryMessage(Message):
    """A search query for a key, forwarded hop-by-hop upstream.

    ``path`` is ``None`` under CUP: queries carry no return-address state
    because responses are routed by the interest bits (that is how CUP
    solves the open-connection problem).  Under the standard-caching
    baseline every query records the chain of nodes it traversed — the
    open connections — and its response retraces exactly that chain.
    """

    kind = "query"
    __slots__ = ("key", "path")

    def __init__(self, key: str, path: Optional[Tuple["NodeId", ...]] = None):
        super().__init__()
        self.key = key
        self.path = path

    def __repr__(self) -> str:
        return f"Query({self.key!r}, hops={self.hops})"


class UpdateMessage(Message):
    """An update for a key, pushed one hop downstream.

    Parameters
    ----------
    key:
        The key whose cached entries this update affects.
    update_type:
        One of :class:`UpdateType`.
    entries:
        The index entries carried: the full fresh set for first-time
        updates, the refreshed/appended entry for refreshes/appends, and
        the entry being removed for deletes (so downstream caches know
        which replica's entry to drop and what its remaining lifetime
        was — the justification window of §3.1).
    replica_id:
        The replica this update concerns, or ``None`` for first-time
        updates (which aggregate all fresh replicas).  The
        replica-independent cut-off fix of §3.6 keys off this field.
    issued_at:
        Simulation time the authority issued the update.
    route:
        ``None`` under CUP (responses fan out along interest bits).  For
        the standard-caching baseline, the remaining reverse chain of the
        query this response answers: each hop pops the last element,
        caches the carried entries (path caching), and forwards to it.
        An empty tuple means this node issued the query.
    """

    kind = "update"
    __slots__ = (
        "key", "update_type", "entries", "replica_id", "issued_at", "route",
        "expiry", "hop_seq",
    )

    def __init__(
        self,
        key: str,
        update_type: UpdateType,
        entries: Tuple[IndexEntry, ...],
        replica_id: Optional[str],
        issued_at: float,
        route: Optional[Tuple["NodeId", ...]] = None,
    ):
        super().__init__()
        self.key = key
        self.update_type = update_type
        self.entries = entries
        self.replica_id = replica_id
        self.issued_at = issued_at
        self.route = route
        # Per-(sender, key) hop sequence number, stamped by the sending
        # node's RecoveryManager just before transmission when running
        # over an unreliable transport; ``None`` on the reliable path.
        self.hop_seq = None
        # The payload (entries tuple) is immutable once issued, so its
        # latest expiration is a constant of the message family: computed
        # once here and carried by every fork, instead of re-reduced over
        # the entries on every hop and every queue reordering.
        if entries:
            self.expiry = max(e.expires_at for e in entries)
        else:
            self.expiry = 0.0

    def carried_expiry(self) -> float:
        """Latest expiration among carried entries (0.0 when empty).

        An update whose carried entries have all expired in flight is
        dropped on arrival (§2.6 case 3); channels also use this to
        discard queued updates that expired while waiting.
        """
        return self.expiry

    def is_expired(self, now: float) -> bool:
        """Whether every carried entry has expired by ``now``.

        Deletes never expire in this sense when they carry no entry
        payload; they are directives, not cacheable state.
        """
        return self.expiry <= now if self.entries else False

    def fork(self) -> "UpdateMessage":
        """A lightweight envelope for forwarding to one more neighbor.

        Messages accumulate per-link hop counts; forwarding the same
        object down several branches of the CUP tree would conflate their
        counters, so every branch gets its own envelope.  The payload —
        the entries tuple and every other field — is shared, not copied:
        a fan-out to k children allocates one payload and k envelopes.
        The slot-copy construction deliberately bypasses ``__init__`` so
        an envelope costs a single allocation, no call frames and no
        expiry re-reduction.
        """
        copy = UpdateMessage.__new__(UpdateMessage)
        copy.key = self.key
        copy.update_type = self.update_type
        copy.entries = self.entries
        copy.replica_id = self.replica_id
        copy.issued_at = self.issued_at
        copy.route = self.route
        copy.hop_seq = self.hop_seq
        copy.expiry = self.expiry
        copy.hops = self.hops
        return copy

    def __repr__(self) -> str:
        return (
            f"Update({self.update_type.name}, {self.key!r}, "
            f"{len(self.entries)} entries, hops={self.hops})"
        )


class ClearBitMessage(Message):
    """Tells the upstream neighbor: clear your interest bit for me (§2.7).

    The paper allows piggy-backing these on queries or updates but its
    overhead accounting assumes they travel separately (§3.3); we send
    them separately for the same slightly-inflated accounting.
    """

    kind = "clear_bit"
    __slots__ = ("key",)

    def __init__(self, key: str):
        super().__init__()
        self.key = key

    def __repr__(self) -> str:
        return f"ClearBit({self.key!r})"


class NackMessage(Message):
    """A child's re-request for update sequence numbers it never saw.

    Sent one hop upstream when the receiver's per-(parent, key) sequence
    watermark jumps (gap detection): ``missing`` lists the hop sequence
    numbers that should have arrived in between.  The parent answers by
    retransmitting whatever it still holds in its bounded send buffer;
    anything already evicted is unrecoverable over this link and the
    child eventually degrades to a pull (see
    :mod:`repro.core.recovery`).  NACKs travel the overlay and are
    charged hops like any control message, but they are themselves
    subject to loss — hence the sender-side retry timer with capped
    exponential backoff.
    """

    kind = "nack"
    __slots__ = ("key", "missing")

    def __init__(self, key: str, missing: Tuple[int, ...]):
        super().__init__()
        self.key = key
        self.missing = missing

    def __repr__(self) -> str:
        return f"Nack({self.key!r}, missing={self.missing})"


class ReplicaEvent(enum.Enum):
    """What a replica is telling its authority node (§2.1)."""

    BIRTH = "birth"
    REFRESH = "refresh"
    DEATH = "death"


class ReplicaMessage(Message):
    """Off-overlay control message from a replica to an authority node.

    Travels via :meth:`repro.sim.network.Transport.send_direct`: it is not
    overlay traffic, costs no overlay hops, and is invisible to the cost
    model — exactly as in the paper, where replica keep-alives are part of
    the indexing substrate rather than of CUP.
    """

    kind = "replica"
    __slots__ = ("event", "key", "replica_id", "address", "lifetime")

    def __init__(
        self,
        event: ReplicaEvent,
        key: str,
        replica_id: str,
        address: str,
        lifetime: float,
    ):
        super().__init__()
        self.event = event
        self.key = key
        self.replica_id = replica_id
        self.address = address
        self.lifetime = lifetime

    def __repr__(self) -> str:
        return f"Replica({self.event.value}, {self.key!r}, {self.replica_id!r})"
