"""CUP query trees (§2.10 and §3.1 of the paper).

For each key, the authority node that owns it is the root of a *CUP
tree*; the branches are the overlay paths queries take.  Two trees matter
to the cost model:

* the **Virtual Query Spanning Tree** ``V(A, K)`` — the tree obtained by
  issuing a query from *every* node, i.e. the union of all possible query
  paths.  Since overlay routing is deterministic, every node has exactly
  one parent (its next hop toward the authority), which makes the union a
  tree.
* the **Real Query Tree** ``R(A, K)`` — the subtree of ``V(A, K)``
  actually exercised by a given workload's querying nodes.

These structures drive the analytical cost model (aggregate subtree query
rates, justification probabilities) and several tests; the protocol
itself never materializes them — its per-key parent pointers *are* the
tree, distributed.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set

from repro.overlay.base import NodeId, Overlay


class QueryTree:
    """An explicit (parent, children) view of a CUP tree for one key."""

    def __init__(self, key: str, root: NodeId):
        self.key = key
        self.root = root
        self.parent: Dict[NodeId, Optional[NodeId]] = {root: None}
        self.children: Dict[NodeId, List[NodeId]] = {root: []}
        self.depth: Dict[NodeId, int] = {root: 0}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def virtual(cls, overlay: Overlay, key: str) -> "QueryTree":
        """Build ``V(A, K)``: the spanning tree over all current members."""
        return cls.real(overlay, key, overlay.node_ids())

    @classmethod
    def real(
        cls, overlay: Overlay, key: str, querying_nodes: Iterable[NodeId]
    ) -> "QueryTree":
        """Build ``R(A, K)``: the union of query paths from given nodes."""
        root = overlay.authority(key)
        tree = cls(key, root)
        for node in querying_nodes:
            tree._add_path(overlay.route(node, key))
        return tree

    def _add_path(self, path: List[NodeId]) -> None:
        """Merge one root-ward path (querying node first) into the tree."""
        # Walk from the authority end so parents are established before
        # children; stop early where the path joins the existing tree.
        for i in range(len(path) - 1, 0, -1):
            parent, child = path[i], path[i - 1]
            if child in self.parent:
                continue
            self.parent[child] = parent
            self.children[child] = []
            self.children.setdefault(parent, []).append(child)
            self.depth[child] = self.depth[parent] + 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def nodes(self) -> Set[NodeId]:
        return set(self.parent)

    def __len__(self) -> int:
        return len(self.parent)

    def __contains__(self, node: NodeId) -> bool:
        return node in self.parent

    def subtree(self, node: NodeId) -> Iterator[NodeId]:
        """All nodes of the subtree rooted at ``node`` (preorder).

        The justification window of an update pushed to ``node`` is
        satisfied by a query anywhere in the *virtual* subtree below it
        (§3.1): queries there would route through ``node``.
        """
        if node not in self.parent:
            raise KeyError(f"{node!r} is not in the tree for {self.key!r}")
        stack = [node]
        while stack:
            current = stack.pop()
            yield current
            stack.extend(self.children.get(current, ()))

    def path_to_root(self, node: NodeId) -> List[NodeId]:
        """The query path from ``node`` up to the authority, inclusive."""
        path = [node]
        current = node
        while True:
            parent = self.parent.get(current)
            if parent is None:
                if current != self.root:
                    raise KeyError(f"{node!r} is not in the tree")
                return path
            path.append(parent)
            current = parent

    def nodes_within(self, level: int) -> Set[NodeId]:
        """Nodes at depth <= ``level`` — the reach of a push level (§3.3)."""
        return {n for n, d in self.depth.items() if d <= level}

    def max_depth(self) -> int:
        """Eccentricity of the root: the deepest queried node."""
        return max(self.depth.values(), default=0)

    def aggregate_rate(self, node: NodeId, per_node_rate: Dict[NodeId, float]) -> float:
        """``Lambda`` of the subtree below ``node`` for the cost model."""
        return sum(per_node_rate.get(n, 0.0) for n in self.subtree(node))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QueryTree(key={self.key!r}, root={self.root!r}, "
            f"nodes={len(self.parent)}, depth={self.max_depth()})"
        )
