"""The CUP node state machine (§2.5 - §2.7 of the paper).

One :class:`CupNode` plays every role a peer plays:

* **querying node** — local clients post queries via
  :meth:`CupNode.post_local_query`;
* **intermediate node** — forwards queries upstream, caches index
  entries, answers from fresh cache, forwards updates to interested
  neighbors, and issues clear-bit messages per its cut-off policy;
* **authority node** — owns a slice of the global index
  (:class:`~repro.replicas.authority.AuthorityIndex`), absorbs replica
  control traffic, and originates the update streams that flow down the
  CUP trees.

Standard caching — the paper's baseline — is this same state machine with
``persistent_interest=False``: interest bits are dropped as soon as the
first-time response is delivered, so no maintenance update ever
propagates and no clear-bit is ever needed.  That matches the paper's
observation that a push level of zero *is* standard caching.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.cache import KeyState, NodeCache
from repro.core.channels import CapacityConfig, OutgoingUpdateChannels
from repro.core.messages import (
    ClearBitMessage,
    QueryMessage,
    ReplicaMessage,
    UpdateMessage,
    UpdateType,
)
from repro.core.policies import CutoffPolicy
from repro.core.recovery import RecoveryConfig, RecoveryManager
from repro.metrics.collector import MetricsCollector
from repro.overlay.base import NodeId, Overlay
from repro.replicas.authority import AuthorityIndex
from repro.sim.engine import Simulator
from repro.sim.network import Message, Transport


class CupNode:
    """One peer: query handling, cache maintenance, authority duties.

    Parameters
    ----------
    node_id, sim, transport, overlay:
        Identity and substrate.
    policy:
        The cut-off policy (§3.4) shared by all nodes of a run.
    metrics:
        Run-wide counter collector.
    persistent_interest:
        ``True`` for CUP (interest bits persist until cut off);
        ``False`` for the standard-caching baseline (bits drop after
        each response, so updates never propagate).
    coalesce:
        ``True`` for CUP: query bursts for a key collapse into one
        upstream query (the Pending-First-Update mechanism) and the
        response fans out along interest bits.  ``False`` for the
        standard-caching baseline: every query is forwarded
        individually, carries the chain of nodes it traversed (its open
        connections), and its response retraces that chain hop by hop —
        the per-query connection model §4 contrasts CUP against.
    replica_independent_cutoff:
        §3.6: when ``True``, cut-off decisions trigger only on updates
        for the key's *designated* replica, making the decision
        independent of how many replicas feed updates; when ``False``
        the naive variant evaluates on every update arrival.
    capacity:
        Outgoing update channel capacity (§2.8), replaceable at runtime.
    rng:
        Random stream for fractional-capacity coin flips.
    pfu_timeout:
        Seconds after which an unanswered Pending-First-Update flag stops
        coalescing and the next query re-pushes upstream.  Recovers from
        responses lost to departed nodes.
    track_justification:
        Record per-update justification windows (§3.1 accounting).
    refresh_aggregation_window:
        §3.6 overhead-reduction technique: when set, the authority
        buffers replica refreshes for a key and, after this many seconds,
        propagates them batched as a single update.  Trades a bounded
        staleness window for update traffic.
    refresh_sample_fraction:
        §3.6's other technique: the authority propagates only this
        fraction of replica refreshes (suppressed ones still update the
        local directory, so correctness is unaffected — downstream
        caches just see fewer, staggered refreshes).
    """

    __slots__ = (
        "node_id", "_sim", "_transport", "_overlay", "policy", "metrics",
        "persistent_interest", "coalesce", "replica_independent_cutoff",
        "pfu_timeout", "track_justification", "cache", "authority_index",
        "channels", "refresh_aggregation_window", "refresh_sample_fraction",
        "_aggregation_buffers", "_sample_rng", "keepalive_monitor",
        "invariant_probe", "batched_fanout", "_forward_always", "recovery",
    )

    def __init__(
        self,
        node_id: NodeId,
        sim: Simulator,
        transport: Transport,
        overlay: Overlay,
        policy: CutoffPolicy,
        metrics: MetricsCollector,
        persistent_interest: bool = True,
        coalesce: bool = True,
        replica_independent_cutoff: bool = True,
        capacity: Optional[CapacityConfig] = None,
        rng: Optional[np.random.Generator] = None,
        pfu_timeout: float = 30.0,
        track_justification: bool = True,
        refresh_aggregation_window: Optional[float] = None,
        refresh_sample_fraction: float = 1.0,
        channel_priorities: Optional[dict] = None,
        batched_fanout: bool = True,
        recovery_config: Optional[RecoveryConfig] = None,
    ):
        if refresh_aggregation_window is not None and refresh_aggregation_window <= 0:
            raise ValueError(
                "refresh_aggregation_window must be positive or None"
            )
        if not 0.0 < refresh_sample_fraction <= 1.0:
            raise ValueError(
                "refresh_sample_fraction must be in (0, 1]"
            )
        self.node_id = node_id
        self._sim = sim
        self._transport = transport
        self._overlay = overlay
        self.policy = policy
        # Policies that inherit the base may_forward (always True — every
        # cut-off family except explicit push-level caps) let the fan-out
        # skip two method calls per forwarded update.
        self._forward_always = (
            type(policy).may_forward is CutoffPolicy.may_forward
        )
        self.metrics = metrics
        self.persistent_interest = persistent_interest
        self.coalesce = coalesce
        self.replica_independent_cutoff = replica_independent_cutoff
        self.pfu_timeout = pfu_timeout
        self.track_justification = track_justification
        self.cache = NodeCache()
        self.authority_index = AuthorityIndex()
        self.channels = OutgoingUpdateChannels(
            sim, self._transmit_update, capacity=capacity, rng=rng,
            priorities=channel_priorities,
        )
        self.refresh_aggregation_window = refresh_aggregation_window
        self.refresh_sample_fraction = refresh_sample_fraction
        self._aggregation_buffers: dict = {}
        self._sample_rng = rng
        # Batched fan-out (one shared payload + k envelopes through one
        # transport call) vs the per-child reference path.  Both produce
        # byte-identical metrics and cache state — the flag exists so
        # the equivalence property tests can referee one against the
        # other, and as an escape hatch while diagnosing.
        self.batched_fanout = batched_fanout
        # Unreliable-transport survival layer: None on the default
        # reliable path (zero hot-path cost beyond one None test).  With
        # recovery on, updates must be stamped with per-neighbor
        # sequence numbers at transmit time, which the grouped fan-out
        # cannot do — force the per-child reference path.
        if recovery_config is not None:
            self.recovery = RecoveryManager(
                sim, transport, node_id, metrics, recovery_config,
                self._recover_by_pull,
            )
            self.batched_fanout = False
        else:
            self.recovery = None
        # Attached by CupNetwork.enable_keepalive(); None otherwise.
        self.keepalive_monitor = None
        # Attached by CupNetwork.attach_invariants(); None otherwise.
        # The hot paths pay one attribute load + None test per probe
        # site, so leaving invariants off costs essentially nothing.
        self.invariant_probe = None

    # ------------------------------------------------------------------
    # Transport entry point
    # ------------------------------------------------------------------

    def receive(self, message: Message, sender: NodeId) -> None:
        """Dispatch one delivered message (transport handler).

        Updates are tested first: they dominate every CUP workload (the
        maintenance stream fans out along the whole subscription tree
        while queries stop at the first fresh cache).
        """
        kind = message.kind
        if self.keepalive_monitor is not None and sender is not None:
            # Any traffic proves the sender alive (§2.1 keep-alives
            # effectively piggyback on protocol messages).
            self.keepalive_monitor.note_heard(sender)
        if kind == "update":
            self._handle_update(message, sender)
        elif kind == "query":
            self._handle_query(message, sender)
        elif kind == "clear_bit":
            self._handle_clear_bit(message, sender)
        elif kind == "keepalive":
            return
        elif kind == "nack":
            if self.recovery is not None:
                self.recovery.handle_nack(message, sender)
        elif kind == "replica":
            self._handle_replica(message)
        else:  # pragma: no cover - guards future message kinds
            raise ValueError(f"unhandled message kind: {kind!r}")

    # ------------------------------------------------------------------
    # Queries (§2.5)
    # ------------------------------------------------------------------

    def post_local_query(self, key: str) -> bool:
        """A local client asks for ``key``; returns True on immediate hit.

        A miss leaves an open local connection that the eventual
        first-time update answers (the paper's asynchronous response
        path); the posting itself never blocks.
        """
        metrics = self.metrics
        metrics.queries_posted += 1
        answered = self._process_query(key, from_neighbor=None)
        if answered:
            metrics.local_hits += 1
        if self.invariant_probe is not None:
            self.invariant_probe.query_posted(self.node_id, key, answered)
        return answered

    def _handle_query(self, message: QueryMessage, sender: NodeId) -> None:
        self.metrics.neighbor_queries += 1
        self._process_query(
            message.key, from_neighbor=sender, path=message.path
        )

    def _process_query(
        self,
        key: str,
        from_neighbor: Optional[NodeId],
        path: Optional[tuple] = None,
    ) -> bool:
        """Common query path; returns True when answered immediately.

        ``path`` is the open-connection chain carried by standard-caching
        queries (``None`` under CUP).
        """
        now = self._sim.now
        state = self.cache.get_or_create(key)
        # "In each of the cases, the node updates its popularity measure
        # for K" (§2.5) — queries from neighbors and local clients alike.
        state.popularity += 1
        if self.track_justification and state.justification_deadlines:
            justified, unjustified = state.settle_justification(now)
            self.metrics.justified_updates += justified
            self.metrics.unjustified_updates += unjustified

        # Hit paths materialize the answering entries only when a
        # neighbor needs them on the wire; a local hit — the overwhelming
        # majority of queries in a warm network — answers without
        # building the entry tuple at all.
        if self._is_authority(key, state):
            self.metrics.authority_answers += 1
            if from_neighbor is not None:
                entries = tuple(self.authority_index.fresh_entries(key, now))
                self._answer_query(state, entries, from_neighbor, path, now)
            return True
        if state.has_fresh(now):
            # Case 1: fresh entries cached — answer from here.
            self.metrics.cache_answers += 1
            if from_neighbor is not None:
                entries = tuple(state.fresh_entries(now))
                self._answer_query(state, entries, from_neighbor, path, now)
            return True

        # A miss: classify (first-time vs freshness) at the posting node.
        if from_neighbor is None:
            self.metrics.misses += 1
            if state.entries:
                self.metrics.freshness_misses += 1
            else:
                self.metrics.first_time_misses += 1
            if state.local_waiters == 0:
                state.pending_since = now
            state.local_waiters += 1

        if not self.coalesce:
            # Standard caching: every query travels on its own open
            # connection — forward it regardless of what is in flight.
            self._push_query_upstream(key, state, self._extend_path(path))
            return False

        if from_neighbor is not None:
            state.register_interest(from_neighbor)
            state.waiting.add(from_neighbor)
        if state.pending_first_update:
            if now - state.pending_since <= self.pfu_timeout:
                # Cases 2/3 with the flag already set: coalesce.
                self.metrics.coalesced_queries += 1
                return False
            # The outstanding query evidently died with a departed node;
            # fall through and push a fresh one.
        state.pending_first_update = True
        state.pending_since = now
        state.clear_bit_sent = False
        self._push_query_upstream(key, state, None)
        return False

    def _answer_query(
        self,
        state: KeyState,
        entries: tuple,
        from_neighbor: NodeId,
        path: Optional[tuple],
        now: float,
    ) -> None:
        """Send a first-time update answering one neighbor's query."""
        key = state.key
        if self.coalesce:
            state.register_interest(from_neighbor)
            response = UpdateMessage(key, UpdateType.FIRST_TIME, entries, None, now)
            self._push_updates((from_neighbor,), response)
            if not self.persistent_interest:
                state.clear_interest(from_neighbor)
        else:
            # The response retraces the query's open-connection chain;
            # ``path`` ends at the neighbor that just forwarded to us.
            route = path if path is not None else ()
            if route and route[-1] == from_neighbor:
                route = route[:-1]
            response = UpdateMessage(
                key, UpdateType.FIRST_TIME, entries, None, now, route=route
            )
            self._transport.send(self.node_id, from_neighbor, response)

    def _extend_path(self, path: Optional[tuple]) -> tuple:
        return (*(path or ()), self.node_id)

    def _push_query_upstream(
        self, key: str, state: KeyState, path: Optional[tuple]
    ) -> None:
        parent = self._parent(key, state)
        self.metrics.queries_forwarded += 1
        self._transport.send(self.node_id, parent, QueryMessage(key, path=path))

    # ------------------------------------------------------------------
    # Updates (§2.6)
    # ------------------------------------------------------------------

    def _handle_update(self, update: UpdateMessage, sender: NodeId) -> None:
        now = self._sim.now
        probe = self.invariant_probe
        if probe is not None:
            probe.update_delivered(self.node_id, update, sender)
        metrics = self.metrics
        # Unreliable transport: account the hop sequence before anything
        # can drop the message (even an expired update advances the
        # watermark — its loss must not look like a gap), and suppress
        # duplicates before they touch the cache or cut-off logic.
        recovery = self.recovery
        if (
            recovery is not None
            and update.hop_seq is not None
            and update.route is None
            and not recovery.note_received(sender, update.key, update.hop_seq)
        ):
            return
        # Case 3: the update expired in flight — drop silently.
        if update.entries and update.expiry <= now:
            metrics.updates_dropped_expired += 1
            return
        key = update.key
        states = self.cache.states
        state = states.get(key)
        if state is None:
            state = states[key] = KeyState(key)
        update_type = update.update_type

        if update.route is not None:
            self._relay_open_connection_response(state, update)
            return

        if update_type == UpdateType.FIRST_TIME:
            self._accept_response(state, update, sender)
            return

        # Maintenance update: apply to the cache first.
        if update_type == UpdateType.DELETE:
            for entry in update.entries:
                if state.remove_entry(entry.replica_id) and probe is not None:
                    probe.entry_removed(self.node_id, key, entry.replica_id)
        else:
            carried = update.entries
            if len(carried) == 1:
                # Single-entry refresh/append — the overwhelmingly common
                # maintenance payload — applied inline.  This block is
                # KeyState.apply_entry verbatim (sequence guard + expiry
                # bound maintenance); a semantic change there MUST be
                # mirrored here, or single- and multi-entry updates
                # diverge in cache state.
                entry = carried[0]
                cached = state.entries
                current = cached.get(entry.replica_id)
                if current is None or current.sequence < entry.sequence:
                    cached[entry.replica_id] = entry
                    expires = entry.timestamp + entry.lifetime
                    if (
                        current is not None
                        and expires < current.timestamp + current.lifetime
                    ):
                        # Shrinking replacement (theoretical): re-derive
                        # the expiry bounds, as KeyState.apply_entry.
                        state._recompute_expiry_bounds()
                    else:
                        if expires < state.min_expires:
                            state.min_expires = expires
                        if expires > state.max_expires:
                            state.max_expires = expires
                    if probe is not None:
                        probe.entry_applied(self.node_id, key, entry)
                else:
                    # A stale or duplicate update (older sequence than
                    # cached): it must not re-trigger cut-off logic or be
                    # re-forwarded, or reordered deliveries would echo
                    # through the tree.
                    metrics.updates_stale_discarded += 1
                    return
            else:
                applied = False
                for entry in carried:
                    if state.apply_entry(entry):
                        applied = True
                        if probe is not None:
                            probe.entry_applied(self.node_id, key, entry)
                if not applied:
                    metrics.updates_stale_discarded += 1
                    return

        if self.track_justification:
            deadlines = state.justification_deadlines
            if deadlines and deadlines[0] < now:
                metrics.unjustified_updates += state.expire_justification(now)
            if len(deadlines) < state.MAX_JUSTIFICATION_WINDOWS:
                deadlines.append(update.expiry)

        # Cut-off trigger decision (one evaluation per maintenance
        # update): the naive variant triggers on every update, the
        # replica-independent fix (§3.6) only on updates for the key's
        # designated replica — so the decision rate does not scale with
        # the replica count.
        if not self.replica_independent_cutoff:
            triggering = True
        else:
            replica_id = update.replica_id
            if replica_id is None:
                triggering = True
            else:
                designated = state.designated_replica
                if designated is None:
                    state.designated_replica = replica_id
                    triggering = True
                else:
                    triggering = replica_id == designated
        if triggering:
            self.policy.observe_update(state)

        delivered: tuple = ()
        interest = state.interest
        if interest:
            # Receiving on behalf of interested neighbors: apply and push
            # (§2.6 case 2, "popularity high or some interest bits set").
            # The no-gate batched case — an ungated policy at full
            # capacity, i.e. virtually every hop of a healthy run — is
            # inlined; anything that can gate, suppress or queue takes
            # the general path.
            channels = self.channels
            if (
                self._forward_always
                and channels.unlimited
                and self.batched_fanout
            ):
                targets = state._interest_sorted
                if targets is None or len(targets) != len(interest):
                    targets = state.sorted_interest()
                if sender is not None and sender in interest:
                    targets = tuple(t for t in targets if t != sender)
                if targets:
                    self._transport.send_fanout(self.node_id, targets, update)
                    channels.forwarded += len(targets)
                    delivered = targets
            else:
                delivered = self._forward_to_interested(
                    state, update, exclude=sender
                )
        elif triggering and not self._is_authority(key, state):
            distance = self._distance_for_policy(key, state)
            if not self.policy.should_keep_receiving(state, distance):
                self._send_clear_bit(key, state, toward=sender)

        # A maintenance update can double as the awaited response: if it
        # leaves us with fresh entries while the PFU flag is set, the
        # pending query is effectively answered.  Waiting neighbors the
        # interest-forward did not reach (push-level gate, capacity
        # suppression) get an ungated first-time response instead —
        # responses always flow, whatever the maintenance plane does.
        if state.pending_first_update and state.has_fresh(now):
            state.pending_first_update = False
            if recovery is not None:
                # A maintenance update doubling as the response also
                # satisfies a degraded pull for this key.
                recovery.note_refreshed(key)
            self._answer_local_waiters(state)
            starved = state.waiting.difference(delivered)
            starved.discard(sender)
            if starved:
                response = UpdateMessage(
                    key, UpdateType.FIRST_TIME,
                    tuple(state.fresh_entries(now)), None, now,
                )
                self._push_updates(
                    tuple(sorted(starved, key=str)), response
                )
            state.waiting.clear()

        if triggering:
            # Popularity counts queries between consecutive (triggering)
            # updates; the interval closes here.
            state.popularity = 0

    def _relay_open_connection_response(
        self, state: KeyState, update: UpdateMessage
    ) -> None:
        """Standard caching: a response retracing its query's connections.

        Every hop caches the carried entries (path caching with
        expiration times — the baseline the paper compares against) and
        forwards to the next node of the recorded chain; the final node
        is the query's poster.
        """
        probe = self.invariant_probe
        for entry in update.entries:
            if state.apply_entry(entry) and probe is not None:
                probe.entry_applied(self.node_id, state.key, entry)
        if self.track_justification:
            self.metrics.justified_updates += 1
        if update.route:
            forwarded = update.fork()
            forwarded.route = update.route[:-1]
            self._transport.send(self.node_id, update.route[-1], forwarded)
        else:
            self._answer_local_waiters(state)

    def _accept_response(
        self, state: KeyState, update: UpdateMessage, sender: NodeId
    ) -> None:
        """A first-time update: the asynchronous answer to pushed queries.

        The response fans out to the neighbors whose queries were
        coalesced behind the Pending-First-Update flag — not to every
        subscriber: long-subscribed neighbors that asked nothing are
        served by the maintenance stream, and broadcasting responses to
        them would double-charge the miss path.
        """
        probe = self.invariant_probe
        for entry in update.entries:
            if state.apply_entry(entry) and probe is not None:
                probe.entry_applied(self.node_id, state.key, entry)
        if self.track_justification:
            # First-time updates are always justified (§3.1): they carry
            # a response toward the node that issued the query.
            self.metrics.justified_updates += 1
        state.pending_first_update = False
        if self.recovery is not None and update.entries:
            # The degraded pull is answered: the key re-earns full
            # convergence scrutiny.
            self.recovery.note_refreshed(state.key)
        if state.designated_replica is None and update.entries:
            # Designate the cut-off trigger replica (§3.6) from the first
            # response; min() keeps the choice order-independent.
            state.designated_replica = min(
                e.replica_id for e in update.entries
            )
        self._answer_local_waiters(state)
        if state.waiting:
            self._push_updates(
                tuple(
                    neighbor
                    for neighbor in sorted(state.waiting, key=str)
                    if neighbor != sender
                ),
                update,
            )
            state.waiting.clear()
        if not self.persistent_interest:
            state.clear_all_interest()
            return
        # A response is an update arrival: the popularity interval
        # ("queries since the last update", §2.3) closes here, and the
        # cut-off policy gets its look — an aggressive policy (e.g.
        # linear with a high alpha·D threshold) may cut off right after
        # being answered, which is exactly the behaviour §3.4 measures.
        self.policy.observe_update(state)
        if not state.interest and not self._is_authority(state.key, state):
            distance = self._distance_for_policy(state.key, state)
            if not self.policy.should_keep_receiving(state, distance):
                self._send_clear_bit(state.key, state, toward=sender)
        state.popularity = 0

    def _answer_local_waiters(self, state: KeyState) -> None:
        if state.local_waiters:
            self.metrics.answers_delivered += state.local_waiters
            self.metrics.answer_delay_total += (
                self._sim.now - state.pending_since
            ) * state.local_waiters
            self.metrics.answer_delay_count += state.local_waiters
            if self.invariant_probe is not None:
                self.invariant_probe.waiters_answered(
                    self.node_id, state.key, state.local_waiters
                )
            state.local_waiters = 0

    # ------------------------------------------------------------------
    # Forwarding and control flow downstream
    # ------------------------------------------------------------------

    def _forward_to_interested(
        self,
        state: KeyState,
        update: UpdateMessage,
        exclude: Optional[NodeId] = None,
    ) -> tuple:
        """Push an update to every interested neighbor.

        Returns the neighbors the update actually went to (a tuple in
        deterministic fan-out order); a push-level gate or capacity
        suppression removes targets from it (callers use this to rescue
        waiting queriers with an ungated first-time response).

        At full capacity the fan-out is batched: one shared immutable
        payload travels to all k children as k lightweight envelopes
        through a single transport call.  Under a fraction/rate
        constraint — or with ``batched_fanout`` off — the per-child
        reference path forks and offers one update per neighbor, in the
        same deterministic order (so capacity coin flips consume the
        random stream identically).
        """
        interest = state.interest
        if not interest:
            return ()
        # Memoized deterministic fan-out order (inlined sorted_interest
        # read: this runs once per forwarded update).
        targets = state._interest_sorted
        if targets is None or len(targets) != len(interest):
            targets = state.sorted_interest()
        # The push-level gate (§3.3) caps *propagation* — maintenance
        # updates only.  First-time updates are query responses; blocking
        # them would break query resolution itself (a push level of 0
        # must degrade to standard caching, not to silence).
        if not self._forward_always and update.update_type != UpdateType.FIRST_TIME and not self.policy.may_forward(
            self._distance_for_forwarding(state)
        ):
            self.metrics.updates_suppressed += len(
                [t for t in targets if t != exclude]
            )
            return ()
        if exclude is not None and exclude in interest:
            targets = tuple(t for t in targets if t != exclude)
        delivered = self._push_updates(targets, update)
        suppressed = len(targets) - len(delivered)
        if suppressed:
            self.metrics.updates_suppressed += suppressed
        return delivered

    def _push_updates(self, targets: tuple, update: UpdateMessage) -> tuple:
        """Offer one update to many neighbors; returns those it reached.

        The batched fast path applies when nothing can suppress or
        reorder the sends (full capacity, no rate pump): the transport
        fans the shared payload out in one call.  Otherwise each
        neighbor gets its own channel offer, preserving per-child coin
        flip order and queue accounting.
        """
        if not targets:
            return ()
        channels = self.channels
        if self.batched_fanout and channels.unlimited:
            self._transport.send_fanout(self.node_id, targets, update)
            channels.forwarded += len(targets)
            return targets
        delivered = []
        push = channels.push
        for neighbor in targets:
            if push(neighbor, update.fork()):
                delivered.append(neighbor)
        return tuple(delivered)

    def _transmit_update(self, neighbor: NodeId, update: UpdateMessage) -> None:
        """Channel drain callback: put one update on the wire."""
        recovery = self.recovery
        if recovery is not None and update.route is None:
            recovery.stamp(neighbor, update)
        self._transport.send(self.node_id, neighbor, update)

    def _recover_by_pull(self, key: str) -> None:
        """Degraded read: refill the cache through the query path.

        Invoked by the recovery manager after retry exhaustion or an
        upstream departure.  Re-issuing a query upstream re-grafts this
        node's interest along the chain (every forwarding hop sets its
        bit), so the subscription tree self-heals and the eventual
        first-time response replaces whatever updates were lost.
        """
        if not self._transport.is_registered(self.node_id):
            # The owner itself departed/crashed with a retry timer still
            # armed; there is nobody to pull for.
            return
        state = self.cache.get_or_create(key)
        if self._is_authority(key, state):
            return
        now = self._sim.now
        if (
            state.pending_first_update
            and now - state.pending_since <= self.pfu_timeout
        ):
            # A pull is already in flight; its response covers this gap.
            return
        state.pending_first_update = True
        state.pending_since = now
        state.clear_bit_sent = False
        self._push_query_upstream(key, state, None)

    def _send_clear_bit(
        self, key: str, state: KeyState, toward: Optional[NodeId]
    ) -> None:
        """Cut off the incoming update supply for ``key`` (§2.7)."""
        if state.clear_bit_sent:
            return
        target = toward if toward is not None else self._parent(key, state)
        if target is None:
            return
        state.clear_bit_sent = True
        self.metrics.clear_bits_sent += 1
        self._transport.send(self.node_id, target, ClearBitMessage(key))

    def _handle_clear_bit(self, message: ClearBitMessage, sender: NodeId) -> None:
        state = self.cache.get(message.key)
        if state is None:
            return
        state.clear_interest(sender)
        if state.interest or state.pending_first_update:
            return
        if self._is_authority(message.key, state):
            return
        # "If the node's popularity measure for K is low and all of its
        # interest bits are clear, the node also pushes a Clear-Bit" —
        # the cascade toward the authority (§2.7).
        distance = self._distance_for_policy(message.key, state)
        if not self.policy.should_keep_receiving(state, distance):
            self._send_clear_bit(message.key, state, toward=None)

    # ------------------------------------------------------------------
    # Authority duties
    # ------------------------------------------------------------------

    def _handle_replica(self, message: ReplicaMessage) -> None:
        now = self._sim.now
        metrics = self.metrics
        event = message.event.value
        if event == "birth":
            metrics.replica_births += 1
        elif event == "refresh":
            metrics.replica_refreshes += 1
        else:
            metrics.replica_deaths += 1
        update = self.authority_index.apply_replica_message(message, now)
        if update is None:
            return
        if update.update_type == UpdateType.REFRESH:
            # §3.6 overhead-reduction techniques (refreshes only —
            # deletes prevent errors and appends add capacity, so they
            # always propagate promptly).
            if self.refresh_sample_fraction < 1.0:
                if self._sample_rng is None:
                    raise RuntimeError(
                        "refresh sampling requires an rng; pass one at "
                        "construction"
                    )
                if self._sample_rng.random() >= self.refresh_sample_fraction:
                    self.metrics.updates_suppressed += 1
                    return
            if self.refresh_aggregation_window is not None:
                self._buffer_refresh(update)
                return
        state = self.cache.get_or_create(message.key)
        self._forward_to_interested(state, update)

    def _buffer_refresh(self, update: UpdateMessage) -> None:
        """Hold a refresh; flush the key's batch when the window closes.

        "When a refresh arrives for one replica, the authority node
        waits a threshold amount of time for other updates for the same
        key to arrive.  It then batches all updates that arrive within
        that time and propagates them together as one update." (§3.6)
        """
        buffer = self._aggregation_buffers.get(update.key)
        if buffer is not None:
            buffer.append(update)
            return
        self._aggregation_buffers[update.key] = [update]
        self._sim.schedule(
            self.refresh_aggregation_window, self._flush_refresh_buffer,
            update.key,
        )

    def _flush_refresh_buffer(self, key: str) -> None:
        buffered = self._aggregation_buffers.pop(key, None)
        if not buffered:
            return
        now = self._sim.now
        # Latest version per replica; drop anything that expired while
        # buffered (possible only with windows near the entry lifetime).
        latest: dict = {}
        for update in buffered:
            for entry in update.entries:
                current = latest.get(entry.replica_id)
                if current is None or current.sequence < entry.sequence:
                    latest[entry.replica_id] = entry
        entries = tuple(
            e for e in latest.values() if e.is_fresh(now)
        )
        if not entries:
            return
        batched = UpdateMessage(
            key=key,
            update_type=UpdateType.REFRESH,
            entries=entries,
            replica_id=min(e.replica_id for e in entries),
            issued_at=now,
        )
        state = self.cache.get_or_create(key)
        self._forward_to_interested(state, batched)

    def sweep_local_index(self) -> int:
        """Failure detection: purge entries of silent replicas (§2.4).

        Returns the number of entries deleted; each deletion propagates
        to interested neighbors like any other delete.
        """
        deletes = self.authority_index.sweep_expired(self._sim.now)
        for update in deletes:
            self.metrics.failure_detections += 1
            state = self.cache.get_or_create(update.key)
            self._forward_to_interested(state, update)
        return len(deletes)

    # ------------------------------------------------------------------
    # Routing helpers (epoch-cached)
    # ------------------------------------------------------------------

    def _is_authority(self, key: str, state: KeyState) -> bool:
        """Epoch-cached "am I the authority for this key?".

        Cached on the KeyState itself (not a single per-node slot), so a
        multi-key workload never thrashes the memo; hot-path lookups
        after the first per epoch are two attribute reads.
        """
        epoch = getattr(self._overlay, "epoch", 0)
        if state.authority_epoch != epoch:
            state.is_authority_here = self._overlay.authority(key) == self.node_id
            state.authority_epoch = epoch
        return state.is_authority_here

    def _parent(self, key: str, state: KeyState) -> Optional[NodeId]:
        epoch = getattr(self._overlay, "epoch", 0)
        if state.parent_epoch != epoch:
            state.parent = self._overlay.next_hop(self.node_id, key)
            state.parent_epoch = epoch
        return state.parent

    def _distance_for_policy(self, key: str, state: KeyState) -> int:
        if not self.policy.needs_distance:
            return 0
        return self._distance(key, state)

    def _distance_for_forwarding(self, state: KeyState) -> int:
        if not self.policy.needs_distance:
            return 0
        return self._distance(state.key, state)

    def _distance(self, key: str, state: KeyState) -> int:
        epoch = getattr(self._overlay, "epoch", 0)
        if state.distance_epoch != epoch:
            state.distance = self._overlay.distance(self.node_id, key)
            state.distance_epoch = epoch
        return state.distance

    # ------------------------------------------------------------------
    # Maintenance / churn support
    # ------------------------------------------------------------------

    def set_capacity(self, capacity: CapacityConfig) -> None:
        """Change outgoing update capacity at runtime (§3.7 faults)."""
        self.channels.set_capacity(capacity)

    def gc(self) -> int:
        """Purge expired cache state; returns discarded key count."""
        return self.cache.gc(self._sim.now)

    def patch_after_churn(self, alive: set) -> None:
        """§2.9: drop departed neighbors from interest vectors."""
        self.cache.patch_interest_after_churn(alive)
        if self.recovery is not None:
            self.recovery.prune_peers(alive)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CupNode({self.node_id!r}, cached_keys={len(self.cache)}, "
            f"owned_keys={sum(1 for _ in self.authority_index.keys())})"
        )
