"""The CUP protocol — the paper's primary contribution.

Controlled Update Propagation (CUP) maintains caches of index entries at
the intermediate nodes of a structured peer-to-peer overlay.  Queries for
a key travel *up* query channels toward the key's authority node; updates
(query responses, refreshes, deletes, appends) travel *down* update
channels along the reverse query paths.  Light per-node bookkeeping — a
Pending-First-Update flag and an interest bit vector per key — coalesces
query bursts and confines update propagation to nodes that want it, and
incentive-based cut-off policies decide when a node stops receiving
updates for a key.

Modules
-------
``entry``
    Index entries: (key, value) pairs with lifetimes and timestamps.
``messages``
    Queries, the four update types, clear-bit control messages.
``cache``
    Per-key node state: cached entries, PFU flag, interest bits,
    popularity bookkeeping.
``policies``
    Cut-off policies: all-out/push-level, linear, logarithmic, log-based,
    second-chance (§3.4).
``channels``
    Outgoing update channels with adaptive capacity control (§2.8).
``node``
    The CUP node state machine (§2.5-2.7) and authority behaviour.
``protocol``
    Network assembly: configuration, wiring of overlay + replicas +
    workload + metrics, churn operations (§2.9).
``trees``
    Virtual/real query tree construction (§3.1).
``costmodel``
    The analytical cost model: justification probabilities, break-even
    analysis (§3.1).
"""

from repro.core.cache import KeyState, NodeCache
from repro.core.channels import CapacityConfig, OutgoingUpdateChannels
from repro.core.costmodel import (
    break_even_justified_fraction,
    justification_probability,
    standard_caching_miss_cost,
)
from repro.core.entry import IndexEntry
from repro.core.messages import (
    ClearBitMessage,
    QueryMessage,
    ReplicaEvent,
    ReplicaMessage,
    UpdateMessage,
    UpdateType,
)
from repro.core.node import CupNode
from repro.core.policies import (
    AllOutPolicy,
    CutoffPolicy,
    LinearPolicy,
    LogarithmicPolicy,
    LogBasedPolicy,
    SecondChancePolicy,
    make_policy,
)
from repro.core.protocol import CupConfig, CupNetwork
from repro.core.trees import QueryTree

__all__ = [
    "AllOutPolicy",
    "CapacityConfig",
    "ClearBitMessage",
    "CupConfig",
    "CupNetwork",
    "CupNode",
    "CutoffPolicy",
    "IndexEntry",
    "KeyState",
    "LinearPolicy",
    "LogBasedPolicy",
    "LogarithmicPolicy",
    "NodeCache",
    "OutgoingUpdateChannels",
    "QueryMessage",
    "QueryTree",
    "ReplicaEvent",
    "ReplicaMessage",
    "SecondChancePolicy",
    "UpdateMessage",
    "UpdateType",
    "break_even_justified_fraction",
    "justification_probability",
    "make_policy",
    "standard_caching_miss_cost",
]
