"""Outgoing update channels with adaptive capacity control (§2.8).

Every CUP node keeps one logical update channel per neighbor.  Under full
capacity an update eligible for forwarding is sent immediately.  Under
limited capacity the paper's mechanism applies:

* the node's outgoing capacity ``U`` (updates per second) is divided
  among its channels in proportion to queue length, which keeps the
  queues roughly equally sized — implemented here by always serving the
  longest queue;
* while updates wait, each channel reorders its queue so updates with the
  greatest impact go first: by default first-time > delete > refresh >
  append, and within a type, entries closest to expiring first (they are
  the ones about to cause freshness misses);
* expired updates are eliminated during reordering, so queues are
  bounded by the entry lifetimes even if a channel is shut for a long
  time.

Two capacity knobs exist because the paper uses two notions:

* ``rate`` — the §2.8 architecture: a token-rate pump draining queues.
* ``fraction`` — the §3.7 experiments: "a reduced capacity c = .25 means
  a node is only pushing out one-fourth the updates it receives";
  implemented as probabilistic forwarding with probability ``c``.

First-time updates (query responses) are exempt from the ``fraction``
filter: the paper's degraded mode is *standard caching*, which still
answers queries — only cache maintenance decays.  Under ``rate`` they
share the pump but at the highest priority, as §2.8 prescribes.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.messages import UpdateMessage, UpdateType
from repro.sim.engine import Simulator
from repro.sim.network import NodeId


class CapacityConfig:
    """Capacity settings for one node's outgoing update channels.

    Parameters
    ----------
    fraction:
        Probability of forwarding each eligible maintenance update
        (first-time updates bypass this).  1.0 = full capacity; 0.0 =
        the node pushes no maintenance updates at all, degrading its
        subtree to standard caching.
    rate:
        Maximum updates per second pushed across all channels, or
        ``None`` for unlimited.  When set, updates queue per neighbor and
        a pump drains them longest-queue-first with priority reordering.
    """

    __slots__ = ("fraction", "rate")

    def __init__(self, fraction: float = 1.0, rate: Optional[float] = None):
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        if rate is not None and rate <= 0:
            raise ValueError(f"rate must be positive or None, got {rate}")
        self.fraction = fraction
        self.rate = rate

    def unlimited(self) -> bool:
        """Whether this configuration imposes no constraint at all."""
        return self.fraction >= 1.0 and self.rate is None

    def __repr__(self) -> str:
        return f"CapacityConfig(fraction={self.fraction}, rate={self.rate})"


class _QueuedUpdate:
    """Heap element: priority-ordered pending update for one channel."""

    __slots__ = ("priority", "expiry", "seq", "update")

    def __init__(self, priority: int, expiry: float, seq: int,
                 update: UpdateMessage):
        self.priority = priority
        self.expiry = expiry
        self.seq = seq
        self.update = update

    def __lt__(self, other: "_QueuedUpdate") -> bool:
        # Higher update classes first; within a class, nearest expiry
        # first (the paper: push what is about to cause freshness misses);
        # FIFO as the final tie-break for determinism.
        if self.priority != other.priority:
            return self.priority < other.priority
        if self.expiry != other.expiry:
            return self.expiry < other.expiry
        return self.seq < other.seq


#: Priority table for latency/accuracy-first applications (§2.8's
#: default ordering).  Lower = pushed sooner.
DEFAULT_PRIORITIES: Dict[UpdateType, int] = {
    UpdateType.FIRST_TIME: 0,
    UpdateType.DELETE: 1,
    UpdateType.REFRESH: 2,
    UpdateType.APPEND: 3,
}

#: §2.8: "In an application subject to flash crowds that query for a
#: particular item, appends might be given higher priority over the
#: other updates.  This would help distribute the load faster across the
#: entire set of replicas."
FLASH_CROWD_PRIORITIES: Dict[UpdateType, int] = {
    UpdateType.FIRST_TIME: 0,
    UpdateType.APPEND: 1,
    UpdateType.DELETE: 2,
    UpdateType.REFRESH: 3,
}

PRIORITY_PROFILES: Dict[str, Dict[UpdateType, int]] = {
    "latency": DEFAULT_PRIORITIES,
    "flash-crowd": FLASH_CROWD_PRIORITIES,
}


class OutgoingUpdateChannels:
    """All outgoing update channels of one node, plus the capacity pump.

    Parameters
    ----------
    sim:
        Event engine (drives the rate pump).
    send_fn:
        Callback ``(neighbor_id, update) -> None`` that puts one update on
        the wire; supplied by the owning node.
    capacity:
        Initial :class:`CapacityConfig`; replaceable at runtime via
        :meth:`set_capacity` (the §3.7 fault injections do exactly that).
    rng:
        Random generator for the fractional-capacity coin flips.
    priorities:
        Optional override of the type-priority table.
    """

    __slots__ = (
        "_sim", "_send", "capacity", "unlimited", "_rng", "_priorities",
        "_queues", "_seq", "_pump_scheduled", "_pump_event", "_queued_total",
        "_tie_keys", "_longest", "forwarded", "suppressed",
        "expired_in_queue",
    )

    def __init__(
        self,
        sim: Simulator,
        send_fn: Callable[[NodeId, UpdateMessage], None],
        capacity: Optional[CapacityConfig] = None,
        rng: Optional[np.random.Generator] = None,
        priorities: Optional[Dict[UpdateType, int]] = None,
    ):
        self._sim = sim
        self._send = send_fn
        self.capacity = capacity or CapacityConfig()
        # Precomputed "no constraint at all" bit: the batched fan-out
        # fast path in the node reads this once per fan-out instead of
        # re-deriving it from fraction/rate per child.  Kept in sync by
        # set_capacity.
        self.unlimited = self.capacity.unlimited()
        self._rng = rng
        self._priorities = priorities or DEFAULT_PRIORITIES
        self._queues: Dict[NodeId, List[_QueuedUpdate]] = {}
        self._seq = itertools.count()
        self._pump_scheduled = False
        self._pump_event = None
        # Incremental longest-queue tracking: total queued count (O(1)
        # pending check), one precomputed deterministic tie-break key per
        # neighbor, and a lazy max-heap of (-length, tie_key, neighbor)
        # entries refreshed on every length change.  Stale entries are
        # skipped at selection time, so the pump never rescans all queues.
        self._queued_total = 0
        self._tie_keys: Dict[NodeId, str] = {}
        self._longest: List[tuple] = []
        # Statistics (read by metrics and tests).
        self.forwarded = 0
        self.suppressed = 0
        self.expired_in_queue = 0

    # ------------------------------------------------------------------
    # Capacity management
    # ------------------------------------------------------------------

    def set_capacity(self, capacity: CapacityConfig) -> None:
        """Change capacity at runtime (fault injection / recovery).

        Raising capacity restarts the pump so queued updates drain at the
        new rate; queued updates are never lost by a capacity change
        (they expire or get pushed).
        """
        self.capacity = capacity
        self.unlimited = capacity.unlimited()
        if capacity.rate is not None and self._pending():
            # Re-pace the pump at the new rate immediately; the stale
            # schedule would otherwise linger at the old pace.
            if self._pump_event is not None:
                self._pump_event.cancel()
                self._pump_event = None
            self._pump_scheduled = False
            self._schedule_pump()
        if capacity.rate is None:
            if self._pump_event is not None:
                self._pump_event.cancel()
                self._pump_event = None
            self._pump_scheduled = False
            self._flush_all()

    # ------------------------------------------------------------------
    # Enqueue / send
    # ------------------------------------------------------------------

    def push(self, neighbor: NodeId, update: UpdateMessage) -> bool:
        """Offer one update to the channel toward ``neighbor``.

        Returns ``True`` if the update was sent or queued, ``False`` if
        capacity suppressed it.
        """
        first_time = update.update_type == UpdateType.FIRST_TIME
        if not first_time and self.capacity.fraction < 1.0:
            if self._rng is None:
                raise RuntimeError(
                    "fractional capacity requires an rng; pass one at "
                    "construction"
                )
            if self._rng.random() >= self.capacity.fraction:
                self.suppressed += 1
                return False
        if self.capacity.rate is None:
            self._send(neighbor, update)
            self.forwarded += 1
            return True
        queued = _QueuedUpdate(
            self._priorities[update.update_type],
            update.carried_expiry() or float("inf"),
            next(self._seq),
            update,
        )
        queue = self._queues.get(neighbor)
        if queue is None:
            queue = self._queues[neighbor] = []
            self._tie_keys[neighbor] = str(neighbor)
        heapq.heappush(queue, queued)
        self._queued_total += 1
        heapq.heappush(
            self._longest, (-len(queue), self._tie_keys[neighbor], neighbor)
        )
        if not self._pump_scheduled:
            self._schedule_pump()
        return True

    # ------------------------------------------------------------------
    # Rate pump
    # ------------------------------------------------------------------

    def _pending(self) -> bool:
        return self._queued_total > 0

    def queue_length(self, neighbor: NodeId) -> int:
        """Pending updates toward ``neighbor`` (includes not-yet-purged
        expired ones)."""
        return len(self._queues.get(neighbor, ()))

    def pending_counts(self) -> tuple:
        """``(counter, actual)`` pending totals for invariant audits.

        ``counter`` is the O(1) incremental total the pump relies on;
        ``actual`` recounts every queue.  They must always agree — a
        drift means an enqueue/drain path skipped the bookkeeping.
        """
        return (
            self._queued_total,
            sum(len(queue) for queue in self._queues.values()),
        )

    def _schedule_pump(self) -> None:
        rate = self.capacity.rate
        if rate is None:
            return
        self._pump_scheduled = True
        self._pump_event = self._sim.schedule(1.0 / rate, self._pump_once)

    def _pump_once(self) -> None:
        self._pump_scheduled = False
        # The pump this event belonged to has fired; drop the reference so
        # a later ``set_capacity`` cannot cancel an already-fired event.
        self._pump_event = None
        now = self._sim.now
        # Proportional sharing: always serve the longest queue, which is
        # the discrete equivalent of giving each channel a share of U
        # proportional to its backlog (ties broken by id for determinism).
        # Selection is a lazy max-heap walk: entries whose recorded length
        # no longer matches the queue are stale and discarded; expiry
        # purging is amortized — only popped heads are examined, so a
        # pump tick costs O(log) instead of a full scan of every queue.
        queues = self._queues
        longest = self._longest
        while longest:
            neg_len, _, neighbor = longest[0]
            queue = queues.get(neighbor)
            if queue is None or len(queue) != -neg_len:
                heapq.heappop(longest)
                continue
            sent = False
            while queue:
                queued = heapq.heappop(queue)
                self._queued_total -= 1
                if queued.update.is_expired(now):
                    # Lazy elimination of expired updates (§2.8): they
                    # surface here in priority order and cost one pop each.
                    self.expired_in_queue += 1
                    continue
                self._send(neighbor, queued.update)
                self.forwarded += 1
                sent = True
                break
            heapq.heappop(longest)
            if queue:
                heapq.heappush(
                    longest, (-len(queue), self._tie_keys[neighbor], neighbor)
                )
            if sent:
                break
        if self._queued_total:
            self._schedule_pump()

    def _drop_expired(self, queue: List[_QueuedUpdate], now: float) -> None:
        """Eliminate expired updates during reordering (§2.8)."""
        if not queue:
            return
        live = [q for q in queue if not q.update.is_expired(now)]
        if len(live) != len(queue):
            self.expired_in_queue += len(queue) - len(live)
            queue[:] = live
            heapq.heapify(queue)

    def _flush_all(self) -> None:
        """Send everything queued (capacity became unlimited)."""
        now = self._sim.now
        for neighbor, queue in self._queues.items():
            self._drop_expired(queue, now)
            while queue:
                queued = heapq.heappop(queue)
                self._send(neighbor, queued.update)
                self.forwarded += 1
        self._queued_total = 0
        self._longest.clear()
