"""The economic cost model of §3.1.

CUP's central argument is an accounting identity: pushing an update one
hop costs one hop of network traffic, and saves exactly two hops (one up,
one down) for the first query that would otherwise have missed within the
update's critical window ``T``.  An update is **justified** when such a
query arrives; a justified update therefore returns twice its cost, which
is why CUP breaks even as long as at least half of all pushed updates are
justified.

With Poisson query arrivals this becomes quantitative: if queries for a
key arrive at each node ``i`` of the virtual subtree below node ``N``
at rate ``lambda_i``, arrivals at the whole subtree form a Poisson
process with rate ``Lambda = sum(lambda_i)``, and the probability that an
update pushed to ``N`` is justified is ``1 - exp(-Lambda * T)``.

These functions are exercised by the property-based tests and by the
``examples/cost_model_analysis.py`` walkthrough; the simulator measures
the same quantities empirically.
"""

from __future__ import annotations

import math
from typing import Iterable

#: Per the paper: a query saved by a pushed update would have cost one
#: hop up and one hop down, so each pushed hop recovers two.
HOPS_SAVED_PER_JUSTIFIED_HOP = 2.0


def justification_probability(aggregate_rate: float, window: float) -> float:
    """Probability that an update is justified (§3.1).

    Parameters
    ----------
    aggregate_rate:
        ``Lambda`` — the summed Poisson query rate over the virtual
        subtree rooted at the receiving node, in queries per second.
    window:
        ``T`` — the critical interval during which a query must arrive
        for the update to recover its cost.  ``math.inf`` (first-time
        updates) yields probability 1.

    >>> round(justification_probability(1.0, 6.0), 2)  # paper's example
    0.99
    """
    if aggregate_rate < 0:
        raise ValueError(f"aggregate rate must be >= 0, got {aggregate_rate}")
    if window < 0:
        raise ValueError(f"window must be >= 0, got {window}")
    if math.isinf(window) and aggregate_rate > 0:
        return 1.0
    return 1.0 - math.exp(-aggregate_rate * window)


def subtree_aggregate_rate(per_node_rates: Iterable[float]) -> float:
    """``Lambda`` for a subtree: Poisson superposition sums the rates."""
    total = 0.0
    for rate in per_node_rates:
        if rate < 0:
            raise ValueError(f"negative per-node rate: {rate}")
        total += rate
    return total


def standard_caching_miss_cost(distance: int, answered_at: int | None = None) -> int:
    """Hops to answer a first miss at distance ``D`` under standard caching.

    ``2 * D`` when the query travels all the way to the authority;
    ``2 * answered_at`` when a fresh intermediate cache at that distance
    from the querying node answers first (§3.1).
    """
    if distance < 0:
        raise ValueError(f"distance must be >= 0, got {distance}")
    if answered_at is None:
        return 2 * distance
    if not 0 <= answered_at <= distance:
        raise ValueError(
            f"answered_at must be within [0, {distance}], got {answered_at}"
        )
    return 2 * answered_at


def break_even_justified_fraction() -> float:
    """Fraction of pushed updates that must be justified to recover all
    propagation overhead.

    Each justified update saves two hops per hop pushed; overhead is one
    hop per hop pushed — so 50% justification makes CUP's overhead free
    (§3.1: "As long as the number of justified updates is at least fifty
    percent the total number of updates pushed, the overall update
    overhead is completely recovered.").
    """
    return 1.0 / HOPS_SAVED_PER_JUSTIFIED_HOP


def expected_update_value(aggregate_rate: float, window: float) -> float:
    """Expected hops saved minus hops spent for one pushed update hop.

    Positive whenever the justification probability exceeds the
    break-even fraction; the "all-out push" strategy of §3.1 accepts
    negative values in exchange for minimum latency.
    """
    p = justification_probability(aggregate_rate, window)
    return p * HOPS_SAVED_PER_JUSTIFIED_HOP - 1.0


def saved_miss_overhead_ratio(
    miss_cost_standard: float, miss_cost_cup: float, overhead_cup: float
) -> float:
    """The paper's "investment return per update push" (§3.5).

    ``(MissCostStandardCaching - MissCostCUP) / OverheadCostCUP``; infinite
    when CUP incurred no overhead at all (then any saving is free).
    """
    if overhead_cup < 0 or miss_cost_standard < 0 or miss_cost_cup < 0:
        raise ValueError("costs must be non-negative")
    saved = miss_cost_standard - miss_cost_cup
    if overhead_cup == 0:
        return math.inf if saved > 0 else 0.0
    return saved / overhead_cup
