"""Index entries: the unit of content location state.

An index entry is a (key, value) pair where the value points to a replica
serving the content associated with the key (§2.1 of the paper).  Every
entry cached away from its authority node carries a *lifetime* and the
*timestamp* at which the lifetime was set; once ``now - timestamp``
exceeds the lifetime the entry has expired and must not be used to answer
queries.
"""

from __future__ import annotations

from typing import Optional


class IndexEntry:
    """One pointer from a key to a replica serving its content.

    Parameters
    ----------
    key:
        The content key this entry indexes.
    replica_id:
        Identifier of the replica this entry points at.  There can be
        several entries for the same key, one per replica.
    address:
        The location value (the paper: "typically an IP address").
    lifetime:
        Seconds of validity from ``timestamp``.
    timestamp:
        Simulation time at which the lifetime was set (issue/refresh time).
    sequence:
        Version counter assigned by the authority node; strictly increases
        across refreshes of the same (key, replica).  Lets caches discard
        out-of-order updates that long network delays can produce (§2.6
        case 3).
    """

    __slots__ = ("key", "replica_id", "address", "lifetime", "timestamp", "sequence")

    def __init__(
        self,
        key: str,
        replica_id: str,
        address: str,
        lifetime: float,
        timestamp: float,
        sequence: int = 0,
    ):
        if lifetime <= 0:
            raise ValueError(f"lifetime must be positive, got {lifetime}")
        self.key = key
        self.replica_id = replica_id
        self.address = address
        self.lifetime = lifetime
        self.timestamp = timestamp
        self.sequence = sequence

    @property
    def expires_at(self) -> float:
        """Absolute simulation time at which this entry stops being fresh."""
        return self.timestamp + self.lifetime

    def is_fresh(self, now: float) -> bool:
        """Whether the entry may still be used to answer queries.

        Phrased as ``now < timestamp + lifetime`` so it is float-exact
        against :attr:`expires_at` — every expiry comparison in the
        system (message expiry precomputation, queue elimination, cache
        gc) reduces to the same ``expires_at`` arithmetic and can never
        disagree at a rounding boundary.
        """
        return now < self.timestamp + self.lifetime

    def remaining(self, now: float) -> float:
        """Seconds of freshness left (negative once expired)."""
        return self.expires_at - now

    def refreshed(self, timestamp: float, lifetime: Optional[float] = None,
                  sequence: Optional[int] = None) -> "IndexEntry":
        """A copy of this entry with its lifetime re-based at ``timestamp``."""
        return IndexEntry(
            key=self.key,
            replica_id=self.replica_id,
            address=self.address,
            lifetime=self.lifetime if lifetime is None else lifetime,
            timestamp=timestamp,
            sequence=self.sequence + 1 if sequence is None else sequence,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IndexEntry):
            return NotImplemented
        return (
            self.key == other.key
            and self.replica_id == other.replica_id
            and self.address == other.address
            and self.lifetime == other.lifetime
            and self.timestamp == other.timestamp
            and self.sequence == other.sequence
        )

    def __hash__(self) -> int:
        return hash((self.key, self.replica_id, self.sequence))

    def __repr__(self) -> str:
        return (
            f"IndexEntry({self.key!r}, replica={self.replica_id!r}, "
            f"t={self.timestamp:g}, ttl={self.lifetime:g}, seq={self.sequence})"
        )
