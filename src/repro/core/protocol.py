"""Network assembly: configuration and full-system wiring.

:class:`CupConfig` captures every input of the paper's simulator (§3.2):
the number of nodes in the overlay, the number of keys owned per node,
the distribution of queries for keys, the query inter-arrival
distribution, the number of replicas per key, and the lifetime of
replicas — plus the CUP-specific knobs (mode, cut-off policy, capacity,
replica-independent cut-off).

:class:`CupNetwork` builds the whole system from a config — simulator,
transport, overlay, one :class:`~repro.core.node.CupNode` per member,
the replica population and the query workload — and provides the churn
operations of §2.9 (node joins with index handover, graceful and
ungraceful departures) and the capacity fault hooks of §3.7.

Protocol modes
--------------
``mode="cup"``
    Full CUP: persistent interest bits, maintenance update propagation,
    cut-off policy in force.
``mode="standard"``
    The baseline: standard caching with expiration times.  Queries are
    forwarded individually over per-query open connections (no
    coalescing), responses retrace the query path and populate the path
    caches, and no maintenance update ever propagates; total cost equals
    miss cost, exactly as the paper's push-level-0 equivalence.
``mode="standard-coalescing"``
    Ablation: standard caching plus CUP's query-coalescing machinery
    (Pending-First-Update flags and interest-bit response fan-out) but
    still no maintenance updates.  Isolates how much of CUP's win comes
    from coalescing alone.
"""

from __future__ import annotations

import dataclasses
import functools
import time
from typing import Dict, Iterable, List, Optional, Union

from repro.core.channels import PRIORITY_PROFILES, CapacityConfig
from repro.core.node import CupNode
from repro.core.policies import CutoffPolicy, make_policy
from repro.metrics.collector import MetricsCollector, MetricsSummary
from repro.overlay.base import NodeId, Overlay
from repro.overlay.can import CanOverlay
from repro.overlay.chord import ChordOverlay
from repro.overlay.pastry import PastryOverlay
from repro.replicas.replica import ReplicaSet
from repro.sim.engine import Simulator
from repro.sim.network import Transport
from repro.sim.random import BufferedUniforms, RandomStreams
from repro.sim.trace import Tracer
from repro.workload.arrivals import PoissonArrivals
from repro.workload.generator import QueryWorkload, uniform_node_selector
from repro.workload.keyspace import KeySelector, UniformKeys, ZipfKeys


@dataclasses.dataclass
class CupConfig:
    """All simulation inputs; defaults mirror the paper's setup (§3.2)."""

    # --- topology -----------------------------------------------------
    num_nodes: int = 64
    overlay_type: str = "can"          # "can" | "chord" | "pastry"
    can_dims: int = 2
    link_delay: float = 0.05           # one-way seconds per overlay hop
    link_delay_jitter: float = 0.0     # +/- uniform per-link jitter (CAN)

    # --- protocol -----------------------------------------------------
    mode: str = "cup"      # "cup" | "standard" | "standard-coalescing"
    policy: Union[CutoffPolicy, str] = "second-chance"
    replica_independent_cutoff: bool = True
    capacity_fraction: float = 1.0     # §3.7 fractional capacity
    capacity_rate: Optional[float] = None  # §2.8 rate pump (updates/s)
    pfu_timeout: float = 30.0
    track_justification: bool = True
    # §3.6 authority-side overhead-reduction techniques:
    refresh_aggregation_window: Optional[float] = None
    refresh_sample_fraction: float = 1.0
    # §2.8 update-channel reordering profile under limited capacity:
    # "latency" (first-time > delete > refresh > append) or
    # "flash-crowd" (appends promoted to spread load across replicas).
    priority_profile: str = "latency"
    # Batched update fan-out: one shared payload + k lightweight
    # envelopes per push instead of k full per-child forks.  Results are
    # byte-identical either way (property-tested), so — like ``trace`` —
    # this knob is not part of run-cache keys; False selects the
    # per-child reference path.
    batched_fanout: bool = True
    # Unreliable-transport survival layer (recovery).  The default True
    # assumes a reliable transport (no fault injection) and keeps the
    # run byte-identical to historical golden pins: nodes carry no
    # recovery state at all.  Setting False equips every CUP-mode node
    # with sequence stamping, gap detection + NACK/backoff recovery, and
    # pull-on-miss degradation (see repro.core.recovery) — the knobs
    # below tune that state machine and are ignored on the default path.
    reliable_transport: bool = True
    recovery_max_retries: int = 4
    recovery_base_timeout: float = 0.5
    recovery_backoff: float = 2.0
    recovery_max_timeout: float = 8.0
    recovery_buffer: int = 64

    # --- content ------------------------------------------------------
    keys_per_node: float = 1.0
    total_keys: Optional[int] = None   # overrides keys_per_node when set
    replicas_per_key: int = 1
    entry_lifetime: float = 300.0      # the paper's replica lifetime
    stagger_replicas: bool = True

    # --- workload -----------------------------------------------------
    query_rate: float = 1.0            # aggregate λ, queries/second
    key_distribution: str = "uniform"  # "uniform" | "zipf"
    zipf_s: float = 0.8
    query_start: float = 600.0         # warm-up before the query phase
    query_duration: float = 3000.0     # the paper's querying time
    drain: float = 600.0               # post-query settling time

    # --- housekeeping ---------------------------------------------------
    seed: int = 42
    gc_interval: Optional[float] = 300.0
    failure_sweep_interval: Optional[float] = None
    handover_entries: bool = True      # §2.9 index handover on churn
    trace: bool = False

    # --- checkpointing --------------------------------------------------
    # Durable-run knobs (see repro.persistence.checkpoint): with a path
    # set, CupNetwork.run() writes a restorable snapshot of the whole
    # deterministic run state every N processed events and/or every S
    # *simulated* seconds.  Snapshots are taken between engine chunks,
    # never as scheduled events, so a checkpointed run is byte-identical
    # to a plain one.  Like ``trace``, these knobs are not part of
    # run-cache keys.
    checkpoint_path: Optional[str] = None
    checkpoint_every_events: Optional[int] = None
    checkpoint_every_seconds: Optional[float] = None

    @property
    def query_end(self) -> float:
        return self.query_start + self.query_duration

    @property
    def sim_end(self) -> float:
        return self.query_end + self.drain

    def resolved_total_keys(self) -> int:
        if self.total_keys is not None:
            if self.total_keys < 1:
                raise ValueError("total_keys must be >= 1")
            return self.total_keys
        return max(1, int(round(self.num_nodes * self.keys_per_node)))

    def resolved_policy(self) -> CutoffPolicy:
        if isinstance(self.policy, CutoffPolicy):
            return self.policy
        return make_policy(self.policy)

    def validate(self) -> None:
        if self.num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {self.num_nodes}")
        if self.mode not in ("cup", "standard", "standard-coalescing"):
            raise ValueError(f"unknown mode: {self.mode!r}")
        if self.overlay_type not in ("can", "chord", "pastry"):
            raise ValueError(f"unknown overlay_type: {self.overlay_type!r}")
        if self.key_distribution not in ("uniform", "zipf"):
            raise ValueError(
                f"unknown key_distribution: {self.key_distribution!r}"
            )
        if self.entry_lifetime <= 0:
            raise ValueError("entry_lifetime must be positive")
        if self.query_rate <= 0:
            raise ValueError("query_rate must be positive")
        if not 0.0 <= self.capacity_fraction <= 1.0:
            raise ValueError("capacity_fraction must be in [0, 1]")
        if (
            self.refresh_aggregation_window is not None
            and self.refresh_aggregation_window <= 0
        ):
            raise ValueError(
                "refresh_aggregation_window must be positive or None"
            )
        if not 0.0 < self.refresh_sample_fraction <= 1.0:
            raise ValueError("refresh_sample_fraction must be in (0, 1]")
        from repro.core.channels import PRIORITY_PROFILES

        if self.priority_profile not in PRIORITY_PROFILES:
            raise ValueError(
                f"unknown priority_profile: {self.priority_profile!r}; "
                f"choose from {sorted(PRIORITY_PROFILES)}"
            )
        if (
            self.checkpoint_every_events is not None
            and self.checkpoint_every_events < 1
        ):
            raise ValueError(
                "checkpoint_every_events must be >= 1 or None, "
                f"got {self.checkpoint_every_events}"
            )
        if (
            self.checkpoint_every_seconds is not None
            and self.checkpoint_every_seconds <= 0
        ):
            raise ValueError(
                "checkpoint_every_seconds must be positive or None, "
                f"got {self.checkpoint_every_seconds}"
            )
        if not self.reliable_transport:
            # Constructing the config object validates the knobs early
            # (RecoveryConfig re-validates at node construction).
            self.resolved_recovery()

    def resolved_recovery(self):
        """The RecoveryConfig described by the recovery_* knobs."""
        from repro.core.recovery import RecoveryConfig

        return RecoveryConfig(
            max_retries=self.recovery_max_retries,
            base_timeout=self.recovery_base_timeout,
            backoff=self.recovery_backoff,
            max_timeout=self.recovery_max_timeout,
            buffer_size=self.recovery_buffer,
        )

    def variant(self, **overrides) -> "CupConfig":
        """A copy with fields replaced (workload seeds stay aligned)."""
        return dataclasses.replace(self, **overrides)


def build_overlay(config: CupConfig) -> Overlay:
    """Construct the overlay topology ``config`` describes.

    A pure function of the config: the only randomness (incremental CAN
    construction for non-power-of-two sizes) comes from the dedicated
    ``topology`` stream derived from ``config.seed``, so repeated builds
    are identical — which is what lets the sweep executor's topology
    snapshot cache (:mod:`repro.experiments.topology`) share one built
    overlay across cells.
    """
    if config.overlay_type == "can":
        n = config.num_nodes
        if n & (n - 1) == 0:
            return CanOverlay.perfect_grid(n, dims=config.can_dims)
        overlay = CanOverlay(dims=config.can_dims)
        rng = RandomStreams(config.seed).get("topology")
        for i in range(n):
            point = (
                tuple(float(x) for x in rng.random(config.can_dims))
                if i else None
            )
            overlay.join(i, point=point)
        return overlay
    if config.overlay_type == "pastry":
        return PastryOverlay.build(range(config.num_nodes))
    return ChordOverlay.build(range(config.num_nodes))


class CupNetwork:
    """A fully wired CUP (or standard-caching) deployment.

    Construction builds the overlay and nodes and schedules replica
    births; :meth:`run` attaches the configured workload and drives the
    simulation to ``config.sim_end``.  Lower-level entry points
    (:meth:`post_query`, :meth:`run_until`) support tests, examples and
    custom experiments.
    """

    def __init__(self, config: CupConfig, topology: Optional[Overlay] = None):
        config.validate()
        self.config = config
        self.policy = config.resolved_policy()
        self.sim = Simulator()
        self.streams = RandomStreams(config.seed)
        self.tracer = Tracer(enabled=config.trace)
        self.transport = Transport(self.sim, default_delay=config.link_delay)
        self.metrics = MetricsCollector()
        self.transport.attach_metrics(self.metrics)

        if topology is not None:
            # A prebuilt snapshot (the sweep executor's topology cache):
            # routing is a pure function of membership, so reusing the
            # built overlay — warm routing memos included — changes no
            # result, only skips the rebuild.  Membership must then stay
            # frozen; churn entry points guard on _topology_shared.
            self.overlay = topology
            self._topology_shared = True
            self._overlay_build_seconds = 0.0
            self._fresh_builds = 0
        else:
            build_started = time.perf_counter()
            self.overlay = self._build_overlay()
            # Setup-cost accounting: overlay construction now, lazy
            # per-epoch route-table rebuilds folded in by
            # _refresh_setup_costs() when a summary is drawn.  Wall
            # times stay outside MetricsSummary.
            self._topology_shared = False
            self._overlay_build_seconds = time.perf_counter() - build_started
            self._fresh_builds = 1
        self._tables_at_build = (
            self.overlay.table_build_seconds,
            self.overlay.table_builds,
        )
        self._refresh_setup_costs()
        self.keys = [f"k{i:05d}" for i in range(config.resolved_total_keys())]

        # One buffered view of the shared capacity stream for every node:
        # coin flips (§3.7 fractional capacity, §3.6 refresh sampling) are
        # drawn in blocks, and because all consumers share this wrapper
        # the served sequence is bit-identical to per-call scalar draws.
        self._capacity_rng = BufferedUniforms(self.streams.get("capacity"))

        # Keep-alive machinery (§2.1): off until enable_keepalive().
        self._keepalive_settings = None
        # Runtime invariant checker: off until attach_invariants().
        self.invariants = None
        # Durable-snapshot settings (config defaults; enable_checkpoints()
        # overrides).  The flag below makes run() resumable: a restored
        # network must not re-begin its workload.
        self._checkpoint_path = config.checkpoint_path
        self._checkpoint_every_events = config.checkpoint_every_events
        self._checkpoint_every_seconds = config.checkpoint_every_seconds
        self._workload_begun = False
        #: The compiled ScenarioRuntime driving this run, when any —
        #: registered by Scenario.compile_onto so a restored network
        #: keeps its stressor schedule and narration log.
        self.scenario_runtime = None
        self._crashed: set = set()
        #: (time, reporter, suspect) per completed failure detection.
        self.failure_detections: List[tuple] = []

        self.nodes: Dict[NodeId, CupNode] = {}
        for node_id in self.overlay.node_ids():
            self._create_node(node_id)
        self._member_list: List[NodeId] = list(self.nodes)

        if config.link_delay_jitter > 0:
            self._register_jittered_links()

        self.replicas = ReplicaSet(
            self.sim,
            self.transport,
            self.overlay,
            self.keys,
            replicas_per_key=config.replicas_per_key,
            lifetime=config.entry_lifetime,
            rng=self.streams.get("replicas"),
            stagger=config.stagger_replicas,
        )
        self.replicas.schedule_births(at=0.0)

        self.workload: Optional[QueryWorkload] = None
        if config.gc_interval:
            self.sim.schedule(config.gc_interval, self._gc_tick)
        if config.failure_sweep_interval:
            self.sim.schedule(
                config.failure_sweep_interval, self._failure_sweep_tick
            )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def _build_overlay(self) -> Overlay:
        return build_overlay(self.config)

    def _create_node(self, node_id: NodeId) -> CupNode:
        config = self.config
        node = CupNode(
            node_id=node_id,
            sim=self.sim,
            transport=self.transport,
            overlay=self.overlay,
            policy=self.policy,
            metrics=self.metrics,
            persistent_interest=(config.mode == "cup"),
            coalesce=(config.mode != "standard"),
            replica_independent_cutoff=config.replica_independent_cutoff,
            capacity=CapacityConfig(
                fraction=config.capacity_fraction, rate=config.capacity_rate
            ),
            rng=self._capacity_rng,
            pfu_timeout=config.pfu_timeout,
            track_justification=config.track_justification,
            refresh_aggregation_window=config.refresh_aggregation_window,
            refresh_sample_fraction=config.refresh_sample_fraction,
            channel_priorities=PRIORITY_PROFILES[config.priority_profile],
            batched_fanout=config.batched_fanout,
            # Standard caching routes responses over recorded query
            # paths (route is not None), which the sequence layer
            # exempts; only CUP-style propagation gets recovery state.
            recovery_config=(
                config.resolved_recovery()
                if not config.reliable_transport and config.mode != "standard"
                else None
            ),
        )
        self.nodes[node_id] = node
        self.transport.register(node_id, node)
        if self.invariants is not None:
            node.invariant_probe = self.invariants
        return node

    def _register_jittered_links(self) -> None:
        if not isinstance(self.overlay, CanOverlay):
            return
        rng = self.streams.get("link-delays")
        base = self.config.link_delay
        jitter = self.config.link_delay_jitter
        seen = set()
        for node_id in self.overlay.node_ids():
            for neighbor in self.overlay.neighbors(node_id):
                pair = (node_id, neighbor) if str(node_id) < str(neighbor) \
                    else (neighbor, node_id)
                if pair in seen:
                    continue
                seen.add(pair)
                delay = max(1e-4, base + float(rng.uniform(-jitter, jitter)))
                self.transport.add_link(pair[0], pair[1], delay)

    # ------------------------------------------------------------------
    # Periodic housekeeping
    # ------------------------------------------------------------------

    def _gc_tick(self) -> None:
        # One sweep visits every node; at large N the per-node constant
        # dominates the tick, so nodes with no cached key state (common
        # in wide networks with few hot keys) are skipped without the
        # two call frames a full node.gc() would cost.
        now = self.sim.now
        for node in self.nodes.values():
            if node.cache.states:
                node.cache.gc(now)
        if now < self.config.sim_end:
            self.sim.schedule(self.config.gc_interval, self._gc_tick)

    def _failure_sweep_tick(self) -> None:
        for node in self.nodes.values():
            node.sweep_local_index()
        if self.sim.now < self.config.sim_end:
            self.sim.schedule(
                self.config.failure_sweep_interval, self._failure_sweep_tick
            )

    # ------------------------------------------------------------------
    # Workload
    # ------------------------------------------------------------------

    def _default_key_selector(self) -> KeySelector:
        rng = self.streams.get("workload-keys")
        if self.config.key_distribution == "zipf":
            return ZipfKeys(self.keys, self.config.zipf_s, rng)
        return UniformKeys(self.keys, rng)

    def attach_workload(
        self,
        rate: Optional[float] = None,
        key_selector: Optional[KeySelector] = None,
    ) -> QueryWorkload:
        """Create (but do not start) the query workload."""
        config = self.config
        arrivals = PoissonArrivals(
            rate if rate is not None else config.query_rate,
            self.streams.get("workload-arrivals"),
        )
        # Read the member list afresh on every draw: churn replaces it.
        # A bound method, not a lambda, so the workload pickles into
        # checkpoints.
        select_node = uniform_node_selector(
            self.live_node_ids, self.streams.get("workload-nodes")
        )

        self.workload = QueryWorkload(
            sim=self.sim,
            arrivals=arrivals,
            key_selector=key_selector or self._default_key_selector(),
            node_selector=select_node,
            post_fn=self.post_query,
            start=config.query_start,
            duration=config.query_duration,
        )
        return self.workload

    def post_query(self, node_id: NodeId, key: str) -> bool:
        """Post one local-client query at a node (workload callback)."""
        return self.nodes[node_id].post_local_query(key)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _refresh_setup_costs(self) -> None:
        """Fold lazy route-table rebuilds into the metrics setup tally.

        Assignment (not accumulation), so drawing several summaries never
        double-counts; the overlay's own accumulators are the source of
        truth for everything after construction.
        """
        base_seconds, base_builds = getattr(
            self, "_tables_at_build", (0.0, 0)
        )
        self.metrics.routing_build_seconds = (
            self._overlay_build_seconds
            + self.overlay.table_build_seconds - base_seconds
        )
        self.metrics.routing_table_builds = (
            getattr(self, "_fresh_builds", 1)
            + self.overlay.table_builds - base_builds
        )

    def run(self, until: Optional[float] = None) -> Optional[MetricsSummary]:
        """Run the configured experiment; return metrics when complete.

        Without ``until`` the simulation is driven to ``config.sim_end``
        (writing periodic checkpoints when configured — see
        :meth:`enable_checkpoints`) and the summary is returned.  With an
        ``until`` before the end, the clock stops there and ``None`` is
        returned; calling :meth:`run` again — on this network or on a
        :meth:`restore`\\ d copy — picks up exactly where it left off,
        because the workload begins only once.
        """
        if self.workload is None:
            self.attach_workload()
        if not self._workload_begun:
            self._workload_begun = True
            self.workload.begin()
        deadline = self.config.sim_end
        partial = until is not None and until < deadline
        if partial:
            deadline = until
        if (
            self._checkpoint_path is not None
            and deadline > self.sim.now
        ):
            every_events = self._checkpoint_every_events
            every_seconds = self._checkpoint_every_seconds
            if every_events is None and every_seconds is None:
                from repro.persistence.checkpoint import DEFAULT_EVERY_EVENTS

                every_events = DEFAULT_EVERY_EVENTS
            self.sim.run_with_checkpoints(
                deadline,
                self._auto_checkpoint,
                every_events=every_events,
                every_seconds=every_seconds,
            )
        else:
            self.sim.run_until(deadline)
        if partial:
            return None
        self._refresh_setup_costs()
        if self.invariants is not None:
            self.invariants.check_quiescent()
        return self.metrics.summary()

    def run_until(self, deadline: float) -> None:
        """Advance the simulation clock (incremental driving for tests)."""
        self.sim.run_until(deadline)

    # ------------------------------------------------------------------
    # Durable snapshots (checkpoint/resume)
    # ------------------------------------------------------------------

    def enable_checkpoints(
        self,
        path: str,
        every_events: Optional[int] = None,
        every_seconds: Optional[float] = None,
    ) -> None:
        """Arrange periodic durable snapshots during :meth:`run`.

        ``path`` is overwritten atomically on every checkpoint, so it
        always holds the latest restorable state.  Cadence is every
        ``every_events`` processed events and/or every ``every_seconds``
        *simulated* seconds; with neither given, a default event cadence
        applies.  Snapshotting happens between engine chunks — it adds
        no simulation events, so results are byte-identical to an
        uncheckpointed run.
        """
        from repro.persistence.checkpoint import DEFAULT_EVERY_EVENTS

        if every_events is None and every_seconds is None:
            every_events = DEFAULT_EVERY_EVENTS
        self._checkpoint_path = path
        self._checkpoint_every_events = every_events
        self._checkpoint_every_seconds = every_seconds

    def _auto_checkpoint(self) -> None:
        from repro.persistence.checkpoint import save_checkpoint

        save_checkpoint(self, self._checkpoint_path)

    def snapshot(self) -> bytes:
        """Serialize the complete deterministic run state to bytes.

        See :mod:`repro.persistence.checkpoint` for the format and the
        byte-identity guarantee.
        """
        from repro.persistence.checkpoint import snapshot_network

        return snapshot_network(self)

    @classmethod
    def restore(cls, blob: bytes) -> "CupNetwork":
        """Reconstruct a network from :meth:`snapshot` bytes."""
        from repro.persistence.checkpoint import restore_network

        return restore_network(blob)

    # ------------------------------------------------------------------
    # Capacity faults (§3.7)
    # ------------------------------------------------------------------

    def set_node_capacity(self, node_id: NodeId, capacity: CapacityConfig) -> None:
        """Change one node's outgoing update capacity.

        Silently ignores departed nodes: fault schedules select their
        victims ahead of time and legitimately race with churn.
        """
        node = self.nodes.get(node_id)
        if node is not None:
            node.set_capacity(capacity)

    # ------------------------------------------------------------------
    # Runtime invariants
    # ------------------------------------------------------------------

    def attach_invariants(
        self,
        hazards: "Iterable[str]" = (),
        check_interval: Optional[float] = None,
        raise_immediately: bool = True,
    ):
        """Attach a runtime invariant checker to this deployment.

        Wires probes into every node (current and future joiners), a
        second transport observer for the independent cost tally, and —
        when ``check_interval`` is given — a periodic structural audit.
        :meth:`run` finishes with a quiescence check.  The checker is
        read-only with respect to the simulation: metrics and random
        streams are untouched, so a checked run's
        :class:`MetricsSummary` is identical to an unchecked one's.

        ``hazards`` declares the adversities the driving scenario will
        inject (see :data:`repro.invariants.HAZARDS`) so the checker can
        relax exactly the properties those adversities legitimately
        break.  Returns the checker.
        """
        from repro.invariants.checker import InvariantChecker

        if self.invariants is not None:
            raise RuntimeError("an invariant checker is already attached")
        if check_interval is not None and check_interval <= 0:
            # Validate before touching any state, so a rejected call
            # leaves the network re-attachable.
            raise ValueError(
                f"check_interval must be positive, got {check_interval}"
            )
        checker = InvariantChecker(
            self, hazards=hazards, raise_immediately=raise_immediately
        )
        self.invariants = checker
        self.transport.add_send_observer(checker.on_send)
        for node in self.nodes.values():
            node.invariant_probe = checker
        if check_interval is not None:
            self._schedule_invariant_audit(check_interval)
        return checker

    def _schedule_invariant_audit(self, interval: float) -> None:
        self.sim.schedule(interval, self._invariant_audit_tick, interval)

    def _invariant_audit_tick(self, interval: float) -> None:
        # A bound method (not a closure) so a pending audit tick pickles
        # into checkpoints along with everything else on the heap.
        self.invariants.audit_network()
        if self.sim.now < self.config.sim_end:
            self.sim.schedule(interval, self._invariant_audit_tick, interval)

    # ------------------------------------------------------------------
    # Keep-alive failure detection (§2.1)
    # ------------------------------------------------------------------

    def enable_keepalive(
        self, period: float = 10.0, miss_threshold: int = 3
    ) -> None:
        """Attach heartbeat monitors to every node (and future joiners).

        With monitors on, :meth:`crash_node` models a *silent* failure:
        the overlay keeps routing through the corpse (messages to it are
        dropped) until a neighbor's monitor suspects it, at which point
        the network completes the departure — the §2.1 "trigger recovery
        mechanisms" loop, end to end.
        """
        self._keepalive_settings = (period, miss_threshold)
        for node_id, node in self.nodes.items():
            self._attach_monitor(node_id, node)

    def _attach_monitor(self, node_id: NodeId, node: CupNode) -> None:
        if self._keepalive_settings is None:
            return
        from repro.core.keepalive import KeepAliveMonitor

        period, miss_threshold = self._keepalive_settings
        monitor = KeepAliveMonitor(
            sim=self.sim,
            transport=self.transport,
            node_id=node_id,
            # A partial of a bound method (not a lambda) so monitors
            # pickle into checkpoints.
            neighbors_fn=functools.partial(self._monitor_neighbors, node_id),
            period=period,
            miss_threshold=miss_threshold,
            on_suspect=self._on_suspected_failure,
        )
        node.keepalive_monitor = monitor
        monitor.start()

    def _monitor_neighbors(self, node_id: NodeId) -> List[NodeId]:
        """Current overlay neighbors of a member (empty once departed)."""
        if node_id not in self.nodes:
            return []
        return list(self.overlay.neighbors(node_id))

    def crash_node(self, node_id: NodeId) -> None:
        """A node fails silently: gone from the transport, overlay intact.

        Detection (if keep-alive is enabled) later completes the failure
        via :meth:`leave_node`.  Without monitors the corpse routes
        nothing forever — callers then repair explicitly.
        """
        node = self.nodes.get(node_id)
        if node is None:
            raise ValueError(f"node {node_id!r} is not a member")
        self._require_private_topology("crash_node")
        if node.keepalive_monitor is not None:
            node.keepalive_monitor.stop()
        self.transport.unregister(node_id)
        self._crashed.add(node_id)
        self._member_list = [n for n in self._member_list if n != node_id]
        if self.invariants is not None:
            self.invariants.on_membership_change("crash", node_id)
        self.tracer.emit(self.sim.now, "churn", event="crash", node=node_id)

    def recover_node(self, node_id: NodeId) -> None:
        """A crashed node comes back: transport re-attached, state intact.

        The inverse of :meth:`crash_node` for the crash-recover fault
        model (a process restart, not a departure): the overlay never
        removed the node, so routing resumes immediately.  Cache and
        authority state survive — what the node missed while dark is
        exactly what the recovery layer's gap detection and pull-on-miss
        degradation exist to repair.
        """
        node = self.nodes.get(node_id)
        if node is None:
            raise ValueError(f"node {node_id!r} is not a member")
        self._require_private_topology("recover_node")
        if node_id not in self._crashed:
            raise ValueError(f"node {node_id!r} is not crashed")
        self._crashed.discard(node_id)
        self.transport.register(node_id, node)
        # Rebuild from the node dict (insertion-ordered and never
        # reordered by crashes) so the member list is deterministic
        # regardless of crash/recover interleaving.
        self._member_list = [
            n for n in self.nodes if n not in self._crashed
        ]
        if node.keepalive_monitor is not None:
            node.keepalive_monitor.start()
        if self.invariants is not None:
            self.invariants.on_membership_change("recover", node_id)
        self.tracer.emit(self.sim.now, "churn", event="recover", node=node_id)

    def _on_suspected_failure(self, reporter: NodeId, suspect: NodeId) -> None:
        if suspect not in self._crashed:
            return  # false alarm (e.g. transient); live nodes stay
        self._crashed.discard(suspect)
        self.failure_detections.append(
            (self.sim.now, reporter, suspect)
        )
        self.leave_node(suspect, graceful=False)

    # ------------------------------------------------------------------
    # Churn (§2.9)
    # ------------------------------------------------------------------

    def live_node_ids(self) -> List[NodeId]:
        return self._member_list

    def _require_private_topology(self, operation: str) -> None:
        """Reject membership changes on a shared topology snapshot.

        A network built from the executor's topology cache shares one
        overlay object with other runs; mutating its membership would
        corrupt every simulation leasing the same snapshot.  The
        executor only shares snapshots with churn-free cells, so this
        guard can fire only on direct misuse — loudly, not subtly.
        """
        if getattr(self, "_topology_shared", False):
            raise RuntimeError(
                f"{operation} on a network built from a shared topology "
                "snapshot; construct the CupNetwork without `topology=` "
                "for runs that change membership"
            )

    def join_node(self, node_id: NodeId) -> CupNode:
        """A new node joins: overlay split, index handover, wiring."""
        if node_id in self.nodes:
            raise ValueError(f"node {node_id!r} is already a member")
        self._require_private_topology("join_node")
        if isinstance(self.overlay, CanOverlay):
            self.overlay.join(node_id)
        else:
            self.overlay.join(node_id)
        node = self._create_node(node_id)
        self._attach_monitor(node_id, node)
        self._member_list = list(self.nodes)
        if self.config.handover_entries:
            self._reassign_authority_entries()
        if self.invariants is not None:
            self.invariants.on_membership_change("join", node_id)
        self.tracer.emit(self.sim.now, "churn", event="join", node=node_id)
        return node

    def leave_node(self, node_id: NodeId, graceful: bool = True) -> None:
        """A node departs; neighbors take over its zone and (optionally)
        its index entries (§2.9)."""
        node = self.nodes.get(node_id)
        if node is None:
            raise ValueError(f"node {node_id!r} is not a member")
        self._require_private_topology("leave_node")
        former_neighbors = list(self.overlay.neighbors(node_id))
        departing_index = node.authority_index
        self.overlay.leave(node_id)
        del self.nodes[node_id]
        self.transport.unregister(node_id)
        self._member_list = list(self.nodes)

        if graceful and self.config.handover_entries and self.nodes:
            # The departing node hands its directory to the new owners;
            # ungraceful departures lose it (entries at caches simply
            # expire and later queries restart propagation).
            slices = departing_index.extract_keys(list(departing_index.keys()))
            for key, per_key in slices.items():
                new_owner = self.overlay.authority(key)
                self.nodes[new_owner].authority_index.absorb({key: per_key})

        # §2.9: patch interest bit vectors of the affected nodes.
        alive = set(self.nodes)
        for neighbor_id in former_neighbors:
            neighbor = self.nodes.get(neighbor_id)
            if neighbor is not None:
                neighbor.patch_after_churn(alive)
        if self.invariants is not None:
            self.invariants.on_membership_change(
                "leave" if graceful else "fail", node_id
            )
        self.tracer.emit(
            self.sim.now, "churn",
            event="leave" if graceful else "fail", node=node_id,
        )

    def _reassign_authority_entries(self) -> None:
        """Move directory slices to their current authority owners.

        Called after membership changes: any node holding entries for
        keys it no longer owns extracts and ships them (the §2.9 "give a
        copy of its stored index entries" option).
        """
        for node_id, node in list(self.nodes.items()):
            misplaced = [
                key for key in list(node.authority_index.keys())
                if self.overlay.authority(key) != node_id
            ]
            if not misplaced:
                continue
            slices = node.authority_index.extract_keys(misplaced)
            for key, per_key in slices.items():
                owner = self.overlay.authority(key)
                self.nodes[owner].authority_index.absorb({key: per_key})

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def node(self, node_id: NodeId) -> CupNode:
        return self.nodes[node_id]

    def summary(self) -> MetricsSummary:
        self._refresh_setup_costs()
        return self.metrics.summary()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CupNetwork(mode={self.config.mode!r}, nodes={len(self.nodes)}, "
            f"keys={len(self.keys)}, policy={self.policy.name})"
        )
