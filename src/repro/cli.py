"""Command-line interface: regenerate any table or figure of the paper.

Usage::

    python -m repro list
    python -m repro run fig3 [--scale small|paper|tiny] [--seed N]
    python -m repro run all --scale small --workers 4
    python -m repro run macro --nodes 4096 --checkpoint run.ckpt
    python -m repro run macro --resume --checkpoint run.ckpt
    python -m repro sweep all --resume --cell-timeout 600 --max-retries 2
    python -m repro quickstart
    python -m repro scenarios list
    python -m repro scenarios run perfect-storm [--seed N] [--no-invariants]
    python -m repro chaos flash-crowd --loss 0.2 --duplicate 0.1 --jitter 0.1
    python -m repro node serve --port 9400
    python -m repro node join 127.0.0.1:9400
    python -m repro node put somekey replica-1 --node 127.0.0.1:9400
    python -m repro node get somekey --node 127.0.0.1:9401

Each experiment prints its table (mirroring the paper's layout) followed
by a PASS/FAIL checklist of the paper's qualitative shape claims.

Sweep cells are independent simulations: ``--workers N`` fans them out
across N processes, and finished cells persist in an on-disk run cache
(``--cache-dir``, default ``.repro-cache/``) so repeated invocations —
and interrupted sweeps — only pay for cells they have not seen.
``--no-cache`` forces fresh runs.

``repro sweep`` is ``run`` hardened for hostile machines: the worker
pool is supervised (per-cell wall-clock timeouts, worker-death
detection, bounded exponential-backoff retries), completed cells flush
to the run cache as they finish, and ``--resume`` serves previously
finished cells from that cache so a killed sweep re-runs only
unfinished work.  ``repro run macro --checkpoint`` snapshots the single
long macro simulation periodically; ``--resume`` picks it up from the
latest snapshot and finishes with byte-identical results.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Callable, Dict

from repro.experiments import executor, runcache
from repro.experiments.base import ExperimentResult
from repro.experiments.capacity import run_capacity
from repro.experiments.config import resolve_scale
from repro.experiments.cutoff_policies import run_cutoff_policies
from repro.experiments.justification import run_justification
from repro.experiments.network_size import run_network_size
from repro.experiments.push_level import run_push_level
from repro.experiments.replicas_sweep import run_replicas_sweep

Runner = Callable[..., ExperimentResult]

EXPERIMENTS: Dict[str, tuple[str, Callable]] = {
    "fig3": (
        "Total and miss cost vs push level, low query rates (§3.3)",
        lambda scale, seed: run_push_level(
            scale, paper_rates=(1.0, 10.0), seed=seed
        ),
    ),
    "fig4": (
        "Total and miss cost vs push level, high query rates (§3.3)",
        lambda scale, seed: run_push_level(
            scale, paper_rates=(100.0, 1000.0), seed=seed,
            log_scale_figure=True,
        ),
    ),
    "table1": (
        "Total cost for varying cut-off policies (§3.4)",
        lambda scale, seed: run_cutoff_policies(scale, seed=seed),
    ),
    "table2": (
        "CUP vs standard caching across network sizes (§3.5)",
        lambda scale, seed: run_network_size(scale, seed=seed),
    ),
    "table3": (
        "Multiple replicas per key, naive vs fixed cut-off (§3.6)",
        lambda scale, seed: run_replicas_sweep(scale, seed=seed),
    ),
    "fig5": (
        "Total cost vs reduced capacity, λ=1 (§3.7)",
        lambda scale, seed: run_capacity(scale, paper_rate=1.0, seed=seed),
    ),
    "fig6": (
        "Total cost vs reduced capacity, high rate (§3.7)",
        lambda scale, seed: run_capacity(
            scale, paper_rate=min(1000.0, scale.max_rate), seed=seed,
            log_scale_figure=True,
        ),
    ),
    "justification": (
        "Justified-update economics vs query rate (§3.1)",
        lambda scale, seed: run_justification(scale, seed=seed),
    ),
}


def _cmd_list(_args: argparse.Namespace) -> int:
    print("Available experiments (paper artifact -> harness):\n")
    for name, (description, _) in EXPERIMENTS.items():
        print(f"  {name:8s} {description}")
    print("\nRun one with: python -m repro run <name> [--scale small|paper]")
    return 0


def _run_macro(args: argparse.Namespace) -> int:
    """One long macro cell with durable checkpoints (``run macro``).

    The checkpoint drill: ``--checkpoint PATH`` snapshots periodically
    while running; after a crash (or ``kill -9``), ``--resume
    --checkpoint PATH`` audits and finishes the latest snapshot, and the
    final summary is byte-identical to an uninterrupted run
    (``--summary-json`` emits the canonical form for comparison).
    """
    from repro.core.protocol import CupNetwork
    from repro.persistence import (
        checkpoint_info,
        load_checkpoint,
        verify_restored,
    )

    scale = resolve_scale(args.scale)
    path = args.checkpoint
    if args.resume:
        if path is None or not os.path.exists(path):
            print(
                f"--resume needs an existing checkpoint (--checkpoint "
                f"{path or 'PATH'} not found)",
                file=sys.stderr,
            )
            return 2
        info = checkpoint_info(path)
        print(
            f"resuming from {path}: t={info['sim_now']:.1f}s of "
            f"{info['sim_end']:.1f}s, {info['pending_events']} pending "
            f"events, n={info['num_nodes']}, seed={info['seed']}"
        )
        net = load_checkpoint(path)
        verify_restored(net)
        print("post-restore audit: clean")
    else:
        config = scale.config(
            seed=args.seed, num_nodes=args.nodes,
            query_rate=scale.rate(100.0),
        )
        net = CupNetwork(config)
        print(
            f"macro cell: n={args.nodes} paper-rate=100 "
            f"scale={scale.name} seed={args.seed}"
        )
    if path is not None:
        net.enable_checkpoints(
            path,
            every_events=args.checkpoint_every_events,
            every_seconds=args.checkpoint_every_seconds,
        )
    started = time.monotonic()
    summary = net.run()
    elapsed = time.monotonic() - started
    print(
        f"miss cost {summary.miss_cost}  overhead "
        f"{summary.overhead_cost}  total {summary.total_cost}  "
        f"miss latency {summary.miss_latency:.3f} hops"
    )
    print(f"(macro completed in {elapsed:.1f}s)")
    if args.summary_json is not None:
        with open(args.summary_json, "w") as handle:
            json.dump(summary.to_dict(), handle, sort_keys=True)
            handle.write("\n")
        print(f"summary written to {args.summary_json}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.experiment == "macro":
        return _run_macro(args)
    if args.checkpoint is not None or args.resume:
        print(
            "--checkpoint/--resume apply to the single-cell 'macro' run "
            "(sweeps resume via the run cache: see 'repro sweep')",
            file=sys.stderr,
        )
        return 2
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"choose from: {', '.join(EXPERIMENTS)} or 'all'", file=sys.stderr)
        return 2
    scale = resolve_scale(args.scale)
    if args.workers is not None:
        executor.configure(workers=args.workers)
    if args.no_cache:
        cache = runcache.configure(enabled=False)
    elif args.cache_dir is not None:
        cache = runcache.configure(cache_dir=args.cache_dir)
    else:
        runcache.reset()
        cache = runcache.active()  # honors $REPRO_NO_CACHE / $REPRO_CACHE_DIR
    status = 0
    for name in names:
        _, runner = EXPERIMENTS[name]
        started = time.monotonic()
        result = runner(scale, args.seed)
        elapsed = time.monotonic() - started
        print(result.report())
        print(f"({name} completed in {elapsed:.1f}s at scale={scale.name})\n")
        if not result.all_expectations_hold():
            status = 1
    if cache is not None:
        print(
            f"run cache: {cache.stats} under "
            f"{cache.root}/{cache.fingerprint} "
            f"(workers={executor.default_workers()})"
        )
    return status


def _print_cell_report(report) -> None:
    if not report:
        return
    print("per-cell report:")
    print(f"  {'label':36s} {'source':7s} {'tries':>5s} "
          f"{'retries':>7s} {'wall':>8s}")
    for cell in report:
        line = (
            f"  {str(cell.label):36s} {cell.source:7s} "
            f"{cell.attempts:5d} {cell.retries:7d} "
            f"{cell.wall_seconds:7.2f}s"
        )
        if cell.error:
            line += f"  [{cell.error}]"
        print(line)


def _cmd_sweep(args: argparse.Namespace) -> int:
    """Supervised sweep: timeouts, retries, per-cell flush, --resume."""
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"choose from: {', '.join(EXPERIMENTS)} or 'all'", file=sys.stderr)
        return 2
    scale = resolve_scale(args.scale)
    if args.workers is not None:
        executor.configure(workers=args.workers)
    executor.configure_supervision(executor.Supervision(
        cell_timeout=args.cell_timeout,
        max_retries=args.max_retries,
        retry_backoff=args.retry_backoff,
    ))
    root = args.cache_dir or os.environ.get(
        runcache.CACHE_DIR_ENV, runcache.DEFAULT_CACHE_DIR
    )
    if args.resume:
        # Serve finished cells from the persistent cache: after a hard
        # abort only unfinished work re-runs.
        cache = runcache.configure(cache_dir=root)
    else:
        # Fresh sweep, but each completed cell still flushes to disk so
        # a later --resume can pick up from an abort.
        from repro.experiments.runner import clear_cache

        clear_cache()
        cache = runcache.install(runcache.WriteOnlyCache(root))
    executor.drain_report()  # discard accounting from before this sweep
    status = 0
    for name in names:
        _, runner = EXPERIMENTS[name]
        started = time.monotonic()
        try:
            result = runner(scale, args.seed)
        except executor.SweepError as err:
            elapsed = time.monotonic() - started
            print(f"{name} FAILED after {elapsed:.1f}s: {err}")
            for label, reason in err.failures.items():
                print(f"  {label!r}: {reason}")
            status = 1
            continue
        elapsed = time.monotonic() - started
        print(result.report())
        print(f"({name} completed in {elapsed:.1f}s at scale={scale.name})\n")
        if not result.all_expectations_hold():
            status = 1
    report = executor.drain_report()
    _print_cell_report(report)
    if args.report_json is not None:
        payload = [
            {
                "label": str(cell.label),
                "source": cell.source,
                "attempts": cell.attempts,
                "retries": cell.retries,
                "wall_seconds": round(cell.wall_seconds, 6),
                "error": cell.error,
            }
            for cell in report
        ]
        with open(args.report_json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"per-cell report written to {args.report_json}")
    if cache is not None:
        print(
            f"run cache: {cache.stats} under "
            f"{cache.root}/{cache.fingerprint} "
            f"(workers={executor.default_workers()}, "
            f"resume={'on' if args.resume else 'off'})"
        )
    return status


def _cmd_profile(args: argparse.Namespace) -> int:
    """Run one experiment harness (or the macro cell) under cProfile."""
    import cProfile
    import pstats

    name = args.harness
    if name != "macro" and name not in EXPERIMENTS:
        print(f"unknown harness: {name!r}", file=sys.stderr)
        print(
            f"choose from: macro, {', '.join(EXPERIMENTS)}", file=sys.stderr
        )
        return 2
    # Profile actual simulation work: caches would reduce the profile to
    # JSON parsing, worker pools would move the work out of this
    # process.
    runcache.configure(enabled=False)
    executor.configure(workers=1)
    scale = resolve_scale(args.scale)
    profiler = cProfile.Profile()
    if name == "macro":
        from repro.core.protocol import CupNetwork

        config = scale.config(
            seed=args.seed, num_nodes=args.nodes,
            query_rate=scale.rate(100.0),
        )
        net = CupNetwork(config)
        print(
            f"profiling macro cell: n={args.nodes} paper-rate=100 "
            f"scale={scale.name}"
        )
        profiler.enable()
        net.run()
        profiler.disable()
    else:
        _, runner = EXPERIMENTS[name]
        print(f"profiling harness {name!r} at scale={scale.name}")
        profiler.enable()
        runner(scale, args.seed)
        profiler.disable()
    stats = pstats.Stats(profiler)
    stats.sort_stats(args.sort)
    stats.print_stats(args.top)
    return 0


def _cmd_quickstart(_args: argparse.Namespace) -> int:
    from repro import CupConfig, CupNetwork

    config = CupConfig(
        num_nodes=64, total_keys=1, query_rate=2.0, seed=7,
        entry_lifetime=100.0, query_start=200.0, query_duration=1000.0,
        drain=200.0,
    )
    cup = CupNetwork(config).run()
    std = CupNetwork(config.variant(mode="standard")).run()
    print("64-node CAN, one key, λ=2 q/s, 10 refresh cycles:")
    print(f"  CUP:      miss cost {cup.miss_cost:6d}  overhead "
          f"{cup.overhead_cost:6d}  total {cup.total_cost:6d}  "
          f"miss latency {cup.miss_latency:.2f} hops")
    print(f"  standard: miss cost {std.miss_cost:6d}  overhead "
          f"{std.overhead_cost:6d}  total {std.total_cost:6d}  "
          f"miss latency {std.miss_latency:.2f} hops")
    print(f"  CUP saves {std.miss_cost - cup.miss_cost} miss hops at "
          f"{cup.overhead_cost} overhead hops "
          f"({cup.saved_miss_ratio(std):.2f} saved per overhead hop)")
    return 0


def _cmd_scenarios_list(_args: argparse.Namespace) -> int:
    from repro.scenarios import SCENARIOS

    print("Built-in scenarios (adversarial compositions, invariant-checked):\n")
    for name, scenario in SCENARIOS.items():
        hazards = ",".join(sorted(scenario.hazards())) or "none"
        print(f"  {name:16s} {scenario.description}")
        print(f"  {'':16s} phases: "
              f"{', '.join(type(p).__name__ for p in scenario.phases)}"
              f"  hazards: {hazards}")
    print("\nRun one with: python -m repro scenarios run <name|all>")
    return 0


def _cmd_scenarios_run(args: argparse.Namespace) -> int:
    from repro.invariants import InvariantViolationError
    from repro.scenarios import SCENARIOS, run_scenario

    names = list(SCENARIOS) if args.scenario == "all" else [args.scenario]
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        print(f"unknown scenario(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"choose from: {', '.join(SCENARIOS)} or 'all'", file=sys.stderr)
        return 2
    status = 0
    convergence = getattr(args, "convergence", False)
    for name in names:
        started = time.monotonic()
        try:
            result = run_scenario(
                SCENARIOS[name],
                seed=args.seed,
                invariants=not args.no_invariants,
                raise_on_violation=False,
                convergence=convergence,
            )
        except InvariantViolationError as violation:  # pragma: no cover
            # raise_on_violation=False collects instead; this guards a
            # future caller flipping that default.
            print(f"scenario {name!r} FAILED: {violation}")
            status = 1
            continue
        elapsed = time.monotonic() - started
        print(result.report())
        print(f"({name} completed in {elapsed:.1f}s)\n")
        if not args.no_invariants and not result.ok:
            status = 1
    return status


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Rerun any built-in scenario over a seeded unreliable transport."""
    from repro.scenarios import SCENARIOS, run_scenario, with_chaos

    names = list(SCENARIOS) if args.scenario == "all" else [args.scenario]
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        print(f"unknown scenario(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"choose from: {', '.join(SCENARIOS)} or 'all'", file=sys.stderr)
        return 2
    if args.loss == 0.0 and args.duplicate == 0.0 and args.jitter == 0.0:
        print(
            "nothing to inject: set at least one of --loss, --duplicate, "
            "--jitter above zero",
            file=sys.stderr,
        )
        return 2
    status = 0
    for name in names:
        chaotic = with_chaos(
            SCENARIOS[name],
            loss=args.loss, duplicate=args.duplicate, jitter=args.jitter,
        )
        started = time.monotonic()
        result = run_scenario(
            chaotic,
            seed=args.seed,
            raise_on_violation=False,
            convergence=True,
        )
        elapsed = time.monotonic() - started
        print(result.report())
        print(f"({chaotic.name} completed in {elapsed:.1f}s)\n")
        if not result.ok:
            status = 1
    return status


def _node_config_from_args(args, joining: bool):
    from repro.net.daemon import LiveNodeConfig

    peers = tuple(args.peers) if joining else ()
    return LiveNodeConfig(
        host=args.host,
        port=args.port,
        node_id=args.node_id,
        peers=peers,
        mode=args.mode,
        policy=args.policy,
        pfu_timeout=args.pfu_timeout,
        keepalive_period=args.keepalive_period,
        keepalive_misses=args.keepalive_misses,
        codec=args.codec,
        invariants=not args.no_invariants,
        recovery=not args.no_recovery,
        quiet=args.quiet,
        state_dir=args.state_dir,
        snapshot_interval=args.snapshot_interval,
    )


def _cmd_node_serve(args) -> int:
    from repro.net.daemon import serve

    return serve(_node_config_from_args(args, joining=False))


def _cmd_node_join(args) -> int:
    from repro.net.daemon import serve

    return serve(_node_config_from_args(args, joining=True))


def _node_request(args, call) -> int:
    """Run one client call against ``args.node``; print the reply."""
    from repro.net.client import NodeClient
    from repro.net.wire import WireError

    try:
        with NodeClient(args.node, timeout=args.timeout) as client:
            reply = call(client)
    except ConnectionRefusedError:
        from repro.net.client import parse_address

        host, port = parse_address(args.node)
        print(f"error: no daemon at {host}:{port}", file=sys.stderr)
        return 1
    except (OSError, WireError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(reply, indent=2, sort_keys=True))
    if reply.get("t") == "error" or reply.get("ok") is False:
        return 1
    return 0


def _cmd_node_put(args) -> int:
    return _node_request(args, lambda client: client.put(
        args.key, args.replica_id, address=args.address,
        lifetime=args.lifetime, event=args.event,
    ))


def _cmd_node_get(args) -> int:
    return _node_request(
        args, lambda client: client.get(args.key, timeout=args.wait)
    )


def _cmd_node_info(args) -> int:
    return _node_request(args, lambda client: client.info())


def _cmd_node_audit(args) -> int:
    return _node_request(args, lambda client: client.audit())


def _cmd_node_stop(args) -> int:
    return _node_request(args, lambda client: client.stop())


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {text!r}"
        )
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CUP (Roussopoulos & Baker) reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_parser = sub.add_parser("list", help="list available experiments")
    list_parser.set_defaults(fn=_cmd_list)

    run_parser = sub.add_parser("run", help="run an experiment")
    run_parser.add_argument(
        "experiment",
        help=f"one of: {', '.join(EXPERIMENTS)}, 'all', or 'macro' "
             "(one long checkpointable cell)",
    )
    run_parser.add_argument(
        "--scale", default=None, choices=["tiny", "small", "paper"],
        help="parameter preset (default: $REPRO_SCALE or 'small')",
    )
    run_parser.add_argument("--seed", type=int, default=42)
    run_parser.add_argument(
        "--workers", type=_positive_int, default=None, metavar="N",
        help="worker processes for independent sweep cells "
             "(default: $REPRO_WORKERS or 1 = serial)",
    )
    run_parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent run cache (always re-simulate)",
    )
    run_parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="run-cache directory (default: $REPRO_CACHE_DIR or "
             ".repro-cache)",
    )
    run_parser.add_argument(
        "--nodes", type=_positive_int, default=4096, metavar="N",
        help="network size for the 'macro' cell (default 4096)",
    )
    run_parser.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="('macro' only) periodically snapshot the run to PATH; "
             "a killed run resumes from the latest snapshot",
    )
    run_parser.add_argument(
        "--resume", action="store_true",
        help="('macro' only) resume from --checkpoint PATH instead of "
             "starting fresh",
    )
    run_parser.add_argument(
        "--checkpoint-every-events", type=_positive_int, default=None,
        metavar="N", help="snapshot cadence in simulation events",
    )
    run_parser.add_argument(
        "--checkpoint-every-seconds", type=float, default=None,
        metavar="S", help="snapshot cadence in simulated seconds",
    )
    run_parser.add_argument(
        "--summary-json", default=None, metavar="PATH",
        help="('macro' only) write the final summary as canonical "
             "sorted-keys JSON (for byte comparison across resumes)",
    )
    run_parser.set_defaults(fn=_cmd_run)

    sweep_parser = sub.add_parser(
        "sweep",
        help="run experiments under the supervised executor (per-cell "
             "timeouts, retries, incremental flush, --resume)",
    )
    sweep_parser.add_argument(
        "experiment", help=f"one of: {', '.join(EXPERIMENTS)}, or 'all'"
    )
    sweep_parser.add_argument(
        "--scale", default=None, choices=["tiny", "small", "paper"],
        help="parameter preset (default: $REPRO_SCALE or 'small')",
    )
    sweep_parser.add_argument("--seed", type=int, default=42)
    sweep_parser.add_argument(
        "--workers", type=_positive_int, default=None, metavar="N",
        help="worker processes (default: $REPRO_WORKERS or 1 = serial)",
    )
    sweep_parser.add_argument(
        "--resume", action="store_true",
        help="serve already-finished cells from the run cache; only "
             "unfinished work re-runs",
    )
    sweep_parser.add_argument(
        "--cell-timeout", type=float, default=None, metavar="S",
        help="per-attempt wall-clock budget for one cell "
             "(default: unlimited)",
    )
    sweep_parser.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="retries per cell after worker death or timeout (default 2)",
    )
    sweep_parser.add_argument(
        "--retry-backoff", type=float, default=0.5, metavar="S",
        help="base of the exponential retry backoff (default 0.5s)",
    )
    sweep_parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="run-cache directory (default: $REPRO_CACHE_DIR or "
             ".repro-cache)",
    )
    sweep_parser.add_argument(
        "--report-json", default=None, metavar="PATH",
        help="write the per-cell wall-time/retry report as JSON "
             "(CI artifact)",
    )
    sweep_parser.set_defaults(fn=_cmd_sweep)

    quick_parser = sub.add_parser(
        "quickstart", help="tiny CUP vs standard caching comparison"
    )
    quick_parser.set_defaults(fn=_cmd_quickstart)

    profile_parser = sub.add_parser(
        "profile",
        help="run one harness (or the macro cell) under cProfile",
    )
    profile_parser.add_argument(
        "harness",
        help=f"'macro' (one network-size cell) or one of: "
             f"{', '.join(EXPERIMENTS)}",
    )
    profile_parser.add_argument(
        "--scale", default=None, choices=["tiny", "small", "paper"],
        help="parameter preset (default: $REPRO_SCALE or 'small')",
    )
    profile_parser.add_argument("--seed", type=int, default=42)
    profile_parser.add_argument(
        "--nodes", type=_positive_int, default=1024, metavar="N",
        help="network size for the 'macro' cell (default 1024)",
    )
    profile_parser.add_argument(
        "--top", type=_positive_int, default=25, metavar="N",
        help="number of hot spots to print (default 25)",
    )
    profile_parser.add_argument(
        "--sort", default="cumulative",
        choices=["cumulative", "tottime", "calls"],
        help="pstats sort order (default: cumulative)",
    )
    profile_parser.set_defaults(fn=_cmd_profile)

    scenarios_parser = sub.add_parser(
        "scenarios", help="adversarial scenario engine"
    )
    scenarios_sub = scenarios_parser.add_subparsers(
        dest="scenarios_command", required=True
    )
    scen_list = scenarios_sub.add_parser(
        "list", help="list the built-in scenarios"
    )
    scen_list.set_defaults(fn=_cmd_scenarios_list)
    scen_run = scenarios_sub.add_parser(
        "run", help="run a scenario with runtime invariants"
    )
    scen_run.add_argument(
        "scenario", help="a scenario name (see 'scenarios list') or 'all'"
    )
    scen_run.add_argument("--seed", type=int, default=42)
    scen_run.add_argument(
        "--no-invariants", action="store_true",
        help="run without the runtime invariant checker",
    )
    scen_run.add_argument(
        "--convergence", action="store_true",
        help="also run the quiescence convergence audit (subscribed "
             "caches hold the authority's settled versions or recorded "
             "a degraded read)",
    )
    scen_run.set_defaults(fn=_cmd_scenarios_run)

    chaos_parser = sub.add_parser(
        "chaos",
        help="rerun a built-in scenario over an unreliable transport "
             "(seeded loss/duplication/jitter + recovery + convergence "
             "audit)",
    )
    chaos_parser.add_argument(
        "scenario", help="a scenario name (see 'scenarios list') or 'all'"
    )
    chaos_parser.add_argument("--seed", type=int, default=42)
    chaos_parser.add_argument(
        "--loss", type=float, default=0.2, metavar="P",
        help="per-send loss probability (default 0.2)",
    )
    chaos_parser.add_argument(
        "--duplicate", type=float, default=0.1, metavar="P",
        help="per-send duplicate-delivery probability (default 0.1)",
    )
    chaos_parser.add_argument(
        "--jitter", type=float, default=0.1, metavar="SECONDS",
        help="max extra per-send delay (default 0.1)",
    )
    chaos_parser.set_defaults(fn=_cmd_chaos)

    node_parser = sub.add_parser(
        "node",
        help="live CUP node daemon and its client (serve/join/put/get)",
    )
    node_sub = node_parser.add_subparsers(dest="node_command", required=True)

    def _add_serve_args(p, joining: bool):
        p.add_argument(
            "--host", default="127.0.0.1",
            help="listen address (default 127.0.0.1)",
        )
        p.add_argument(
            "--port", type=int, default=0 if joining else 9400,
            help="listen port (default %(default)s; 0 = pick a free port)",
        )
        p.add_argument(
            "--node-id", default=None, metavar="HOST:PORT",
            help="cluster identity; defaults to the bound host:port and "
                 "must stay dialable (ids double as addresses)",
        )
        p.add_argument(
            "--mode", default="cup", choices=["cup", "standard"],
            help="CUP propagation or standard pull-through caching",
        )
        p.add_argument(
            "--policy", default="second-chance", metavar="POLICY",
            help="cut-off policy spec (default second-chance)",
        )
        p.add_argument("--pfu-timeout", type=float, default=3.0,
                       metavar="S", help="pending-first-update timeout")
        p.add_argument("--keepalive-period", type=float, default=2.0,
                       metavar="S", help="heartbeat period (default 2s)")
        p.add_argument(
            "--keepalive-misses", type=_positive_int, default=3,
            metavar="N", help="silent periods before suspecting a peer",
        )
        p.add_argument(
            "--codec", default="json", metavar="NAME",
            help="wire codec: json (always) or msgpack (if installed)",
        )
        p.add_argument(
            "--no-invariants", action="store_true",
            help="run without the attached invariant checker",
        )
        p.add_argument(
            "--no-recovery", action="store_true",
            help="disable gap-detection/NACK recovery",
        )
        p.add_argument(
            "--state-dir", default=None, metavar="DIR",
            help="persist durable node state here and warm-rejoin from "
                 "it at boot (default: stateless)",
        )
        p.add_argument(
            "--snapshot-interval", type=float, default=5.0, metavar="S",
            help="write-behind snapshot cadence with --state-dir "
                 "(default 5s)",
        )
        p.add_argument("--quiet", action="store_true",
                       help="suppress membership/lifecycle logging")

    node_serve = node_sub.add_parser(
        "serve", help="found a cluster: listen and host a CUP node"
    )
    _add_serve_args(node_serve, joining=False)
    node_serve.set_defaults(fn=_cmd_node_serve)

    node_join = node_sub.add_parser(
        "join", help="serve, then join an existing cluster via seed peers"
    )
    _add_serve_args(node_join, joining=True)
    node_join.add_argument(
        "peers", nargs="+", metavar="HOST:PORT",
        help="one or more existing members to join through",
    )
    node_join.set_defaults(fn=_cmd_node_join)

    def _add_client_args(p):
        p.add_argument(
            "--node", default="127.0.0.1:9400", metavar="HOST:PORT",
            help="daemon to talk to (default 127.0.0.1:9400)",
        )
        p.add_argument("--timeout", type=float, default=10.0, metavar="S",
                       help="socket timeout (default 10s)")

    node_put = node_sub.add_parser(
        "put", help="announce a replica birth/refresh for a key"
    )
    _add_client_args(node_put)
    node_put.add_argument("key")
    node_put.add_argument("replica_id")
    node_put.add_argument("--address", default="",
                          help="content address the replica serves")
    node_put.add_argument("--lifetime", type=float, default=300.0,
                          metavar="S", help="entry lifetime (default 300s)")
    node_put.add_argument(
        "--event", default="birth", choices=["birth", "refresh", "death"],
        help="replica control event (default birth)",
    )
    node_put.set_defaults(fn=_cmd_node_put)

    node_get = node_sub.add_parser(
        "get", help="query a key through the CUP machinery"
    )
    _add_client_args(node_get)
    node_get.add_argument("key")
    node_get.add_argument(
        "--wait", type=float, default=5.0, metavar="S",
        help="how long the daemon may wait for fresh entries (default 5s)",
    )
    node_get.set_defaults(fn=_cmd_node_get)

    node_info = node_sub.add_parser(
        "info", help="membership, transport counters, recovery report"
    )
    _add_client_args(node_info)
    node_info.set_defaults(fn=_cmd_node_info)

    node_audit = node_sub.add_parser(
        "audit", help="run the invariant checker's quiescence audit"
    )
    _add_client_args(node_audit)
    node_audit.set_defaults(fn=_cmd_node_audit)

    node_stop = node_sub.add_parser(
        "stop", help="ask a daemon to leave the cluster and exit"
    )
    _add_client_args(node_stop)
    node_stop.set_defaults(fn=_cmd_node_stop)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
