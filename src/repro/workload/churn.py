"""Node arrival/departure schedules (§2.9 of the paper).

The peer-to-peer model assumes nodes continuously join and leave; CUP
must handle both seamlessly.  A :class:`ChurnSchedule` scripts membership
events against a :class:`~repro.core.protocol.CupNetwork`-compatible
interface (``join_node`` / ``leave_node``), either from an explicit event
list or as a Poisson churn process.
"""

from __future__ import annotations

from typing import List, Protocol, Tuple

import numpy as np

from repro.sim.engine import Simulator
from repro.sim.network import NodeId


class ChurnTarget(Protocol):
    """What a churn schedule drives (implemented by CupNetwork)."""

    def join_node(self, node_id: NodeId) -> None: ...  # pragma: no cover

    def leave_node(self, node_id: NodeId, graceful: bool = True) -> None:
        ...  # pragma: no cover

    def live_node_ids(self) -> List[NodeId]: ...  # pragma: no cover


class ChurnSchedule:
    """Scripted or random membership events.

    Explicit events are (time, action, node_id, graceful) tuples with
    action ``"join"`` or ``"leave"``; :meth:`poisson` generates a random
    alternating schedule instead.
    """

    def __init__(self, sim: Simulator, target: ChurnTarget):
        self._sim = sim
        self._target = target
        self.log: List[Tuple[float, str, NodeId]] = []
        self._joined_counter = 0

    # ------------------------------------------------------------------
    # Explicit scheduling
    # ------------------------------------------------------------------

    def schedule_join(self, at: float, node_id: NodeId) -> None:
        self._sim.schedule_at(at, self._do_join, node_id)

    def schedule_leave(
        self, at: float, node_id: NodeId, graceful: bool = True
    ) -> None:
        self._sim.schedule_at(at, self._do_leave, node_id, graceful)

    def _do_join(self, node_id: NodeId) -> None:
        self._target.join_node(node_id)
        self.log.append((self._sim.now, "join", node_id))

    def _do_leave(self, node_id: NodeId, graceful: bool) -> None:
        if node_id not in self._target.live_node_ids():
            return  # departed already (e.g. a duplicate event)
        self._target.leave_node(node_id, graceful=graceful)
        self.log.append(
            (self._sim.now, "leave" if graceful else "fail", node_id)
        )

    # ------------------------------------------------------------------
    # Random churn
    # ------------------------------------------------------------------

    def poisson(
        self,
        rate: float,
        start: float,
        end: float,
        rng: np.random.Generator,
        join_fraction: float = 0.5,
        graceful_fraction: float = 0.5,
        name_prefix: str = "churn",
    ) -> int:
        """Schedule Poisson membership events in ``[start, end)``.

        Each event is a join with probability ``join_fraction`` (a brand
        new node) or otherwise a departure of a uniformly random live
        node, graceful with probability ``graceful_fraction``.  Returns
        the number of events scheduled.
        """
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        count = 0
        t = start
        while True:
            t += float(rng.exponential(1.0 / rate))
            if t >= end:
                return count
            if rng.random() < join_fraction:
                self._joined_counter += 1
                node_id = f"{name_prefix}-{self._joined_counter}"
                self.schedule_join(t, node_id)
            else:
                graceful = bool(rng.random() < graceful_fraction)
                self._sim.schedule_at(t, self._leave_random, rng, graceful)
            count += 1

    def _leave_random(self, rng: np.random.Generator, graceful: bool) -> None:
        members = self._target.live_node_ids()
        if len(members) <= 2:
            return  # keep a routable network
        victim = members[int(rng.integers(len(members)))]
        self._do_leave(victim, graceful)
