"""Arrival processes for query workloads.

"Query arrivals were generated according to a Poisson process" (§3.2).
The processes here yield inter-arrival gaps one at a time, so the
workload driver can schedule each arrival as the previous one fires —
a λ=1000 q/s run never materializes its millions of events up front.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.sim.random import BufferedExponentials


class PoissonArrivals:
    """Exponential inter-arrival gaps at a fixed aggregate rate.

    Gaps are drawn from the generator in blocks (the rate is fixed for
    the process lifetime) and served as plain floats; the sequence is
    bit-identical to per-call scalar draws, but a λ=1000 q/s run stops
    paying numpy's scalar-dispatch overhead once per arrival.

    Parameters
    ----------
    rate:
        Aggregate arrivals per second across the whole network (the
        paper's λ).
    rng:
        Seeded generator; dedicating one stream to arrivals keeps the
        workload identical across protocol variants.
    """

    def __init__(self, rate: float, rng: np.random.Generator):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = rate
        self._rng = rng
        self._gaps = BufferedExponentials(rng, 1.0 / rate)

    def next_gap(self) -> float:
        """Seconds until the next arrival."""
        return self._gaps.next()

    def __iter__(self) -> Iterator[float]:
        while True:
            yield self.next_gap()


class DeterministicArrivals:
    """Scripted inter-arrival gaps, for tests and worked examples.

    Yields the provided gaps in order; :meth:`next_gap` raises
    ``StopIteration`` when exhausted, which the workload driver treats as
    the end of the query phase.
    """

    def __init__(self, gaps: Sequence[float]):
        for gap in gaps:
            if gap < 0:
                raise ValueError(f"negative inter-arrival gap: {gap}")
        self._gaps = list(gaps)
        self._index = 0

    def next_gap(self) -> float:
        if self._index >= len(self._gaps):
            raise StopIteration
        gap = self._gaps[self._index]
        self._index += 1
        return gap

    @property
    def remaining(self) -> int:
        return len(self._gaps) - self._index
