"""Query trace capture, persistence and replay.

The paper's evaluation leans on synthetic workloads because "real data
traces of completely decentralized peer-to-peer networks" were not
collectable in 2002 (§3.2).  This module closes the loop for users who
*do* have traces: any run's query stream can be captured, saved to a
plain TSV file, and replayed verbatim into a different protocol
configuration — the strongest possible form of paired comparison, and an
import path for real-world traces (one line per query: time, node, key).

>>> trace = QueryTrace.capture(network)          # before network.run()
>>> network.run()
>>> twin = CupNetwork(config.variant(mode="standard"))
>>> trace.replay_into(twin)
>>> twin.run()                                   # identical query stream
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Tuple

from repro.sim.network import NodeId


class QueryTrace:
    """An ordered record of (time, posting node, key) query events."""

    def __init__(self, records: Optional[List[Tuple[float, NodeId, str]]] = None):
        self.records: List[Tuple[float, NodeId, str]] = list(records or [])

    # ------------------------------------------------------------------
    # Capture
    # ------------------------------------------------------------------

    @classmethod
    def capture(cls, network) -> "QueryTrace":
        """Record every query the network's workload posts.

        Call before ``network.run()``; wraps the network's
        ``post_query`` entry point (the workload driver resolves it at
        attach time, so capture must precede ``attach_workload``/run).
        """
        trace = cls()
        original = network.post_query

        def recording_post(node_id, key):
            trace.records.append((network.sim.now, node_id, key))
            return original(node_id, key)

        network.post_query = recording_post
        return trace

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------

    def replay_into(self, network, strict: bool = False) -> int:
        """Schedule this trace's queries into ``network``.

        Returns the number of events scheduled.  Queries aimed at nodes
        that are not members of the target network are skipped (or raise
        when ``strict``) — replaying a churn-heavy trace into a smaller
        network is a legitimate use.
        """
        scheduled = 0
        for at, node_id, key in self.records:
            if node_id not in network.nodes:
                if strict:
                    raise ValueError(
                        f"trace names node {node_id!r} which is not a "
                        f"member of the target network"
                    )
                continue
            network.sim.schedule_at(at, self._post, network, node_id, key)
            scheduled += 1
        return scheduled

    @staticmethod
    def _post(network, node_id: NodeId, key: str) -> None:
        # Membership may have changed between scheduling and firing.
        if node_id in network.nodes:
            network.post_query(node_id, key)

    # ------------------------------------------------------------------
    # Persistence (TSV: time <TAB> node <TAB> key)
    # ------------------------------------------------------------------

    def save(self, path) -> None:
        """Write the trace as tab-separated text.

        Times use ``repr`` precision so a save/load round-trip replays at
        the exact same instants (bit-identical simulation).
        """
        lines = [
            f"{at!r}\t{node_id}\t{key}\n"
            for at, node_id, key in self.records
        ]
        Path(path).write_text("".join(lines), encoding="utf-8")

    @classmethod
    def load(cls, path, int_node_ids: bool = True) -> "QueryTrace":
        """Read a trace written by :meth:`save` (or hand-authored).

        ``int_node_ids`` converts numeric node columns back to integers,
        matching the ids the built-in overlays use.
        """
        records: List[Tuple[float, NodeId, str]] = []
        for line_number, line in enumerate(
            Path(path).read_text(encoding="utf-8").splitlines(), start=1
        ):
            if not line.strip() or line.startswith("#"):
                continue
            parts = line.split("\t")
            if len(parts) != 3:
                raise ValueError(
                    f"{path}:{line_number}: expected 3 tab-separated "
                    f"fields, got {len(parts)}"
                )
            at_text, node_text, key = parts
            node_id: NodeId = node_text
            if int_node_ids:
                try:
                    node_id = int(node_text)
                except ValueError:
                    node_id = node_text
            records.append((float(at_text), node_id, key))
        return cls(records)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def keys(self) -> set:
        return {key for _, __, key in self.records}

    def span(self) -> Tuple[float, float]:
        """(first, last) event times; (0, 0) when empty."""
        if not self.records:
            return (0.0, 0.0)
        times = [at for at, _, __ in self.records]
        return (min(times), max(times))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lo, hi = self.span()
        return (
            f"QueryTrace({len(self.records)} queries, "
            f"t=[{lo:.1f}, {hi:.1f}], {len(self.keys())} keys)"
        )
