"""Key selection: which key does each query ask for?

The paper's simulator takes "the distribution of queries for keys" as an
input (§3.2) without pinning one down; the experiments sweep query rates
against it.  We provide the standard choices:

* :class:`UniformKeys` — every key equally likely (the least favorable
  case for CUP, since popularity concentrates nowhere).
* :class:`ZipfKeys` — rank-frequency power law, the canonical model for
  content popularity in P2P and web workloads.
* :class:`FlashCrowdKeys` — a time-windowed hot spot over a base
  distribution, modelling the paper's "keys that become suddenly hot"
  (§3.2) and the flash-crowd scenario of §2.8.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Sequence

import numpy as np

from repro.sim.random import BufferedIntegers, BufferedUniforms


class KeySelector(ABC):
    """Draws the key for each query arrival (may depend on sim time)."""

    @abstractmethod
    def select(self, now: float) -> str:
        """The key queried by an arrival at simulation time ``now``."""


class UniformKeys(KeySelector):
    """Uniformly random key per query.

    Indices are drawn in blocks (same stream as scalar draws — the key
    set is fixed) so per-query selection is a list index, not a numpy
    scalar call.
    """

    def __init__(self, keys: Sequence[str], rng: np.random.Generator):
        if not keys:
            raise ValueError("need at least one key")
        self._keys = list(keys)
        self._rng = rng
        self._indices = BufferedIntegers(rng, len(self._keys))

    def select(self, now: float) -> str:
        return self._keys[self._indices.next()]


class ZipfKeys(KeySelector):
    """Zipf(s) popularity over a finite key set.

    Key at popularity rank ``r`` (1-based) is drawn with probability
    proportional to ``r**-s``.  Ranks are assigned by a seeded shuffle so
    the hot keys are not systematically the lexicographically first ones
    (which would correlate hot keys with authority placement).
    """

    def __init__(self, keys: Sequence[str], s: float, rng: np.random.Generator):
        if not keys:
            raise ValueError("need at least one key")
        if s < 0:
            raise ValueError(f"Zipf exponent must be >= 0, got {s}")
        self._keys: List[str] = list(keys)
        rng.shuffle(self._keys)
        self.s = s
        weights = np.arange(1, len(self._keys) + 1, dtype=float) ** -s
        self._cdf = np.cumsum(weights / weights.sum())
        self._rng = rng
        # Blocks are drawn only after the seeded shuffle above, so the
        # served uniforms match scalar draws bit for bit.
        self._uniforms = BufferedUniforms(rng)

    def select(self, now: float) -> str:
        u = self._uniforms.random()
        index = int(np.searchsorted(self._cdf, u, side="left"))
        return self._keys[min(index, len(self._keys) - 1)]

    def probability(self, rank: int) -> float:
        """Selection probability of the key at 1-based rank ``rank``."""
        if not 1 <= rank <= len(self._keys):
            raise ValueError(f"rank out of range: {rank}")
        lo = self._cdf[rank - 2] if rank >= 2 else 0.0
        return float(self._cdf[rank - 1] - lo)


class FlashCrowdKeys(KeySelector):
    """A hot key grabs a probability share during a time window.

    Outside ``[start, end)`` selection falls through to the base
    selector; inside, each query targets ``hot_key`` with probability
    ``hot_share`` and falls through otherwise.
    """

    def __init__(
        self,
        base: KeySelector,
        hot_key: str,
        start: float,
        end: float,
        hot_share: float,
        rng: np.random.Generator,
    ):
        if not 0.0 <= hot_share <= 1.0:
            raise ValueError(f"hot_share must be in [0, 1], got {hot_share}")
        if end <= start:
            raise ValueError(f"empty flash-crowd window: [{start}, {end})")
        self._base = base
        self.hot_key = hot_key
        self.start = start
        self.end = end
        self.hot_share = hot_share
        self._rng = rng

    def select(self, now: float) -> str:
        if self.start <= now < self.end and self._rng.random() < self.hot_share:
            return self.hot_key
        return self._base.select(now)


class RotatingHotKeys(KeySelector):
    """Popularity drift: the hot spot moves across keys over time.

    Inside ``[start, end)`` each query targets the currently hot key
    with probability ``hot_share``; the hot key rotates through
    ``hot_keys`` every ``period`` seconds, modelling the drift of a
    Zipf head (yesterday's hot content cools while new content heats
    up).  Outside the window — and for the cold share inside it —
    selection falls through to the base selector.
    """

    def __init__(
        self,
        base: KeySelector,
        hot_keys: Sequence[str],
        start: float,
        end: float,
        period: float,
        hot_share: float,
        rng: np.random.Generator,
    ):
        if not hot_keys:
            raise ValueError("need at least one hot key to rotate through")
        if not 0.0 <= hot_share <= 1.0:
            raise ValueError(f"hot_share must be in [0, 1], got {hot_share}")
        if end <= start:
            raise ValueError(f"empty drift window: [{start}, {end})")
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self._base = base
        self.hot_keys = list(hot_keys)
        self.start = start
        self.end = end
        self.period = period
        self.hot_share = hot_share
        self._rng = rng

    def hot_key_at(self, now: float) -> str:
        """The key holding the popularity head at time ``now``."""
        slot = int((now - self.start) / self.period)
        return self.hot_keys[slot % len(self.hot_keys)]

    def select(self, now: float) -> str:
        if self.start <= now < self.end and self._rng.random() < self.hot_share:
            return self.hot_key_at(now)
        return self._base.select(now)
