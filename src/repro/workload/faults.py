"""Capacity fault schedules (§3.7 of the paper).

The paper studies CUP when nodes cannot propagate all updates:

* **Up-And-Down** — after a five-minute warm-up, a random twenty percent
  of nodes drop to reduced capacity for ten minutes, then recover; after
  five minutes of stability another random set drops; repeating through
  the query phase.
* **Once-Down-Always-Down** — after the warm-up, the randomly selected
  nodes drop and stay degraded for the rest of the run.

A schedule is a list of timed actions on node subsets; it applies them by
swapping each victim's :class:`~repro.core.channels.CapacityConfig`.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

import numpy as np

from repro.core.channels import CapacityConfig
from repro.sim.engine import Simulator
from repro.sim.network import NodeId

SetCapacityFn = Callable[[NodeId, CapacityConfig], None]


class CapacityFaultSchedule:
    """Timed capacity reductions over random node subsets.

    Parameters
    ----------
    sim:
        Event engine.
    node_ids:
        The population to draw victims from.
    set_capacity:
        Callback applying a capacity to one node.
    fraction:
        Share of nodes degraded per episode (paper: 0.2).
    reduced:
        Capacity fraction during an episode (paper's ``c``; 0.0 means the
        victims push no maintenance updates at all).
    rng:
        Stream for victim selection.
    """

    def __init__(
        self,
        sim: Simulator,
        node_ids: Sequence[NodeId],
        set_capacity: SetCapacityFn,
        fraction: float,
        reduced: float,
        rng: np.random.Generator,
    ):
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        if not 0.0 <= reduced <= 1.0:
            raise ValueError(f"reduced must be in [0, 1], got {reduced}")
        self._sim = sim
        self._node_ids = list(node_ids)
        self._set_capacity = set_capacity
        self.fraction = fraction
        self.reduced = reduced
        self._rng = rng
        self._degraded: List[NodeId] = []
        #: (time, event) log for tests and narrations.
        self.log: List[Tuple[float, str]] = []

    # ------------------------------------------------------------------
    # Episode primitives
    # ------------------------------------------------------------------

    def _pick_victims(self) -> List[NodeId]:
        count = int(round(self.fraction * len(self._node_ids)))
        if count == 0:
            return []
        indexes = self._rng.choice(len(self._node_ids), size=count, replace=False)
        return [self._node_ids[int(i)] for i in indexes]

    def degrade(self) -> None:
        """Start an episode: select victims and reduce their capacity."""
        self.restore()
        self._degraded = self._pick_victims()
        for node_id in self._degraded:
            self._set_capacity(node_id, CapacityConfig(fraction=self.reduced))
        self.log.append((self._sim.now, f"degrade {len(self._degraded)} nodes"))

    def restore(self) -> None:
        """End the current episode: restore victims to full capacity."""
        for node_id in self._degraded:
            self._set_capacity(node_id, CapacityConfig())
        if self._degraded:
            self.log.append(
                (self._sim.now, f"restore {len(self._degraded)} nodes")
            )
        self._degraded = []

    @property
    def currently_degraded(self) -> List[NodeId]:
        return list(self._degraded)


def up_and_down(
    schedule: CapacityFaultSchedule,
    start: float,
    end: float,
    warmup: float = 300.0,
    down_for: float = 600.0,
    stable_for: float = 300.0,
) -> None:
    """Arrange the paper's Up-And-Down episodes on ``schedule``.

    After ``warmup`` seconds past ``start``: degrade for ``down_for``
    seconds, restore, wait ``stable_for`` seconds, repeat with a fresh
    random victim set, through ``end``.
    """
    t = start + warmup
    while t < end:
        schedule._sim.schedule_at(t, schedule.degrade)
        restore_at = min(t + down_for, end)
        schedule._sim.schedule_at(restore_at, schedule.restore)
        t = restore_at + stable_for


def once_down_always_down(
    schedule: CapacityFaultSchedule, start: float, warmup: float = 300.0
) -> None:
    """Arrange the paper's Once-Down-Always-Down single episode.

    After the warm-up the selected nodes degrade and never recover.
    """
    schedule._sim.schedule_at(start + warmup, schedule.degrade)
