"""Workload generation: query arrivals, key popularity, faults, churn.

The paper's simulations (§3.2) drive the network with Poisson query
arrivals at a configurable aggregate rate, posted at uniformly random
nodes, for keys drawn from a configurable distribution; replica lifetimes
and refresh-at-expiration govern update traffic; and §3.7 injects
capacity faults on random node subsets.

* :mod:`~repro.workload.arrivals` — Poisson and deterministic arrival
  processes (self-scheduling: no event pre-materialization).
* :mod:`~repro.workload.keyspace` — uniform, Zipf and flash-crowd key
  selectors.
* :mod:`~repro.workload.generator` — the query workload driver.
* :mod:`~repro.workload.faults` — the Up-And-Down and
  Once-Down-Always-Down capacity fault schedules (§3.7).
* :mod:`~repro.workload.churn` — node arrival/departure schedules (§2.9).
"""

from repro.workload.arrivals import DeterministicArrivals, PoissonArrivals
from repro.workload.churn import ChurnSchedule
from repro.workload.faults import (
    CapacityFaultSchedule,
    once_down_always_down,
    up_and_down,
)
from repro.workload.generator import QueryWorkload
from repro.workload.keyspace import (
    FlashCrowdKeys,
    KeySelector,
    UniformKeys,
    ZipfKeys,
)
from repro.workload.tracefile import QueryTrace

__all__ = [
    "CapacityFaultSchedule",
    "ChurnSchedule",
    "DeterministicArrivals",
    "FlashCrowdKeys",
    "KeySelector",
    "PoissonArrivals",
    "QueryTrace",
    "QueryWorkload",
    "UniformKeys",
    "ZipfKeys",
    "once_down_always_down",
    "up_and_down",
]
