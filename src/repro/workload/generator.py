"""The query workload driver.

Couples an arrival process to a key selector and a node selector and
posts each query at its node as a simulation event.  Scheduling is
self-perpetuating — each arrival schedules the next — so memory use is
O(1) in the number of queries, and a λ=1000 q/s × 3000 s run (three
million queries, §3.2's heaviest operating point) stays tractable.

Nodes are "randomly selected to post the queries" (§3.2); the default
node selector draws uniformly from the network's current membership so
churn is handled naturally.
"""

from __future__ import annotations

from typing import Callable, List

import numpy as np

from repro.sim.engine import Simulator
from repro.sim.network import NodeId
from repro.workload.arrivals import PoissonArrivals
from repro.workload.keyspace import KeySelector

PostFn = Callable[[NodeId, str], None]
NodeSelector = Callable[[float], NodeId]


class QueryWorkload:
    """Posts queries into the network for a bounded time window.

    Parameters
    ----------
    sim:
        Event engine.
    arrivals:
        Arrival process (``next_gap`` protocol); ``StopIteration`` ends
        the workload early.
    key_selector:
        Which key each query asks for.
    node_selector:
        Which node posts it (a callable of the current time, so churn-
        aware selectors can consult live membership).
    post_fn:
        Callback ``(node_id, key)`` that injects the query.
    start, duration:
        The query phase: first arrival no earlier than ``start``, no
        arrivals at or beyond ``start + duration``.
    """

    def __init__(
        self,
        sim: Simulator,
        arrivals: PoissonArrivals,
        key_selector: KeySelector,
        node_selector: NodeSelector,
        post_fn: PostFn,
        start: float,
        duration: float,
    ):
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        self._sim = sim
        self._arrivals = arrivals
        self._keys = key_selector
        self._nodes = node_selector
        self._post = post_fn
        self.start = start
        self.end = start + duration
        self.posted = 0
        self._stopped = False

    def begin(self) -> None:
        """Schedule the first arrival; call once before running the sim."""
        self._schedule_next(self.start)

    def stop(self) -> None:
        """Stop issuing further queries (already-posted ones stand)."""
        self._stopped = True

    def _schedule_next(self, not_before: float) -> None:
        if self._stopped:
            return
        try:
            gap = self._arrivals.next_gap()
        except StopIteration:
            return
        at = max(not_before, self._sim.now) + gap
        if at >= self.end:
            return
        self._sim.schedule_at(at, self._fire)

    def _fire(self) -> None:
        if self._stopped:
            return
        now = self._sim.now
        node = self._nodes(now)
        key = self._keys.select(now)
        self.posted += 1
        self._post(node, key)
        self._schedule_next(now)


class UniformNodeSelector:
    """Uniform choice over current membership (re-read every arrival).

    Draws are buffered in blocks while the membership count is stable
    (bit-identical to scalar draws); a churn event that changes the count
    starts a fresh buffer.  A class rather than a closure so the
    selector — and the workload holding it — pickles into checkpoints,
    with the buffer position carried along.
    """

    __slots__ = ("_members_fn", "_rng", "_buf")

    def __init__(
        self, members_fn: Callable[[], List[NodeId]], rng: np.random.Generator
    ):
        self._members_fn = members_fn
        self._rng = rng
        self._buf = None

    def __call__(self, now: float) -> NodeId:
        members = self._members_fn()
        if not members:
            raise RuntimeError("no live nodes to post a query at")
        buf = self._buf
        if buf is None or buf.bound != len(members):
            from repro.sim.random import BufferedIntegers

            buf = self._buf = BufferedIntegers(self._rng, len(members))
        return members[buf.next()]


def uniform_node_selector(
    members_fn: Callable[[], List[NodeId]], rng: np.random.Generator
) -> NodeSelector:
    """Constructor alias kept for callers predating the class form."""
    return UniformNodeSelector(members_fn, rng)
