"""Hop-by-hop message transport with per-link delays.

CUP messages (queries, updates, clear-bits) travel one overlay hop at a
time: every intermediate node *processes* the message and decides whether
and where to forward it.  The transport therefore only ever delivers
between direct neighbors, and all cost accounting (the paper measures cost
in hops) attaches here via send observers.

Replica-to-authority traffic (birth/refresh/deletion messages, §2.1) is
not overlay traffic and is not measured by the paper's cost model; it uses
:meth:`Transport.send_direct`, which bypasses links and observers.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Iterable, List, Optional, Protocol, Tuple

from repro.sim.engine import Simulator

NodeId = Any
SendObserver = Callable[[NodeId, NodeId, "Message"], None]
#: A drop rule sees every overlay-hop send and returns True to lose the
#: message in transit (the hop cost is still charged — bandwidth was
#: spent pushing bits into a dead link).
DropRule = Callable[[NodeId, NodeId, "Message"], bool]


class LinkFaults:
    """A probabilistic per-link fault model: loss, duplication, jitter.

    One spec covers every overlay-hop send while installed (see
    :meth:`Transport.add_link_faults`); each fault draws independently
    per *recipient*, so a fan-out to k children makes k loss decisions.

    Parameters
    ----------
    rng:
        Source of U(0, 1) draws (anything with a scalar ``random()``
        method — a numpy Generator or a
        :class:`~repro.sim.random.BufferedUniforms` wrapper).  Derive it
        from a dedicated :class:`~repro.sim.random.RandomStreams` name so
        fault draws never shift workload or capacity streams.
    loss:
        Probability a send vanishes in transit (hop cost still charged,
        like drop rules — bandwidth was spent).
    duplicate:
        Probability a surviving send is delivered twice.
    jitter:
        Maximum extra one-way delay (seconds); each surviving send adds
        ``U(0, 1) * jitter``.  Enough jitter lets later sends overtake
        earlier ones on the same link — the reorder fault.
    """

    __slots__ = ("rng", "loss", "duplicate", "jitter")

    def __init__(self, rng, loss: float = 0.0, duplicate: float = 0.0,
                 jitter: float = 0.0):
        for name, value in (("loss", loss), ("duplicate", duplicate)):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {jitter}")
        if rng is None:
            raise ValueError("LinkFaults requires an rng")
        self.rng = rng
        self.loss = loss
        self.duplicate = duplicate
        self.jitter = jitter

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LinkFaults(loss={self.loss}, duplicate={self.duplicate}, "
            f"jitter={self.jitter})"
        )


class PartitionRule:
    """Drop rule blocking sends whose endpoints sit in different islands.

    A class rather than a closure so installed partitions survive the
    pickle round-trip of a checkpoint.  Nodes in no island (mid-partition
    joiners) communicate freely.
    """

    __slots__ = ("side",)

    def __init__(self, side: Dict[NodeId, int]):
        self.side = side

    def __call__(self, src: NodeId, dst: NodeId, message: "Message") -> bool:
        side = self.side
        a = side.get(src)
        b = side.get(dst)
        return a is not None and b is not None and a != b


class Message:
    """Base class for everything that travels over the transport.

    Subclasses set ``kind`` (a short string used by tracing and metric
    accounting) and add payload fields.  ``hops`` counts overlay hops
    traveled so far and is incremented by the transport on every link
    delivery, so handlers can read path lengths directly off the message.
    """

    kind = "message"
    __slots__ = ("hops",)

    def __init__(self) -> None:
        self.hops = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} kind={self.kind} hops={self.hops}>"


class MessageHandler(Protocol):
    """What the transport expects of a registered node."""

    def receive(self, message: Message, sender: NodeId) -> None:
        """Process a message delivered from direct neighbor ``sender``."""
        ...  # pragma: no cover - protocol definition


class Link:
    """A bidirectional overlay link with a fixed one-way delay."""

    __slots__ = ("a", "b", "delay")

    def __init__(self, a: NodeId, b: NodeId, delay: float):
        if a == b:
            raise ValueError(f"self-link at node {a!r}")
        if delay < 0:
            raise ValueError(f"negative link delay: {delay}")
        self.a = a
        self.b = b
        self.delay = delay

    def key(self) -> Tuple[NodeId, NodeId]:
        """Canonical (sorted) endpoint pair used as the registry key."""
        return (self.a, self.b) if repr(self.a) <= repr(self.b) else (self.b, self.a)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Link({self.a!r}, {self.b!r}, delay={self.delay})"


class Transport:
    """Registry of nodes and links; schedules message deliveries.

    Parameters
    ----------
    sim:
        Event engine used to schedule deliveries.
    default_delay:
        One-way delay applied to links created without an explicit delay
        and to sends between endpoints with no registered link (overlays
        that route by identifier, like Chord fingers, do not pre-register
        every edge).

    Notes
    -----
    Messages to unregistered destinations are silently dropped and counted
    in :attr:`dropped`; this models delivery to a node that departed while
    the message was in flight.
    """

    def __init__(self, sim: Simulator, default_delay: float = 0.05):
        if default_delay < 0:
            raise ValueError(f"negative default delay: {default_delay}")
        self._sim = sim
        self.default_delay = default_delay
        self._handlers: Dict[NodeId, MessageHandler] = {}
        # Bound ``receive`` methods, maintained alongside _handlers: the
        # delivery hot path calls straight into the handler without a
        # per-delivery attribute lookup and method bind.
        self._receivers: Dict[NodeId, Callable] = {}
        # Directed delay registry: every registered link stores *both*
        # ``(a, b)`` and ``(b, a)``, so the send hot path is a single
        # dict probe — no Link construction, no canonicalization.
        self._delays: Dict[Tuple[NodeId, NodeId], float] = {}
        self._send_observers: List[SendObserver] = []
        # The standard metrics collector, when attached via
        # attach_metrics(): its hop counters are incremented inline on
        # the send path instead of through a Python observer call per
        # hop.  Extra observers (invariant checkers, test probes) still
        # go through the _send_observers list.
        self._hop_collector = None
        # Drop/heal rule layer (partitions, lossy links): rules are
        # consulted on every overlay-hop send while any is installed;
        # the registry is empty in the common case so the hot path pays
        # a single truthiness check.
        self._drop_rules: Dict[int, DropRule] = {}
        # Probabilistic fault layer (loss/duplication/jitter): like drop
        # rules, empty in the common case so the hot path pays one
        # truthiness check.  Handles share the same counter space as
        # drop-rule handles.
        self._fault_rules: Dict[int, LinkFaults] = {}
        # Highest scheduled arrival time per directed link, tracked only
        # while jitter faults are installed — a new send landing before
        # an earlier one on the same link is a reorder.
        self._arrival_high: Dict[Tuple[NodeId, NodeId], float] = {}
        self._rule_ids = itertools.count()
        self.sent = 0
        self.sent_direct = 0
        self.delivered = 0
        self.dropped = 0
        self.blocked = 0
        self.lost = 0
        self.duplicated = 0
        self.reordered = 0

    # ------------------------------------------------------------------
    # Topology management
    # ------------------------------------------------------------------

    def register(self, node_id: NodeId, handler: MessageHandler) -> None:
        """Attach a node.  Re-registering an id replaces its handler."""
        self._handlers[node_id] = handler
        self._receivers[node_id] = handler.receive

    def unregister(self, node_id: NodeId) -> None:
        """Detach a node; in-flight messages to it will be dropped."""
        self._handlers.pop(node_id, None)
        self._receivers.pop(node_id, None)
        stale = [key for key in self._delays
                 if key[0] == node_id or key[1] == node_id]
        for key in stale:
            del self._delays[key]

    def is_registered(self, node_id: NodeId) -> bool:
        """Whether ``node_id`` currently has a handler attached."""
        return node_id in self._handlers

    def add_link(self, a: NodeId, b: NodeId, delay: Optional[float] = None) -> Link:
        """Create (or replace) the bidirectional link between ``a`` and ``b``."""
        link = Link(a, b, self.default_delay if delay is None else delay)
        self._delays[(a, b)] = link.delay
        self._delays[(b, a)] = link.delay
        return link

    def remove_link(self, a: NodeId, b: NodeId) -> None:
        """Remove the link between ``a`` and ``b`` if present."""
        self._delays.pop((a, b), None)
        self._delays.pop((b, a), None)

    def link_delay(self, a: NodeId, b: NodeId) -> float:
        """One-way delay between ``a`` and ``b`` (default if unregistered)."""
        delay = self._delays.get((a, b))
        return delay if delay is not None else self.default_delay

    # ------------------------------------------------------------------
    # Drop/heal rules (partitions, lossy links)
    # ------------------------------------------------------------------

    def add_drop_rule(self, rule: DropRule) -> int:
        """Install a rule that can lose overlay sends in transit.

        Returns a handle for :meth:`remove_drop_rule`.  A blocked send is
        still charged its hop cost (observers fire before rules run);
        delivery is simply never scheduled, and :attr:`blocked` counts
        it.  Off-overlay control traffic (:meth:`send_direct`) is not
        subject to rules — it models out-of-band replica communication.
        """
        rule_id = next(self._rule_ids)
        self._drop_rules[rule_id] = rule
        return rule_id

    def remove_drop_rule(self, rule_id: int) -> None:
        """Heal: retire one rule.

        Raises ``KeyError`` for unknown or stale handles — a double heal
        is a scenario bug (the handle either never existed or was
        already retired), and silently ignoring it used to mask exactly
        that class of mistake.
        """
        try:
            del self._drop_rules[rule_id]
        except KeyError:
            raise KeyError(f"unknown drop rule handle: {rule_id!r}") from None

    # ------------------------------------------------------------------
    # Probabilistic fault rules (loss, duplication, jitter/reorder)
    # ------------------------------------------------------------------

    def add_link_faults(self, faults: LinkFaults) -> int:
        """Install a probabilistic fault spec on every overlay-hop send.

        Returns a handle for :meth:`remove_link_faults`.  Faults draw
        from the spec's own rng (seed it from a dedicated stream) and
        apply *after* drop rules: a send blocked by a partition never
        reaches the fault layer.  Lost sends are still charged their hop
        cost, mirroring drop-rule semantics; :attr:`lost`,
        :attr:`duplicated`, and :attr:`reordered` count outcomes.
        :meth:`send_direct` traffic is exempt — it models out-of-band
        replica communication.
        """
        if not isinstance(faults, LinkFaults):
            raise TypeError(f"expected LinkFaults, got {type(faults).__name__}")
        rule_id = next(self._rule_ids)
        self._fault_rules[rule_id] = faults
        return rule_id

    def remove_link_faults(self, rule_id: int) -> None:
        """Retire one fault spec.  Raises ``KeyError`` on unknown handles."""
        try:
            del self._fault_rules[rule_id]
        except KeyError:
            raise KeyError(f"unknown fault rule handle: {rule_id!r}") from None
        if not self._fault_rules:
            self._arrival_high.clear()

    def _apply_faults(self, src: NodeId, dst: NodeId, delay: float):
        """Run one send through every installed fault spec.

        Returns ``(copies, delay)``: the number of deliveries to
        schedule (0 = lost, 2+ = duplicated) and the possibly jittered
        propagation delay.  Draw order per spec is loss → duplicate →
        jitter, short-circuiting on loss, so a given seed produces the
        same fate regardless of which counters downstream code reads.
        """
        copies = 1
        jittered = False
        for fault in self._fault_rules.values():
            rng = fault.rng
            if fault.loss and rng.random() < fault.loss:
                self.lost += 1
                return 0, delay
            if fault.duplicate and rng.random() < fault.duplicate:
                self.duplicated += 1
                copies += 1
            if fault.jitter:
                delay += rng.random() * fault.jitter
                jittered = True
        if jittered:
            arrival = self._sim.now + delay
            link = (src, dst)
            last = self._arrival_high.get(link, -1.0)
            if arrival < last:
                self.reordered += 1
            else:
                self._arrival_high[link] = arrival
        return copies, delay

    def partition(self, groups: Iterable[Iterable[NodeId]]) -> int:
        """Install a network partition; returns the rule handle.

        ``groups`` are disjoint node sets; a send is blocked iff its two
        endpoints belong to *different* groups.  Nodes in no group (e.g.
        ones that join mid-partition) communicate freely with everyone —
        a partition severs established islands, it does not quarantine
        newcomers.  Heal with :meth:`remove_drop_rule`.
        """
        side: Dict[NodeId, int] = {}
        for index, group in enumerate(groups):
            for node_id in group:
                if side.get(node_id, index) != index:
                    raise ValueError(
                        f"node {node_id!r} appears in more than one "
                        "partition group"
                    )
                side[node_id] = index

        return self.add_drop_rule(PartitionRule(side))

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------

    def add_send_observer(self, observer: SendObserver) -> None:
        """Register a callback invoked on every overlay-hop send.

        Observers fire at *send* time (before propagation delay), once per
        hop, which is exactly the paper's hop-count accounting.
        """
        self._send_observers.append(observer)

    def attach_metrics(self, collector) -> None:
        """Wire the standard metrics collector's hop accounting inline.

        Counts the same hops, at the same instant, as
        ``add_send_observer(collector.on_send)`` would — but through
        direct counter increments on the send path rather than a Python
        call per hop.  At most one collector can be attached this way;
        anything else observing sends uses :meth:`add_send_observer`.
        """
        if self._hop_collector is not None:
            raise RuntimeError("a metrics collector is already attached")
        self._hop_collector = collector

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def send(self, src: NodeId, dst: NodeId, message: Message) -> None:
        """Send ``message`` one overlay hop from ``src`` to ``dst``.

        The hop is counted (observers fire) even if the destination later
        turns out to have departed — bandwidth was spent either way.
        """
        if src == dst:
            raise ValueError(f"node {src!r} attempted to send to itself")
        self.sent += 1
        message.hops += 1
        collector = self._hop_collector
        if collector is not None:
            kind = message.kind
            if kind == "update":
                collector._update_hops[message.update_type] += 1
            elif kind == "query":
                collector.query_hops += 1
            elif kind == "clear_bit":
                collector.clear_bit_hops += 1
        observers = self._send_observers
        if observers:
            # Nearly every run attaches at most one extra observer (an
            # invariant checker); call it directly instead of looping.
            if len(observers) == 1:
                observers[0](src, dst, message)
            else:
                for observer in observers:
                    observer(src, dst, message)
        if self._drop_rules:
            for rule in self._drop_rules.values():
                if rule(src, dst, message):
                    self.blocked += 1
                    return
        delay = self._delays.get((src, dst))
        if delay is None:
            delay = self.default_delay
        if self._fault_rules:
            copies, delay = self._apply_faults(src, dst, delay)
            if copies == 0:
                return
            for _ in range(copies - 1):
                self._sim.schedule_hop(delay, self._deliver, (src, dst, message))
        self._sim.schedule_hop(delay, self._deliver, (src, dst, message))

    def send_fanout(self, src: NodeId, dsts, message: Message) -> None:
        """Send one update to many direct neighbors (one hop each).

        Semantically identical to ``message.fork()`` + :meth:`send` per
        destination, performed back-to-back: every destination gets its
        own envelope (so per-branch hop counters stay independent),
        observers fire once per hop, and drop rules are consulted per
        hop.  The fast path batches the k same-delay deliveries into one
        scheduled event instead of k — :meth:`_deliver_many` preserves
        the ``events_processed`` unit by counting one processed event
        per delivered message, so throughput trajectories stay
        comparable across the grouped and ungrouped paths.

        Only safe between distinct endpoints (callers pass interest
        sets, which never contain the sending node itself).
        """
        count = len(dsts)
        self.sent += count
        hops = message.hops + 1
        collector = self._hop_collector
        if collector is not None:
            # Every envelope of the fan-out carries the same kind and
            # update type, so the k per-hop increments collapse into one
            # bulk add — identical totals, no per-child accounting.
            kind = message.kind
            if kind == "update":
                collector._update_hops[message.update_type] += count
            elif kind == "query":
                collector.query_hops += count
            elif kind == "clear_bit":
                collector.clear_bit_hops += count
        observers = self._send_observers
        fork = message.fork
        if not self._drop_rules and not self._delays and not self._fault_rules:
            if count == 1:
                # Chain hop (one interested child — the common shape of
                # a propagation tree): skip the batch list entirely.
                dst = dsts[0]
                envelope = fork()
                envelope.hops = hops
                for observer in observers:
                    observer(src, dst, envelope)
                self._sim.schedule_hop(
                    self.default_delay, self._deliver, (src, dst, envelope)
                )
                return
            # Uniform-delay, rule-free overlay: one grouped delivery.
            pairs = []
            append = pairs.append
            if observers:
                for dst in dsts:
                    envelope = fork()
                    envelope.hops = hops
                    for observer in observers:
                        observer(src, dst, envelope)
                    append((dst, envelope))
            else:
                for dst in dsts:
                    envelope = fork()
                    envelope.hops = hops
                    append((dst, envelope))
            self._sim.schedule_hop(
                self.default_delay, self._deliver_many, (src, pairs)
            )
            return
        # Per-link delays, drop rules, or fault rules installed: fall
        # back to the per-destination schedule (still sharing the
        # payload).  Rules and faults are evaluated per recipient — one
        # blocked or lost destination neither leaks through nor blocks
        # its siblings.
        for dst in dsts:
            envelope = fork()
            envelope.hops = hops
            for observer in observers:
                observer(src, dst, envelope)
            blocked = False
            for rule in self._drop_rules.values():
                if rule(src, dst, envelope):
                    self.blocked += 1
                    blocked = True
                    break
            if blocked:
                continue
            delay = self._delays.get((src, dst))
            if delay is None:
                delay = self.default_delay
            if self._fault_rules:
                copies, delay = self._apply_faults(src, dst, delay)
                if copies == 0:
                    continue
                for _ in range(copies - 1):
                    self._sim.schedule_hop(
                        delay, self._deliver, (src, dst, envelope)
                    )
            self._sim.schedule_hop(delay, self._deliver, (src, dst, envelope))

    def _deliver_many(self, src: NodeId, pairs) -> None:
        """Grouped delivery of one fan-out batch (same instant, in order).

        Equivalent to the per-destination delivery events it replaces:
        consecutive sequence numbers would have made those fire
        back-to-back anyway, and each destination's handler is looked up
        at delivery time, so churn between send and delivery drops
        exactly the messages it would have dropped hop by hop.
        """
        sim = self._sim
        sim.events_processed += len(pairs) - 1
        receivers = self._receivers
        for dst, envelope in pairs:
            receive = receivers.get(dst)
            if receive is None:
                self.dropped += 1
            else:
                self.delivered += 1
                receive(envelope, src)

    def send_direct(self, dst: NodeId, message: Message, delay: float = 0.0,
                    src: NodeId = None) -> None:
        """Deliver off-overlay traffic (replica control messages).

        Not counted as overlay hops and invisible to send observers, per
        the paper's cost model (§3.1 counts only query/update path hops).
        """
        self.sent_direct += 1
        self._sim.schedule(delay, self._deliver, src, dst, message)

    def _deliver(self, src: NodeId, dst: NodeId, message: Message) -> None:
        receive = self._receivers.get(dst)
        if receive is None:
            self.dropped += 1
            return
        self.delivered += 1
        receive(message, src)
