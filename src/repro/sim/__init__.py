"""Discrete-event simulation engine used as the substrate for CUP.

The paper evaluates CUP on the Stanford Narses simulator, an event-driven
network simulator that is not publicly available.  This package provides a
deterministic replacement with the same capabilities CUP needs:

* :class:`~repro.sim.engine.Simulator` — a time-ordered event loop with
  deterministic tie-breaking, cancellable events and stop conditions.
* :class:`~repro.sim.random.RandomStreams` — named, independently seeded
  random streams so that workload, topology and fault randomness are
  decoupled (changing one does not perturb the others).
* :class:`~repro.sim.network.Transport` — hop-by-hop message delivery with
  per-link delays and per-message-class delivery hooks for metric
  accounting.
* :mod:`~repro.sim.process` — timers and periodic processes (replica
  refresh loops, capacity fault injectors, cache garbage collection).
* :mod:`~repro.sim.trace` — structured, filterable event tracing.
"""

from repro.sim.engine import Event, Simulator, SimulatorError
from repro.sim.network import Link, Message, Transport
from repro.sim.process import PeriodicProcess, Timer
from repro.sim.random import RandomStreams
from repro.sim.trace import TraceRecord, Tracer

__all__ = [
    "Event",
    "Link",
    "Message",
    "PeriodicProcess",
    "RandomStreams",
    "Simulator",
    "SimulatorError",
    "Timer",
    "TraceRecord",
    "Tracer",
    "Transport",
]
