"""Deterministic discrete-event simulation engine.

The engine is a classic calendar queue built on :mod:`heapq`.  Heap
entries are ``(time, sequence, event)`` tuples, where ``sequence`` is a
monotonically increasing counter, so two events scheduled for the same
instant always fire in the order they were scheduled.  This determinism
matters: the CUP experiments compare protocol variants on identical
workloads, and any nondeterministic tie-breaking would contaminate the
comparison.

Storing the ordering key in the tuple (rather than ordering
:class:`Event` objects directly) lets the heap compare plain floats and
ints in C instead of calling ``Event.__lt__`` once per sift step — on
large runs the comparison count is several times the event count, so
this is one of the engine's hottest paths.

Typical usage::

    sim = Simulator()
    sim.schedule(1.5, lambda: print("fires at t=1.5"))
    handle = sim.schedule(9.0, lambda: print("never fires"))
    handle.cancel()
    sim.run()
"""

from __future__ import annotations

import gc
import heapq
import itertools
import math
from typing import Any, Callable, Optional


class SimulatorError(RuntimeError):
    """Raised on illegal simulator operations (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.

    Instances are returned by :meth:`Simulator.schedule` and may be used to
    cancel the event before it fires.  Cancelled events stay in the heap but
    are skipped when popped (lazy deletion), which keeps cancellation O(1).
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_sim")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple,
                 sim: "Optional[Simulator]" = None):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        # Back-reference for the simulator's live-event counter; detached
        # (set to None) once the event fires, so a late cancel() cannot
        # decrement the counter twice.
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if not self.cancelled:
            self.cancelled = True
            sim = self._sim
            if sim is not None:
                sim._live -= 1
                self._sim = None

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} seq={self.seq} {state} fn={self.fn!r}>"


class Simulator:
    """Time-ordered event loop with deterministic tie-breaking.

    Parameters
    ----------
    start_time:
        Initial simulation clock value in seconds.  Defaults to ``0.0``.

    Notes
    -----
    The clock only advances when events fire; there is no wall-clock
    coupling.  ``run`` drains the heap, ``run_until`` stops the clock at a
    deadline, and ``step`` fires exactly one event (useful in tests).
    """

    def __init__(self, start_time: float = 0.0):
        #: Current simulation time in seconds.  A plain attribute, not a
        #: property: the clock is read on every message handled and a
        #: Python-level descriptor call per read would tax the whole
        #: simulation.  Only the engine writes it.
        self.now = float(start_time)
        # Heap of (time, seq, Event); tuple comparison never reaches the
        # Event because (time, seq) is unique per entry.
        self._heap: list = []
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        # Live (scheduled, not cancelled, not fired) event count.  Kept
        # exact by schedule/cancel/pop so ``pending`` is O(1).
        self._live = 0
        self.events_processed = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events awaiting execution."""
        return self._live

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now.

        Returns the :class:`Event`, which can be cancelled.  A ``delay`` of
        zero is allowed and fires after all events already scheduled for the
        current instant (FIFO at equal timestamps).
        """
        # One comparison covers the common case; the chain is False for
        # negative, NaN (any comparison fails) and +inf delays alike.
        if not 0.0 <= delay < math.inf:
            if delay < 0:
                raise SimulatorError(
                    f"cannot schedule {delay} seconds in the past"
                )
            raise SimulatorError(f"invalid delay: {delay}")
        time = self.now + delay
        event = Event(time, next(self._seq), fn, args, self)
        self._live += 1
        heapq.heappush(self._heap, (time, event.seq, event))
        return event

    def schedule_hop(self, delay: float, fn: Callable[..., Any], args: tuple) -> None:
        """Trusted fast-path scheduling for transport deliveries.

        Semantically :meth:`schedule` minus what deliveries never use:
        no cancellation handle, no delay validation (link delays are
        validated once at registration), and no :class:`Event` object —
        the heap entry carries a bare ``(fn, args)`` pair, saving an
        allocation and an ``__init__`` frame on the busiest event class
        in the system.  Timestamp and tie-break sequence are drawn from
        the same clock and counter as :meth:`schedule`, so interleaving
        both paths preserves deterministic ordering exactly.
        """
        self._live += 1
        heapq.heappush(
            self._heap, (self.now + delay, next(self._seq), (fn, args))
        )

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute simulation time."""
        if time < self.now:
            raise SimulatorError(
                f"cannot schedule at t={time} (clock already at t={self.now})"
            )
        event = Event(time, next(self._seq), fn, args, self)
        self._live += 1
        heapq.heappush(self._heap, (time, event.seq, event))
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Fire the single next pending event.

        Returns ``True`` if an event fired, ``False`` if the heap is empty.
        """
        while self._heap:
            time, _, event = heapq.heappop(self._heap)
            if event.__class__ is tuple:
                # Bare (fn, args) hop entry from schedule_hop.
                self._live -= 1
                self.now = time
                self.events_processed += 1
                event[0](*event[1])
                return True
            if event.cancelled:
                continue
            self._live -= 1
            event._sim = None
            self.now = time
            self.events_processed += 1
            event.fn(*event.args)
            return True
        return False

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the event heap drains (or ``max_events`` fire).

        Returns the number of events processed by this call.
        """
        return self._run_loop(deadline=None, max_events=max_events)

    def run_until(self, deadline: float, max_events: Optional[int] = None) -> int:
        """Run events with ``time <= deadline``; advance the clock to it.

        Events scheduled after ``deadline`` remain pending, so the
        simulation can be resumed with another ``run_until`` or ``run``.
        Returns the number of events processed by this call.
        """
        if deadline < self.now:
            raise SimulatorError(
                f"deadline t={deadline} is before current time t={self.now}"
            )
        processed = self._run_loop(deadline=deadline, max_events=max_events)
        if not self._stopped:
            self.now = max(self.now, deadline)
        return processed

    def run_with_checkpoints(
        self,
        deadline: float,
        hook: Callable[[], Any],
        every_events: Optional[int] = None,
        every_seconds: Optional[float] = None,
    ) -> int:
        """Drive to ``deadline``, invoking ``hook()`` between chunks.

        The periodic auto-checkpoint entry point: the run is split into
        :meth:`run_until` chunks of at most ``every_events`` events
        and/or ``every_seconds`` simulated seconds, with ``hook`` called
        after each incomplete chunk — *outside* the event loop, so the
        hook sees a quiescent simulator (not mid-event, not reentrant)
        and consumes no event sequence numbers.  A chunked drive
        processes exactly the same events in exactly the same order as a
        single ``run_until(deadline)``, which is what makes checkpointed
        runs byte-identical to plain ones.

        Returns the number of events processed by this call.
        """
        if every_events is None and every_seconds is None:
            raise SimulatorError(
                "run_with_checkpoints needs every_events or every_seconds"
            )
        if every_events is not None and every_events < 1:
            raise SimulatorError(
                f"every_events must be >= 1, got {every_events}"
            )
        if every_seconds is not None and every_seconds <= 0:
            raise SimulatorError(
                f"every_seconds must be positive, got {every_seconds}"
            )
        processed = 0
        while True:
            horizon = deadline
            if every_seconds is not None:
                horizon = min(deadline, self.now + every_seconds)
            chunk = self.run_until(horizon, max_events=every_events)
            processed += chunk
            if self._stopped:
                break
            drained = every_events is None or chunk < every_events
            if drained and horizon >= deadline:
                break
            hook()
        return processed

    def stop(self) -> None:
        """Request that the currently running loop exits after this event."""
        self._stopped = True

    def _run_loop(self, deadline: Optional[float], max_events: Optional[int]) -> int:
        if self._running:
            raise SimulatorError("simulator is not reentrant")
        self._running = True
        self._stopped = False
        processed = 0
        # Hot-loop locals: attribute and global lookups cost a dict probe
        # per event otherwise, and this loop runs once per simulated event.
        # ``events_processed`` is accumulated locally and folded back in
        # the ``finally`` — grouped deliveries adjust the attribute
        # directly mid-run, and integer adds commute, so the final total
        # is exact either way.
        heap = self._heap
        heappop = heapq.heappop
        limit = math.inf if max_events is None else max_events
        horizon = math.inf if deadline is None else deadline
        # The loop allocates heavily (messages, envelopes, heap entries)
        # and none of that garbage is cyclic — everything frees by
        # reference counting the moment it is handled.  CPython's
        # generational collector would still scan the young generation
        # every few hundred net allocations, a cost that grows with the
        # event count, so it is parked for the duration of the loop.
        cyclic_gc = gc.isenabled()
        if cyclic_gc:
            gc.disable()
        try:
            while heap and not self._stopped:
                if processed >= limit:
                    break
                time, _, event = heap[0]
                if event.__class__ is tuple:
                    # Bare (fn, args) hop entry from schedule_hop — the
                    # bulk of every run; never cancellable.
                    if time > horizon:
                        break
                    heappop(heap)
                    self._live -= 1
                    self.now = time
                    processed += 1
                    event[0](*event[1])
                    continue
                if event.cancelled:
                    heappop(heap)
                    continue
                if time > horizon:
                    break
                heappop(heap)
                self._live -= 1
                event._sim = None
                self.now = time
                processed += 1
                event.fn(*event.args)
        finally:
            self._running = False
            self.events_processed += processed
            if cyclic_gc:
                gc.enable()
        return processed
