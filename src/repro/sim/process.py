"""Timers and periodic processes on top of the event engine.

These are the building blocks for everything in the system that acts on a
schedule rather than in reaction to a message: replica refresh loops
(entries are refreshed at expiration, §3.2 of the paper), capacity fault
injectors (the Up-And-Down experiment of §3.7), cache garbage collection,
and keep-alive exchanges.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.engine import Event, Simulator


class Timer:
    """A restartable one-shot timer.

    ``start`` schedules the callback; starting an armed timer reschedules
    it (the previous schedule is cancelled).  This models per-entry
    expiration watchdogs: every refresh restarts the timer.
    """

    def __init__(self, sim: Simulator, fn: Callable[..., Any], *args: Any):
        self._sim = sim
        self._fn = fn
        self._args = args
        self._event: Optional[Event] = None

    @property
    def armed(self) -> bool:
        """Whether the timer currently has a pending firing."""
        return self._event is not None and not self._event.cancelled

    def start(self, delay: float) -> None:
        """(Re)arm the timer to fire ``delay`` seconds from now."""
        self.cancel()
        self._event = self._sim.schedule(delay, self._fire)

    def cancel(self) -> None:
        """Disarm the timer.  Idempotent."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._fn(*self._args)


class PeriodicProcess:
    """Invoke a callback at a fixed period until stopped.

    Parameters
    ----------
    sim:
        The simulator that drives the process.
    period:
        Seconds between invocations.  Must be positive.
    fn:
        Callback invoked each period.  If it returns ``False`` the process
        stops itself (any other return value, including ``None``,
        continues).
    phase:
        Delay before the first invocation.  Defaults to one full period,
        i.e. the first firing is at ``now + period``.
    jitter_fn:
        Optional zero-argument callable returning an additive jitter (in
        seconds, may be negative but the net delay is clamped to >= 0) to
        apply to each period.  Used to stagger replica refreshes.
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        fn: Callable[[], Any],
        phase: Optional[float] = None,
        jitter_fn: Optional[Callable[[], float]] = None,
    ):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self._sim = sim
        self.period = period
        self._fn = fn
        self._jitter_fn = jitter_fn
        self._event: Optional[Event] = None
        self._stopped = False
        first_delay = period if phase is None else phase
        self._event = sim.schedule(max(0.0, first_delay), self._tick)

    @property
    def running(self) -> bool:
        """Whether future firings are scheduled."""
        return not self._stopped

    def stop(self) -> None:
        """Stop the process; no further invocations occur.  Idempotent."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _tick(self) -> None:
        if self._stopped:
            return
        result = self._fn()
        if result is False or self._stopped:
            self.stop()
            return
        delay = self.period
        if self._jitter_fn is not None:
            delay = max(0.0, delay + float(self._jitter_fn()))
        self._event = self._sim.schedule(delay, self._tick)
