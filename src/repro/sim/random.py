"""Named, independently seeded random streams.

Experiments compare protocol variants (CUP vs. standard caching, different
cut-off policies, different capacities) on *identical* workloads.  If a
single RNG served every consumer, a protocol that draws one extra random
number (say, for a capacity coin flip) would shift every subsequent
workload draw and invalidate the comparison.  ``RandomStreams`` therefore
derives one independent :class:`numpy.random.Generator` per named purpose
from a root seed, so the "workload" stream produces the same arrival
sequence regardless of what the "capacity" stream consumes.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


class RandomStreams:
    """A family of independent random generators derived from one seed.

    Parameters
    ----------
    seed:
        Root seed.  Two ``RandomStreams`` built from the same seed yield
        identical streams for identical names.

    Examples
    --------
    >>> streams = RandomStreams(seed=7)
    >>> workload = streams.get("workload")
    >>> topology = streams.get("topology")
    >>> workload is streams.get("workload")
    True
    """

    def __init__(self, seed: int = 0):
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = seed
        self._streams: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            stream = np.random.default_rng(self._derive_seed(name))
            self._streams[name] = stream
        return stream

    def spawn(self, name: str) -> "RandomStreams":
        """Return a child ``RandomStreams`` rooted at a derived seed.

        Useful when a subsystem (e.g. one replica) needs its own family of
        streams that stays stable as unrelated subsystems change.
        """
        return RandomStreams(self._derive_seed(name))

    def _derive_seed(self, name: str) -> int:
        digest = hashlib.sha256(f"{self.seed}:{name}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(seed={self.seed}, streams={sorted(self._streams)})"


class BufferedUniforms:
    """Scalar U(0, 1) draws served from block draws on one generator.

    A scalar ``Generator.random()`` call costs roughly a microsecond of
    numpy dispatch; drawing blocks and serving Python floats from a list
    amortizes that to nanoseconds.  The served sequence is *bit-identical*
    to scalar draws — ``Generator.random(n)`` consumes the underlying bit
    stream exactly like ``n`` scalar calls — so wrapping a stream never
    changes simulation results, provided every consumer of that stream
    goes through the same wrapper (the buffer pre-draws ahead of use).
    """

    __slots__ = ("_rng", "_block", "_buf", "_idx")

    def __init__(self, rng: np.random.Generator, block: int = 256):
        if block < 1:
            raise ValueError(f"block must be >= 1, got {block}")
        self._rng = rng
        self._block = block
        self._buf: list = []
        self._idx = 0

    def random(self) -> float:
        """One uniform draw in [0, 1); same stream as ``rng.random()``."""
        idx = self._idx
        if idx >= len(self._buf):
            self._buf = self._rng.random(self._block).tolist()
            idx = 0
        self._idx = idx + 1
        return self._buf[idx]


class BufferedExponentials:
    """Scalar exponential draws with a fixed scale, served from blocks.

    Bit-identical to ``rng.exponential(scale)`` scalar calls for the same
    reason as :class:`BufferedUniforms`; the scale must stay fixed for
    the lifetime of the buffer (it is baked into pre-drawn values).
    """

    __slots__ = ("_rng", "_scale", "_block", "_buf", "_idx")

    def __init__(self, rng: np.random.Generator, scale: float, block: int = 256):
        if block < 1:
            raise ValueError(f"block must be >= 1, got {block}")
        self._rng = rng
        self._scale = scale
        self._block = block
        self._buf: list = []
        self._idx = 0

    def next(self) -> float:
        """One draw; same stream as ``rng.exponential(scale)``."""
        idx = self._idx
        if idx >= len(self._buf):
            self._buf = self._rng.exponential(self._scale, self._block).tolist()
            idx = 0
        self._idx = idx + 1
        return self._buf[idx]


class BufferedIntegers:
    """Scalar bounded-integer draws served from blocks.

    Bit-identical to ``rng.integers(bound)`` scalar calls while the bound
    stays fixed.  When the owner's bound changes (e.g. churn changes the
    membership count), build a fresh buffer — the pre-drawn remainder is
    discarded, which is the one case where the stream diverges from
    scalar draws; callers that need byte-exact replay across bound
    changes should not buffer.
    """

    __slots__ = ("_rng", "bound", "_block", "_buf", "_idx")

    def __init__(self, rng: np.random.Generator, bound: int, block: int = 256):
        if bound < 1:
            raise ValueError(f"bound must be >= 1, got {bound}")
        if block < 1:
            raise ValueError(f"block must be >= 1, got {block}")
        self._rng = rng
        self.bound = bound
        self._block = block
        self._buf: list = []
        self._idx = 0

    def next(self) -> int:
        """One draw in [0, bound); same stream as ``rng.integers(bound)``."""
        idx = self._idx
        if idx >= len(self._buf):
            self._buf = self._rng.integers(self.bound, size=self._block).tolist()
            idx = 0
        self._idx = idx + 1
        return self._buf[idx]
