"""Named, independently seeded random streams.

Experiments compare protocol variants (CUP vs. standard caching, different
cut-off policies, different capacities) on *identical* workloads.  If a
single RNG served every consumer, a protocol that draws one extra random
number (say, for a capacity coin flip) would shift every subsequent
workload draw and invalidate the comparison.  ``RandomStreams`` therefore
derives one independent :class:`numpy.random.Generator` per named purpose
from a root seed, so the "workload" stream produces the same arrival
sequence regardless of what the "capacity" stream consumes.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


class RandomStreams:
    """A family of independent random generators derived from one seed.

    Parameters
    ----------
    seed:
        Root seed.  Two ``RandomStreams`` built from the same seed yield
        identical streams for identical names.

    Examples
    --------
    >>> streams = RandomStreams(seed=7)
    >>> workload = streams.get("workload")
    >>> topology = streams.get("topology")
    >>> workload is streams.get("workload")
    True
    """

    def __init__(self, seed: int = 0):
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = seed
        self._streams: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            stream = np.random.default_rng(self._derive_seed(name))
            self._streams[name] = stream
        return stream

    def spawn(self, name: str) -> "RandomStreams":
        """Return a child ``RandomStreams`` rooted at a derived seed.

        Useful when a subsystem (e.g. one replica) needs its own family of
        streams that stays stable as unrelated subsystems change.
        """
        return RandomStreams(self._derive_seed(name))

    def _derive_seed(self, name: str) -> int:
        digest = hashlib.sha256(f"{self.seed}:{name}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(seed={self.seed}, streams={sorted(self._streams)})"
