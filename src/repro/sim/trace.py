"""Structured event tracing.

Tracing exists for debugging and for the examples (which narrate a small
simulation); the benchmark runs keep it disabled because recording
millions of trace records would dominate runtime.  A disabled tracer's
``emit`` is a near-no-op guarded by a single boolean check.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional


class TraceRecord:
    """One traced occurrence: a timestamped, categorised key/value bag."""

    __slots__ = ("time", "category", "fields")

    def __init__(self, time: float, category: str, fields: Dict[str, Any]):
        self.time = time
        self.category = category
        self.fields = fields

    def __repr__(self) -> str:
        parts = " ".join(f"{k}={v!r}" for k, v in self.fields.items())
        return f"[{self.time:10.4f}] {self.category}: {parts}"


class Tracer:
    """Collects :class:`TraceRecord` objects, optionally filtered.

    Parameters
    ----------
    enabled:
        When ``False`` (the default), ``emit`` returns immediately.
    categories:
        When given, only these categories are recorded.
    sink:
        Optional callable invoked with each record as it is emitted
        (e.g. ``print``); records are retained in memory either way, up
        to ``max_records``.
    max_records:
        Retention cap; the oldest records are discarded beyond it.
    """

    def __init__(
        self,
        enabled: bool = False,
        categories: Optional[Iterable[str]] = None,
        sink: Optional[Callable[[TraceRecord], None]] = None,
        max_records: int = 100_000,
    ):
        self.enabled = enabled
        self._categories = frozenset(categories) if categories is not None else None
        self._sink = sink
        self._max_records = max_records
        self.records: List[TraceRecord] = []

    def emit(self, time: float, category: str, **fields: Any) -> None:
        """Record an occurrence if tracing is on and the category passes."""
        if not self.enabled:
            return
        if self._categories is not None and category not in self._categories:
            return
        record = TraceRecord(time, category, fields)
        self.records.append(record)
        if len(self.records) > self._max_records:
            del self.records[: len(self.records) - self._max_records]
        if self._sink is not None:
            self._sink(record)

    def by_category(self, category: str) -> List[TraceRecord]:
        """All retained records in ``category``, in emission order."""
        return [r for r in self.records if r.category == category]

    def clear(self) -> None:
        """Drop all retained records."""
        self.records.clear()
