"""CUP: Controlled Update Propagation in Peer-to-Peer Networks.

A complete reproduction of Roussopoulos & Baker's CUP (arXiv cs.NI/0202008,
USENIX 2003): the CUP cache-maintenance protocol, the structured-overlay
substrates it runs on (a 2-D CAN and a Chord ring), a deterministic
discrete-event simulator, the content replica model, workload generators,
metrics matching the paper's hop-count cost model, and an experiment
harness that regenerates every table and figure of the paper's evaluation.

Quickstart
----------
>>> from repro import CupConfig, CupNetwork
>>> config = CupConfig(num_nodes=64, query_rate=5.0, seed=7,
...                    query_start=60.0, query_duration=300.0, drain=60.0)
>>> cup = CupNetwork(config).run()
>>> std = CupNetwork(config.variant(mode="standard")).run()
>>> cup.miss_cost < std.miss_cost
True

See ``examples/`` for runnable scenarios and ``benchmarks/`` for the
table/figure reproductions.
"""

from repro.core.cache import KeyState, NodeCache
from repro.core.channels import CapacityConfig, OutgoingUpdateChannels
from repro.core.costmodel import (
    break_even_justified_fraction,
    expected_update_value,
    justification_probability,
    saved_miss_overhead_ratio,
    standard_caching_miss_cost,
)
from repro.core.entry import IndexEntry
from repro.core.messages import (
    ClearBitMessage,
    QueryMessage,
    ReplicaEvent,
    ReplicaMessage,
    UpdateMessage,
    UpdateType,
)
from repro.core.node import CupNode
from repro.core.policies import (
    AllOutPolicy,
    CutoffPolicy,
    LinearPolicy,
    LogarithmicPolicy,
    LogBasedPolicy,
    SecondChancePolicy,
    make_policy,
)
from repro.core.protocol import CupConfig, CupNetwork
from repro.core.trees import QueryTree
from repro.invariants.checker import (
    InvariantChecker,
    InvariantViolationError,
)
from repro.metrics.collector import MetricsCollector, MetricsSummary
from repro.overlay.base import Overlay, RoutingError
from repro.overlay.can import CanOverlay, Zone
from repro.overlay.chord import ChordOverlay
from repro.overlay.pastry import PastryOverlay
from repro.replicas.authority import AuthorityIndex
from repro.replicas.replica import Replica, ReplicaSet
from repro.sim.engine import Simulator
from repro.sim.network import Transport
from repro.sim.random import RandomStreams
from repro.workload.faults import (
    CapacityFaultSchedule,
    once_down_always_down,
    up_and_down,
)
from repro.scenarios.dsl import Scenario
from repro.scenarios.runner import run_scenario
from repro.workload.generator import QueryWorkload
from repro.workload.keyspace import (
    FlashCrowdKeys,
    RotatingHotKeys,
    UniformKeys,
    ZipfKeys,
)
from repro.workload.tracefile import QueryTrace

__version__ = "1.0.0"

__all__ = [
    "AllOutPolicy",
    "AuthorityIndex",
    "CanOverlay",
    "CapacityConfig",
    "CapacityFaultSchedule",
    "ChordOverlay",
    "ClearBitMessage",
    "CupConfig",
    "CupNetwork",
    "CupNode",
    "CutoffPolicy",
    "FlashCrowdKeys",
    "IndexEntry",
    "InvariantChecker",
    "InvariantViolationError",
    "KeyState",
    "LinearPolicy",
    "LogBasedPolicy",
    "LogarithmicPolicy",
    "MetricsCollector",
    "MetricsSummary",
    "NodeCache",
    "OutgoingUpdateChannels",
    "Overlay",
    "PastryOverlay",
    "QueryMessage",
    "QueryTrace",
    "QueryTree",
    "QueryWorkload",
    "RandomStreams",
    "Replica",
    "ReplicaEvent",
    "ReplicaMessage",
    "ReplicaSet",
    "RotatingHotKeys",
    "RoutingError",
    "Scenario",
    "SecondChancePolicy",
    "Simulator",
    "Transport",
    "UniformKeys",
    "UpdateMessage",
    "UpdateType",
    "Zone",
    "ZipfKeys",
    "break_even_justified_fraction",
    "expected_update_value",
    "justification_probability",
    "make_policy",
    "once_down_always_down",
    "run_scenario",
    "saved_miss_overhead_ratio",
    "standard_caching_miss_cost",
    "up_and_down",
]
