"""The content replica model (§2.1 of the paper).

Content in the peer-to-peer network is served by *replicas*.  Each
replica of a piece of content announces itself to the authority node that
owns the content's key with a **birth** message, periodically re-ups with
**refresh** (keep-alive) messages that extend its index entry's lifetime,
and either announces its departure with a **deletion** message (graceful)
or simply goes silent (failure — the authority notices the missing
keep-alives and deletes the entry itself).

* :class:`~repro.replicas.authority.AuthorityIndex` — the *local index
  directory*: the slice of the global index a node owns, with sequence
  numbering and expiry sweeping.
* :class:`~repro.replicas.replica.Replica` — one replica's lifecycle as a
  simulation process.
* :class:`~repro.replicas.replica.ReplicaSet` — the population of
  replicas for an experiment (the paper's "number of replicas per key"
  and "lifetime of replicas" inputs).
"""

from repro.replicas.authority import AuthorityIndex
from repro.replicas.replica import Replica, ReplicaSet

__all__ = ["AuthorityIndex", "Replica", "ReplicaSet"]
