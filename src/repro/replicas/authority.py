"""The local index directory of an authority node (§2.1).

Every node owns the slice of the global index that hashes into its zone;
the (key, value) entries in that slice form its *local index directory*,
disjoint from the entries it caches for keys it does not own.  This module
keeps that directory and turns replica control messages into the update
messages CUP propagates:

=============  ==================  ===============================
replica event  directory change    update propagated downstream
=============  ==================  ===============================
birth          entry inserted      APPEND (new replica available)
refresh        lifetime re-based   REFRESH (extends cached copies)
death          entry removed       DELETE (purge cached copies)
expiry sweep   entry removed       DELETE (failure detected)
=============  ==================  ===============================

Sequence numbers increase per (key, replica) so downstream caches can
discard stale or reordered updates.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.entry import IndexEntry
from repro.core.messages import ReplicaEvent, ReplicaMessage, UpdateMessage, UpdateType


class AuthorityIndex:
    """The index entries a node owns, grouped by key."""

    __slots__ = ("_entries", "_sequences")

    def __init__(self) -> None:
        self._entries: Dict[str, Dict[str, IndexEntry]] = {}
        self._sequences: Dict[Tuple[str, str], int] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def keys(self) -> Iterable[str]:
        """All keys with at least one live entry."""
        return self._entries.keys()

    def owns(self, key: str) -> bool:
        return key in self._entries

    def entries(self, key: str) -> List[IndexEntry]:
        """All directory entries for ``key`` (may include expired ones
        between sweeps; freshness is re-checked at answer time)."""
        return list(self._entries.get(key, {}).values())

    def fresh_entries(self, key: str, now: float) -> List[IndexEntry]:
        """Directory entries for ``key`` still fresh at ``now``."""
        return [
            e for e in self._entries.get(key, {}).values() if e.is_fresh(now)
        ]

    def entry_count(self) -> int:
        return sum(len(v) for v in self._entries.values())

    # ------------------------------------------------------------------
    # Replica events -> updates
    # ------------------------------------------------------------------

    def _next_sequence(self, key: str, replica_id: str) -> int:
        seq = self._sequences.get((key, replica_id), 0) + 1
        self._sequences[(key, replica_id)] = seq
        return seq

    def apply_replica_message(
        self, message: ReplicaMessage, now: float
    ) -> Optional[UpdateMessage]:
        """Apply a replica control message; return the update to push.

        Returns ``None`` when nothing propagates (e.g. a deletion for an
        already-absent entry).
        """
        if message.event == ReplicaEvent.DEATH:
            return self.remove(message.key, message.replica_id, now)
        per_key = self._entries.setdefault(message.key, {})
        existed = message.replica_id in per_key
        entry = IndexEntry(
            key=message.key,
            replica_id=message.replica_id,
            address=message.address,
            lifetime=message.lifetime,
            timestamp=now,
            sequence=self._next_sequence(message.key, message.replica_id),
        )
        per_key[message.replica_id] = entry
        # A birth of a known replica (duplicate announcement) degenerates
        # to a refresh; a refresh from an unknown replica (entry expired
        # and was swept) re-announces it as an append.
        update_type = UpdateType.REFRESH if existed else UpdateType.APPEND
        return UpdateMessage(
            key=message.key,
            update_type=update_type,
            entries=(entry,),
            replica_id=message.replica_id,
            issued_at=now,
        )

    def remove(
        self, key: str, replica_id: str, now: float
    ) -> Optional[UpdateMessage]:
        """Remove an entry (death or failure); return the DELETE update."""
        per_key = self._entries.get(key)
        if not per_key:
            return None
        entry = per_key.pop(replica_id, None)
        if entry is None:
            return None
        if not per_key:
            del self._entries[key]
        return UpdateMessage(
            key=key,
            update_type=UpdateType.DELETE,
            entries=(entry,),
            replica_id=replica_id,
            issued_at=now,
        )

    def sweep_expired(self, now: float) -> List[UpdateMessage]:
        """Failure detection: drop entries whose replicas went silent.

        The authority "notices a replica has stopped sending keep-alive
        messages and assumes the replica has failed" (§2.4); each swept
        entry yields a DELETE update for interested neighbors.
        """
        deletes: List[UpdateMessage] = []
        for key in list(self._entries):
            per_key = self._entries[key]
            for replica_id in [
                rid for rid, e in per_key.items() if not e.is_fresh(now)
            ]:
                update = self.remove(key, replica_id, now)
                if update is not None:
                    deletes.append(update)
        return deletes

    # ------------------------------------------------------------------
    # Churn handover (§2.9)
    # ------------------------------------------------------------------

    def extract_keys(self, keys: Iterable[str]) -> Dict[str, Dict[str, IndexEntry]]:
        """Remove and return the directory slices for ``keys``.

        Used when a joining node takes over part of this node's index,
        or when a departing node hands its directory to a neighbor.
        """
        extracted: Dict[str, Dict[str, IndexEntry]] = {}
        for key in list(keys):
            per_key = self._entries.pop(key, None)
            if per_key:
                extracted[key] = per_key
        return extracted

    def absorb(self, slices: Dict[str, Dict[str, IndexEntry]]) -> int:
        """Merge handed-over directory slices, deduplicating by sequence.

        Returns the number of entries accepted.  When both sides hold an
        entry for the same (key, replica), the newer sequence wins — the
        paper's "eliminating duplicate entries" merge.
        """
        accepted = 0
        for key, per_key in slices.items():
            mine = self._entries.setdefault(key, {})
            for replica_id, entry in per_key.items():
                current = mine.get(replica_id)
                if current is None or current.sequence < entry.sequence:
                    mine[replica_id] = entry
                    accepted += 1
                seq_key = (key, replica_id)
                self._sequences[seq_key] = max(
                    self._sequences.get(seq_key, 0), entry.sequence
                )
        return accepted
