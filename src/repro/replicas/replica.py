"""Replica lifecycle processes.

A replica announces itself (birth), keeps its index entry alive with
refresh messages sent when the entry expires — "for all experiments,
refreshes of index entries occur at expiration" (§3.2) — and leaves
either gracefully (deletion message) or by failing silently.

Replica-to-authority traffic rides :meth:`Transport.send_direct`: it is
substrate control traffic, not CUP traffic, and costs no overlay hops.
The authority is re-resolved through the overlay on every send so that
ownership changes from churn are honored automatically.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.messages import ReplicaEvent, ReplicaMessage
from repro.overlay.base import Overlay
from repro.sim.engine import Simulator
from repro.sim.network import Transport
from repro.sim.process import PeriodicProcess


class Replica:
    """One replica serving one key's content.

    Parameters
    ----------
    sim, transport, overlay:
        Simulation substrate.  The overlay resolves the current authority
        for the replica's key at every announcement.
    key:
        The content key this replica serves.
    replica_id:
        Unique identifier (also used as the index entry's value address).
    lifetime:
        Index entry lifetime in seconds; refreshes are sent at this
        period, i.e. exactly at expiration.
    """

    def __init__(
        self,
        sim: Simulator,
        transport: Transport,
        overlay: Overlay,
        key: str,
        replica_id: str,
        lifetime: float,
    ):
        if lifetime <= 0:
            raise ValueError(f"lifetime must be positive, got {lifetime}")
        self._sim = sim
        self._transport = transport
        self._overlay = overlay
        self.key = key
        self.replica_id = replica_id
        self.address = f"addr://{replica_id}"
        self.lifetime = lifetime
        self.alive = False
        self._refresh_loop: Optional[PeriodicProcess] = None
        self.births = 0
        self.refreshes = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def birth(self) -> None:
        """Announce this replica and start the refresh loop."""
        if self.alive:
            raise RuntimeError(f"replica {self.replica_id!r} is already alive")
        self.alive = True
        self.births += 1
        self._announce(ReplicaEvent.BIRTH)
        self._refresh_loop = PeriodicProcess(
            self._sim, self.lifetime, self._refresh
        )

    def die(self, graceful: bool = True) -> None:
        """Stop serving: send a deletion message (graceful) or go silent.

        A silent death leaves the authority to detect the failure via
        missing keep-alives and issue the DELETE itself (§2.4).
        """
        if not self.alive:
            return
        self.alive = False
        if self._refresh_loop is not None:
            self._refresh_loop.stop()
            self._refresh_loop = None
        if graceful:
            self._announce(ReplicaEvent.DEATH)

    def _refresh(self) -> None:
        self.refreshes += 1
        self._announce(ReplicaEvent.REFRESH)

    def _announce(self, event: ReplicaEvent) -> None:
        message = ReplicaMessage(
            event=event,
            key=self.key,
            replica_id=self.replica_id,
            address=self.address,
            lifetime=self.lifetime,
        )
        authority = self._overlay.authority(self.key)
        self._transport.send_direct(authority, message)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "dead"
        return f"Replica({self.replica_id!r}, key={self.key!r}, {state})"


class ReplicaSet:
    """The replica population for an experiment.

    Creates ``replicas_per_key`` replicas for every key and schedules
    their births, staggered uniformly across one lifetime so refresh
    traffic does not arrive in lockstep (real replicas do not synchronize
    their announcements).
    """

    def __init__(
        self,
        sim: Simulator,
        transport: Transport,
        overlay: Overlay,
        keys: List[str],
        replicas_per_key: int,
        lifetime: float,
        rng: np.random.Generator,
        stagger: bool = True,
    ):
        if replicas_per_key < 0:
            raise ValueError(
                f"replicas_per_key must be >= 0, got {replicas_per_key}"
            )
        self._sim = sim
        self.lifetime = lifetime
        self.by_key: Dict[str, List[Replica]] = {}
        self.all: List[Replica] = []
        for key in keys:
            replicas = []
            for i in range(replicas_per_key):
                replica = Replica(
                    sim, transport, overlay, key,
                    replica_id=f"{key}/r{i}", lifetime=lifetime,
                )
                replicas.append(replica)
                self.all.append(replica)
            self.by_key[key] = replicas
        self._birth_offsets = {
            replica.replica_id: (
                float(rng.uniform(0.0, lifetime)) if stagger else 0.0
            )
            for replica in self.all
        }

    def schedule_births(self, at: float = 0.0) -> None:
        """Schedule every replica's birth (with its stagger offset)."""
        for replica in self.all:
            offset = self._birth_offsets[replica.replica_id]
            self._sim.schedule_at(at + offset, replica.birth)

    def kill_fraction(
        self,
        fraction: float,
        rng: np.random.Generator,
        graceful: bool = True,
    ) -> List[Replica]:
        """Kill a random fraction of live replicas (failure injection)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        live = [r for r in self.all if r.alive]
        count = int(round(fraction * len(live)))
        victims = list(rng.choice(len(live), size=count, replace=False)) if count else []
        killed = []
        for index in victims:
            replica = live[int(index)]
            replica.die(graceful=graceful)
            killed.append(replica)
        return killed

    def live_count(self) -> int:
        return sum(1 for r in self.all if r.alive)

    def __len__(self) -> int:
        return len(self.all)
