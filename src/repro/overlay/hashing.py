"""Uniform hash functions mapping keys into overlay coordinate spaces.

The paper assumes "a hashing scheme that maps keys (names of content files
or keywords) onto a virtual coordinate space using a uniform hash function
that evenly distributes the keys to the space" (§2.1).  SHA-256 provides
the uniformity; these helpers slice its digest into the forms each overlay
needs (unit-cube points for CAN, ring identifiers for Chord).

Results are deterministic across runs and platforms, which keeps
experiments reproducible.

Both helpers sit behind a bounded memo keyed by ``(key, bits-or-dims,
salt)``: a key string is pushed through hashlib at most once per process
for a given coordinate form, and every later lookup — replica joins,
trace replay, repeated overlay builds in a sweep — is a dict probe.  The
memo is an LRU with :data:`HASH_MEMO_SIZE` entries, so unbounded key
universes (e.g. generated trace files) cannot grow it without limit.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache
from typing import Tuple

#: Bound on each memo table (entries, LRU-evicted beyond this).
HASH_MEMO_SIZE = 1 << 16


def _digest(key: str, salt: str = "") -> bytes:
    if not isinstance(key, str):
        raise TypeError(f"keys are strings, got {type(key).__name__}")
    return hashlib.sha256(f"{salt}|{key}".encode("utf-8")).digest()


def hash_to_unit_point(key: str, dims: int = 2, salt: str = "") -> Tuple[float, ...]:
    """Map ``key`` to a point in the half-open unit cube ``[0, 1)^dims``.

    Each coordinate consumes eight digest bytes, so up to four dimensions
    are supported from a single SHA-256 digest — more than CAN experiments
    ever use (the paper's CAN is two-dimensional).

    >>> p = hash_to_unit_point("music/song.mp3")
    >>> len(p), all(0.0 <= c < 1.0 for c in p)
    (2, True)
    """
    return _hash_to_unit_point(key, dims, salt)


@lru_cache(maxsize=HASH_MEMO_SIZE)
def _hash_to_unit_point(key: str, dims: int, salt: str) -> Tuple[float, ...]:
    if not 1 <= dims <= 4:
        raise ValueError(f"dims must be in [1, 4], got {dims}")
    digest = _digest(key, salt)
    coords = []
    for i in range(dims):
        chunk = digest[8 * i: 8 * (i + 1)]
        coords.append(int.from_bytes(chunk, "big") / 2 ** 64)
    return tuple(coords)


def hash_to_int(key: str, bits: int = 32, salt: str = "") -> int:
    """Map ``key`` to an integer identifier in ``[0, 2**bits)``.

    Used by the Chord and Pastry overlays for both node identifiers and
    key identifiers (with different salts so a node name and an identical
    key name do not collide systematically).
    """
    return _hash_to_int(key, bits, salt)


@lru_cache(maxsize=HASH_MEMO_SIZE)
def _hash_to_int(key: str, bits: int, salt: str) -> int:
    if not 1 <= bits <= 160:
        raise ValueError(f"bits must be in [1, 160], got {bits}")
    digest = _digest(key, salt)
    value = int.from_bytes(digest, "big")
    return value % (1 << bits)


def hash_memo_stats() -> dict:
    """Hit/miss/size counters of both memo tables (observability aid)."""
    return {
        "int": _hash_to_int.cache_info()._asdict(),
        "unit_point": _hash_to_unit_point.cache_info()._asdict(),
    }
