"""Structured peer-to-peer overlays that CUP runs on.

The paper evaluates CUP on a two-dimensional "bare-bones" content-
addressable network (CAN) and notes that CUP applies equally to Chord,
Pastry and Tapestry — any overlay providing deterministic, bounded-hop
routing from a querying node to the authority node that owns a key.

This package provides:

* :class:`~repro.overlay.base.Overlay` — the minimal interface CUP needs
  (``authority``, ``next_hop``, ``route``, ``neighbors``).
* :class:`~repro.overlay.can.CanOverlay` — a d-dimensional CAN with zone
  splitting on join, takeover on leave, greedy torus routing, and a
  perfect-grid constructor matching the paper's n = 2^k experiments.
* :class:`~repro.overlay.chord.ChordOverlay` — a Chord ring with
  power-of-two finger routing.
* :mod:`~repro.overlay.hashing` — the uniform hash functions that map keys
  into each overlay's coordinate space.
"""

from repro.overlay.base import Overlay, RoutingError
from repro.overlay.can import CanNodeState, CanOverlay, Zone
from repro.overlay.chord import ChordOverlay
from repro.overlay.hashing import hash_to_int, hash_to_unit_point
from repro.overlay.pastry import PastryOverlay

__all__ = [
    "CanNodeState",
    "CanOverlay",
    "ChordOverlay",
    "Overlay",
    "PastryOverlay",
    "RoutingError",
    "Zone",
    "hash_to_int",
    "hash_to_unit_point",
]
