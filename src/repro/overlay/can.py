"""A d-dimensional content-addressable network (CAN).

This is the "bare-bones" CAN of Ratnasamy et al. (SIGCOMM 2001) that the
paper simulates (§3.2): the unit d-torus is partitioned into rectangular
zones, one owner node per zone; keys hash to points; the zone containing a
key's point makes its owner the *authority node* for that key; and queries
route greedily — each hop forwards to the neighbor whose zone is closest
to the key's point.

Two construction modes are provided:

* :meth:`CanOverlay.perfect_grid` builds the balanced 2^k-node grid the
  paper's experiments use (n = 2^k nodes, k = 3..12), with O(n) setup.
* :meth:`CanOverlay.join` / :meth:`CanOverlay.leave` implement incremental
  membership: joins split the zone containing a random point (the CAN
  bootstrap procedure), leaves hand zones to a neighbor — merging into a
  valid rectangle when possible, plain takeover otherwise.  These support
  the node arrival/departure behaviour of §2.9.

Zone boundaries always lie on dyadic rationals (splits halve an interval),
so floating-point comparisons of zone edges are exact.
"""

from __future__ import annotations

import functools
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.overlay.base import InternTable, NodeId, Overlay, RoutingError
from repro.overlay.hashing import hash_to_unit_point

Point = Tuple[float, ...]


def _circle_distance(a: float, b: float) -> float:
    """Geodesic distance between two coordinates on the unit circle."""
    d = abs(a - b)
    return min(d, 1.0 - d)


class Zone:
    """A half-open axis-aligned box ``[lo_i, hi_i)`` in the unit d-torus.

    Zones never wrap around the 1.0 -> 0.0 seam (splits of ``[0, 1)``
    always produce seam-free boxes); *adjacency* between zones does
    consider the seam, because the coordinate space is a torus.
    """

    __slots__ = ("lo", "hi")

    def __init__(self, lo: Sequence[float], hi: Sequence[float]):
        if len(lo) != len(hi):
            raise ValueError("lo and hi must have the same dimensionality")
        for i, (a, b) in enumerate(zip(lo, hi)):
            if not (0.0 <= a < b <= 1.0):
                raise ValueError(f"invalid zone extent in dim {i}: [{a}, {b})")
        self.lo = tuple(lo)
        self.hi = tuple(hi)

    # -- geometry ------------------------------------------------------

    @property
    def dims(self) -> int:
        return len(self.lo)

    def contains(self, point: Point) -> bool:
        """Whether ``point`` lies inside this zone."""
        return all(a <= x < b for a, b, x in zip(self.lo, self.hi, point))

    def center(self) -> Point:
        return tuple((a + b) / 2.0 for a, b in zip(self.lo, self.hi))

    def volume(self) -> float:
        v = 1.0
        for a, b in zip(self.lo, self.hi):
            v *= b - a
        return v

    def torus_distance(self, point: Point) -> float:
        """Squared torus distance from the closest point of the zone.

        Zero when the zone contains ``point``.  Squared Euclidean distance
        is used (monotone with Euclidean, cheaper — routing only compares).
        """
        total = 0.0
        for a, b, x in zip(self.lo, self.hi, point):
            if a <= x < b:
                continue
            d = min(_circle_distance(x, a), _circle_distance(x, b))
            total += d * d
        return total

    # -- structure -----------------------------------------------------

    def longest_dim(self) -> int:
        """Dimension of greatest extent (lowest index wins ties).

        CAN splits along this dimension to keep zones square-ish.
        """
        extents = [b - a for a, b in zip(self.lo, self.hi)]
        return max(range(self.dims), key=lambda i: (extents[i], -i))

    def split(self, dim: Optional[int] = None) -> Tuple["Zone", "Zone"]:
        """Halve the zone along ``dim`` (default: the longest dimension)."""
        if dim is None:
            dim = self.longest_dim()
        mid = (self.lo[dim] + self.hi[dim]) / 2.0
        lo2 = list(self.lo)
        hi1 = list(self.hi)
        lo2[dim] = mid
        hi1[dim] = mid
        return Zone(self.lo, hi1), Zone(lo2, self.hi)

    def abuts(self, other: "Zone") -> bool:
        """CAN adjacency: touching faces in exactly one dimension and
        overlapping (positive measure) in every other, seam included."""
        touch_dim = None
        for i in range(self.dims):
            a_lo, a_hi = self.lo[i], self.hi[i]
            b_lo, b_hi = other.lo[i], other.hi[i]
            overlap = min(a_hi, b_hi) - max(a_lo, b_lo) > 0.0
            full_a = a_hi - a_lo == 1.0
            full_b = b_hi - b_lo == 1.0
            if overlap or full_a or full_b:
                continue
            touches = (
                a_hi == b_lo
                or b_hi == a_lo
                or (a_hi == 1.0 and b_lo == 0.0)
                or (b_hi == 1.0 and a_lo == 0.0)
            )
            if touches and touch_dim is None:
                touch_dim = i
            else:
                return False
        return touch_dim is not None

    def try_merge(self, other: "Zone") -> Optional["Zone"]:
        """Merge with ``other`` into one rectangle, if geometry allows.

        Two zones merge when they have identical extents in all dimensions
        but one and abut (seam-free) in that dimension.  Returns the merged
        zone or ``None``.
        """
        diff_dim = None
        for i in range(self.dims):
            if self.lo[i] == other.lo[i] and self.hi[i] == other.hi[i]:
                continue
            if diff_dim is not None:
                return None
            diff_dim = i
        if diff_dim is None:
            return None
        if self.hi[diff_dim] == other.lo[diff_dim]:
            first, second = self, other
        elif other.hi[diff_dim] == self.lo[diff_dim]:
            first, second = other, self
        else:
            return None
        lo = list(first.lo)
        hi = list(first.hi)
        hi[diff_dim] = second.hi[diff_dim]
        return Zone(lo, hi)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Zone) and self.lo == other.lo and self.hi == other.hi
        )

    def __hash__(self) -> int:
        return hash((self.lo, self.hi))

    def __repr__(self) -> str:
        spans = " x ".join(
            f"[{a:g},{b:g})" for a, b in zip(self.lo, self.hi)
        )
        return f"Zone({spans})"


class CanNodeState:
    """Ownership record for one CAN member.

    ``zones`` usually holds a single zone; takeover after an unmergeable
    departure can temporarily leave a node owning several (exactly as in
    CAN, where a node may manage extra zones until a background
    reassignment — which we model as persistent ownership).
    """

    __slots__ = ("node_id", "zones", "neighbors")

    def __init__(self, node_id: NodeId, zones: List[Zone]):
        self.node_id = node_id
        self.zones = zones
        self.neighbors: set = set()

    def contains(self, point: Point) -> bool:
        return any(zone.contains(point) for zone in self.zones)

    def distance(self, point: Point) -> float:
        return min(zone.torus_distance(point) for zone in self.zones)

    def volume(self) -> float:
        return sum(zone.volume() for zone in self.zones)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CanNodeState({self.node_id!r}, zones={self.zones!r})"


class CanOverlay(Overlay):
    """The CAN overlay: membership, geometry and greedy routing.

    Parameters
    ----------
    dims:
        Dimensionality of the coordinate space.  The paper uses 2.

    Notes
    -----
    ``epoch`` increments on every membership change.  Protocol layers that
    cache routing decisions (CUP caches its upstream parent per key) use
    it to invalidate those caches after churn.

    Fast path: key points are interned (hashlib once per key string);
    grids built by :meth:`perfect_grid` resolve authorities by direct
    cell arithmetic instead of a zone scan until the first join/leave
    perturbs the grid; and ``next_hop`` decisions are memoized per
    (node, key) by the base class, invalidated on every epoch bump.
    """

    def __init__(self, dims: int = 2):
        if dims < 1:
            raise ValueError(f"dims must be >= 1, got {dims}")
        super().__init__()
        self.dims = dims
        self._nodes: Dict[NodeId, CanNodeState] = {}
        # A partial, not a lambda, so the overlay stays picklable for
        # checkpoints; ``dims`` is fixed at construction.
        self._key_point = InternTable(
            functools.partial(hash_to_unit_point, dims=self.dims)
        )
        # (cols, rows) while the membership is exactly a perfect_grid
        # construction; None once churn breaks the regular geometry.
        self._grid: Optional[Tuple[int, int]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def perfect_grid(cls, num_nodes: int, dims: int = 2) -> "CanOverlay":
        """Build the balanced grid used by the paper's 2^k experiments.

        For two dimensions and ``num_nodes = 2**k`` this yields a
        ``2**ceil(k/2) x 2**floor(k/2)`` torus grid of equal square-ish
        zones — the geometry a CAN converges to under uniformly random
        joins, without simulating the join sequence.  Node ids are the
        integers ``0..num_nodes-1`` in row-major order.
        """
        if dims != 2:
            raise ValueError("perfect_grid currently supports dims=2 only")
        if num_nodes < 1 or num_nodes & (num_nodes - 1):
            raise ValueError(f"num_nodes must be a power of two, got {num_nodes}")
        k = num_nodes.bit_length() - 1
        cols = 1 << ((k + 1) // 2)
        rows = 1 << (k // 2)
        overlay = cls(dims=dims)
        for r in range(rows):
            for c in range(cols):
                node_id = r * cols + c
                zone = Zone(
                    (c / cols, r / rows),
                    ((c + 1) / cols, (r + 1) / rows),
                )
                overlay._nodes[node_id] = CanNodeState(node_id, [zone])
        for r in range(rows):
            for c in range(cols):
                node_id = r * cols + c
                state = overlay._nodes[node_id]
                for dr, dc in ((0, 1), (0, -1), (1, 0), (-1, 0)):
                    nr = (r + dr) % rows
                    nc = (c + dc) % cols
                    neighbor = nr * cols + nc
                    if neighbor != node_id:
                        state.neighbors.add(neighbor)
        overlay.epoch += 1
        overlay._grid = (cols, rows)
        return overlay

    def add_first_node(self, node_id: NodeId) -> None:
        """Bootstrap the overlay: one node owning the entire space."""
        if self._nodes:
            raise ValueError("overlay already bootstrapped; use join()")
        zone = Zone((0.0,) * self.dims, (1.0,) * self.dims)
        self._nodes[node_id] = CanNodeState(node_id, [zone])
        self._membership_changed()

    def join(self, node_id: NodeId, point: Optional[Point] = None) -> NodeId:
        """Add ``node_id``, splitting the zone that contains ``point``.

        ``point`` defaults to the hash of the node id, mirroring a joining
        CAN node picking a random point.  Returns the node whose zone was
        split (the new node's first neighbor), so protocol layers can
        perform the §2.9 handover of index entries from that node.
        """
        if node_id in self._nodes:
            raise ValueError(f"node {node_id!r} is already a member")
        if not self._nodes:
            self.add_first_node(node_id)
            return node_id
        if point is None:
            point = hash_to_unit_point(str(node_id), self.dims, salt="join")
        owner = self._owner_of(point)
        owner_state = self._nodes[owner]
        zone_idx = next(
            i for i, z in enumerate(owner_state.zones) if z.contains(point)
        )
        old_zone = owner_state.zones[zone_idx]
        first_half, second_half = old_zone.split()
        if first_half.contains(point):
            new_zone, kept_zone = first_half, second_half
        else:
            new_zone, kept_zone = second_half, first_half
        owner_state.zones[zone_idx] = kept_zone
        self._nodes[node_id] = CanNodeState(node_id, [new_zone])
        self._recompute_neighbors({node_id, owner} | set(owner_state.neighbors))
        self._membership_changed()
        return owner

    def leave(self, node_id: NodeId) -> List[Tuple[NodeId, Zone]]:
        """Remove ``node_id``; neighbors take over its zones.

        For each departing zone, a neighbor whose zone merges into a valid
        rectangle absorbs it; otherwise the smallest-volume neighbor takes
        it over as an extra zone.  Returns ``(taker, zone)`` pairs so the
        protocol layer can transfer index entries (§2.9).
        """
        state = self._nodes.get(node_id)
        if state is None:
            raise ValueError(f"node {node_id!r} is not a member")
        del self._nodes[node_id]
        takers: List[Tuple[NodeId, Zone]] = []
        affected = set(state.neighbors)
        if not self._nodes:
            self._membership_changed()
            return takers
        for zone in state.zones:
            taker = self._find_taker(zone, state.neighbors)
            taker_state = self._nodes[taker]
            merged = None
            for i, existing in enumerate(taker_state.zones):
                merged = existing.try_merge(zone)
                if merged is not None:
                    taker_state.zones[i] = merged
                    break
            if merged is None:
                taker_state.zones.append(zone)
            takers.append((taker, zone))
            affected.add(taker)
            affected.update(taker_state.neighbors)
        for other in self._nodes.values():
            other.neighbors.discard(node_id)
        self._recompute_neighbors(affected & set(self._nodes))
        self._membership_changed()
        return takers

    def _find_taker(self, zone: Zone, candidates: Iterable[NodeId]) -> NodeId:
        """Pick who absorbs a departing zone: mergeable first, then smallest."""
        members = [c for c in candidates if c in self._nodes]
        if not members:
            # Degenerate topology (e.g. two-node network): fall back to any
            # member adjacent to the zone, then to any member at all.
            members = [
                nid for nid, st in self._nodes.items()
                if any(zone.abuts(z) or z.abuts(zone) for z in st.zones)
            ] or list(self._nodes)
        mergeable = [
            c for c in members
            if any(z.try_merge(zone) is not None for z in self._nodes[c].zones)
        ]
        pool = mergeable if mergeable else members
        return min(pool, key=lambda c: (self._nodes[c].volume(), str(c)))

    def _recompute_neighbors(self, affected: Iterable[NodeId]) -> None:
        """Rebuild adjacency for ``affected`` nodes against all members.

        Membership events only change adjacency locally, so the affected
        set stays small; the scan against all members keeps correctness
        simple (churn is rare relative to queries).
        """
        for node_id in affected:
            state = self._nodes.get(node_id)
            if state is None:
                continue
            new_neighbors = set()
            for other_id, other in self._nodes.items():
                if other_id == node_id:
                    continue
                if any(
                    mine.abuts(theirs)
                    for mine in state.zones
                    for theirs in other.zones
                ):
                    new_neighbors.add(other_id)
            removed = state.neighbors - new_neighbors
            added = new_neighbors - state.neighbors
            state.neighbors = new_neighbors
            for other_id in removed:
                other = self._nodes.get(other_id)
                if other is not None:
                    other.neighbors.discard(node_id)
            for other_id in added:
                self._nodes[other_id].neighbors.add(node_id)

    def _invalidate_tables(self) -> None:
        self._grid = None

    # ------------------------------------------------------------------
    # Overlay interface
    # ------------------------------------------------------------------

    def node_ids(self) -> Iterable[NodeId]:
        return self._nodes.keys()

    def neighbors(self, node_id: NodeId) -> Iterable[NodeId]:
        return self._nodes[node_id].neighbors

    def state(self, node_id: NodeId) -> CanNodeState:
        """Ownership record (zones + neighbors) for ``node_id``."""
        return self._nodes[node_id]

    def key_point(self, key: str) -> Point:
        """The coordinate-space point ``key`` hashes to (interned)."""
        return self._key_point(key)

    def _compute_authority(self, key: str) -> NodeId:
        return self._owner_of(self.key_point(key))

    def _owner_of(self, point: Point) -> NodeId:
        if self._grid is not None:
            # Perfect-grid fast path: zone edges sit at c/cols (cols a
            # power of two), and multiplying a float by a power of two is
            # exact in binary floating point, so the cell arithmetic
            # reproduces the zone-containment test bit for bit.
            cols, rows = self._grid
            col = int(point[0] * cols)
            row = int(point[1] * rows)
            if 0 <= col < cols and 0 <= row < rows:
                return row * cols + col
            # Out-of-cube point (caller error): fall through to the scan,
            # which raises the canonical RoutingError.
        return self._owner_of_scan(point)

    def _owner_of_scan(self, point: Point) -> NodeId:
        """Reference ownership resolution: linear scan of every zone."""
        for node_id, state in self._nodes.items():
            if state.contains(point):
                return node_id
        raise RoutingError(f"no zone contains point {point} (empty overlay?)")

    def authority_reference(self, key: str) -> NodeId:
        """The specification: zone scan, uninterned point, no memo."""
        return self._owner_of_scan(hash_to_unit_point(key, self.dims))

    def _compute_next_hop(self, node_id: NodeId, key: str) -> Optional[NodeId]:
        grid = self._grid
        if (
            grid is not None
            and isinstance(node_id, int)
            and 0 <= node_id < grid[0] * grid[1]
        ):
            return self._grid_next_hop(node_id, key, grid)
        state = self._nodes.get(node_id)
        if state is None:
            raise RoutingError(f"node {node_id!r} is not a member")
        point = self.key_point(key)
        if state.contains(point):
            return None
        my_distance = state.distance(point)
        best: Optional[NodeId] = None
        best_rank: Tuple[float, str] = (float("inf"), "")
        for neighbor_id in state.neighbors:
            neighbor = self._nodes.get(neighbor_id)
            if neighbor is None:
                continue
            d = neighbor.distance(point)
            if d >= my_distance:
                continue
            rank = (d, str(neighbor_id))
            if rank < best_rank:
                best_rank = rank
                best = neighbor_id
        if best is None:
            raise RoutingError(
                f"greedy routing stuck at {node_id!r} for key {key!r} "
                f"(distance {my_distance:g}, {len(state.neighbors)} neighbors)"
            )
        return best

    def _grid_next_hop(
        self, node_id: int, key: str, grid: Tuple[int, int]
    ) -> Optional[NodeId]:
        """Greedy next hop by pure cell arithmetic on the perfect grid.

        Bit-for-bit equivalent to the generic zone walk above: every
        zone edge of a :meth:`perfect_grid` sits at ``c / cols`` with
        ``cols`` a power of two, so the containment test, the squared
        torus distances (same float expressions, same summation order)
        and the ``(distance, str(id))`` tie-break all reproduce the
        generic computation exactly — it just skips the per-zone object
        walk, which is a first-touch cost paid once per (node, key) and
        grows linearly with N.  The property suite referees this against
        ``next_hop_reference``.
        """
        cols, rows = grid
        x, y = self._key_point(key)
        # Multiplying by a power of two is exact, so the cell indices
        # reproduce the half-open zone-containment test bit for bit.
        target_col = int(x * cols)
        target_row = int(y * rows)
        row, col = divmod(node_id, cols)
        if target_col == col and target_row == row:
            return None
        my_distance = self._cell_distance(col, row, x, y, cols, rows)
        best: Optional[NodeId] = None
        best_rank: Tuple[float, str] = (float("inf"), "")
        for neighbor_row, neighbor_col in {
            (row, (col + 1) % cols),
            (row, (col - 1) % cols),
            ((row + 1) % rows, col),
            ((row - 1) % rows, col),
        }:
            if neighbor_row == row and neighbor_col == col:
                continue
            d = self._cell_distance(
                neighbor_col, neighbor_row, x, y, cols, rows
            )
            if d >= my_distance:
                continue
            neighbor_id = neighbor_row * cols + neighbor_col
            rank = (d, str(neighbor_id))
            if rank < best_rank:
                best_rank = rank
                best = neighbor_id
        if best is None:
            raise RoutingError(
                f"greedy routing stuck at {node_id!r} for key {key!r} "
                f"(distance {my_distance:g}, grid {cols}x{rows})"
            )
        return best

    @staticmethod
    def _cell_distance(
        col: int, row: int, x: float, y: float, cols: int, rows: int
    ) -> float:
        """Squared torus distance from grid cell ``(col, row)`` to a point.

        The same float expressions :meth:`Zone.torus_distance` evaluates
        for the cell's zone, inlined: per dimension, zero inside the
        half-open extent, else the nearer circle distance to either
        edge, squared and summed in dimension order.
        """
        lo = col / cols
        hi = (col + 1) / cols
        if lo <= x < hi:
            dx = 0.0
        else:
            d1 = abs(x - lo)
            if 1.0 - d1 < d1:
                d1 = 1.0 - d1
            d2 = abs(x - hi)
            if 1.0 - d2 < d2:
                d2 = 1.0 - d2
            dx = d2 if d2 < d1 else d1
        lo = row / rows
        hi = (row + 1) / rows
        if lo <= y < hi:
            dy = 0.0
        else:
            d1 = abs(y - lo)
            if 1.0 - d1 < d1:
                d1 = 1.0 - d1
            d2 = abs(y - hi)
            if 1.0 - d2 < d2:
                d2 = 1.0 - d2
            dy = d2 if d2 < d1 else d1
        return dx * dx + dy * dy
