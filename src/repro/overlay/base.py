"""The overlay interface CUP depends on.

CUP is deliberately overlay-agnostic (§2.2 of the paper): it only assumes
that "anytime a node issues a query for key K, the query will be routed
along a well-defined structured path with a bounded number of hops from
the querying node to the authority node for K", and that each hop is
chosen deterministically.  This module captures exactly that contract.

Because routing is deterministic and membership changes are rare relative
to queries, the base class also owns the overlay *fast path*: interned
positions (:class:`InternTable` hashes each NodeId/key string exactly
once and carries an int thereafter) and memoized ``next_hop`` /
``authority`` results, invalidated wholesale whenever the ``epoch``
counter is bumped by a membership change.  Concrete overlays implement
``_compute_next_hop`` / ``_compute_authority``; the public methods serve
repeat lookups from a flat dict.  The unmemoized algorithms remain
reachable through ``next_hop_reference`` / ``authority_reference`` so
property tests can referee the caches against the specification.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from typing import Any, Callable, Dict, Iterable, List, Optional

NodeId = Any

#: Sentinel distinguishing "not cached" from a cached ``None`` next hop.
_MISS = object()


class RoutingError(RuntimeError):
    """Raised when an overlay cannot make routing progress.

    A correctly constructed overlay never raises this; it exists to turn
    would-be infinite forwarding loops (e.g. from a corrupted topology in
    a failure-injection test) into loud failures.
    """


class InternTable:
    """Bounded string → position interning (hash once, carry ints).

    Wraps a hash function so each distinct value is pushed through it at
    most once while the table holds it; lookups after the first are dict
    probes.  The table is cleared when it reaches ``max_size`` — interned
    positions are pure functions of the value, so eviction only costs a
    re-hash, never correctness.
    """

    __slots__ = ("_fn", "_table", "_max_size", "misses")

    def __init__(self, fn: Callable[[str], Any], max_size: int = 1 << 20):
        if max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {max_size}")
        self._fn = fn
        self._table: Dict[str, Any] = {}
        self._max_size = max_size
        self.misses = 0

    def __call__(self, value: str) -> Any:
        table = self._table
        position = table.get(value, _MISS)
        if position is _MISS:
            position = self._fn(value)
            if len(table) >= self._max_size:
                table.clear()
            table[value] = position
            self.misses += 1
        return position

    def __len__(self) -> int:
        return len(self._table)


class Overlay(ABC):
    """Deterministic structured routing substrate.

    Implementations must guarantee:

    * ``authority(key)`` is a pure function of the key and the current
      membership;
    * ``next_hop(node, key)`` returns a *neighbor* of ``node`` that is
      strictly closer to the authority (so routes are loop-free), or
      ``None`` when ``node`` is itself the authority;
    * routes are bounded by :attr:`max_route_length`.

    Subclasses implement ``_compute_next_hop`` / ``_compute_authority``
    and call :meth:`_membership_changed` after every join/leave; the base
    class provides the epoch-invalidated memo in front of both, plus the
    build-time accounting (:attr:`table_build_seconds`,
    :attr:`table_builds`) sweep reports use to separate setup cost from
    steady-state routing throughput.
    """

    #: Safety bound on route length; ``route`` raises beyond this.
    max_route_length = 10_000

    #: Bound on memoized (node, key) routing results per epoch; the memo
    #: is cleared (not evicted entrywise) beyond this, so a pathological
    #: key universe degrades to the unmemoized cost, never to unbounded
    #: memory.
    route_cache_limit = 1 << 20

    def __init__(self) -> None:
        #: Bumped on every membership change; protocol layers and the
        #: routing memos below invalidate against it.
        self.epoch = 0
        #: Cumulative wall seconds spent (re)building derived routing
        #: state — route tables, interned member arrays — and how many
        #: such builds happened.  Setup cost, reported separately from
        #: steady-state throughput.
        self.table_build_seconds = 0.0
        self.table_builds = 0
        self._next_hop_cache: Dict[Any, Optional[NodeId]] = {}
        self._authority_cache: Dict[str, NodeId] = {}

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    @abstractmethod
    def node_ids(self) -> Iterable[NodeId]:
        """All current member node identifiers."""

    @abstractmethod
    def neighbors(self, node_id: NodeId) -> Iterable[NodeId]:
        """Direct overlay neighbors of ``node_id``."""

    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in set(self.node_ids())

    def __len__(self) -> int:
        return sum(1 for _ in self.node_ids())

    def _membership_changed(self) -> None:
        """Invalidate every routing memo; call after each join/leave."""
        self.epoch += 1
        self._next_hop_cache.clear()
        self._authority_cache.clear()
        self._invalidate_tables()

    def _invalidate_tables(self) -> None:
        """Hook: drop membership-derived routing tables (fingers, sorted
        member arrays, grid indices).  Default: nothing to drop."""

    def _count_table_build(self, started_at: float) -> None:
        """Accrue one derived-table (re)build into the setup-cost tally."""
        self.table_build_seconds += time.perf_counter() - started_at
        self.table_builds += 1

    # ------------------------------------------------------------------
    # Routing (memoized fast path)
    # ------------------------------------------------------------------

    def authority(self, key: str) -> NodeId:
        """The node that owns ``key``'s slice of the global index."""
        cache = self._authority_cache
        owner = cache.get(key, _MISS)
        if owner is _MISS:
            owner = self._compute_authority(key)
            if len(cache) >= self.route_cache_limit:
                cache.clear()
            cache[key] = owner
        return owner

    def next_hop(self, node_id: NodeId, key: str) -> Optional[NodeId]:
        """The neighbor to forward a query for ``key`` to.

        Returns ``None`` iff ``node_id`` is the authority for ``key``.
        Memoized per (node, key) within the current membership epoch.
        """
        cache = self._next_hop_cache
        cache_key = (node_id, key)
        hop = cache.get(cache_key, _MISS)
        if hop is _MISS:
            hop = self._compute_next_hop(node_id, key)
            if len(cache) >= self.route_cache_limit:
                cache.clear()
            cache[cache_key] = hop
        return hop

    def _compute_authority(self, key: str) -> NodeId:
        """Unmemoized authority resolution (overlay-specific)."""
        raise NotImplementedError(
            f"{type(self).__name__} must implement _compute_authority "
            "or override authority()"
        )

    def _compute_next_hop(self, node_id: NodeId, key: str) -> Optional[NodeId]:
        """Unmemoized next-hop resolution (overlay-specific)."""
        raise NotImplementedError(
            f"{type(self).__name__} must implement _compute_next_hop "
            "or override next_hop()"
        )

    # ------------------------------------------------------------------
    # Reference (unmemoized) routing — the property-test referee
    # ------------------------------------------------------------------

    def authority_reference(self, key: str) -> NodeId:
        """``authority`` recomputed from scratch, bypassing every memo.

        Overlays with a distinct specification algorithm (e.g. Pastry's
        full-membership affinity scan) override this; the default simply
        re-runs the compute path uncached.
        """
        return self._compute_authority(key)

    def next_hop_reference(self, node_id: NodeId, key: str) -> Optional[NodeId]:
        """``next_hop`` recomputed from scratch, bypassing every memo."""
        return self._compute_next_hop(node_id, key)

    # ------------------------------------------------------------------
    # Derived routing
    # ------------------------------------------------------------------

    def route(self, start: NodeId, key: str) -> List[NodeId]:
        """Full query path from ``start`` to the authority, inclusive.

        The returned list begins with ``start`` and ends with
        ``authority(key)``; its length minus one is the hop distance used
        throughout the paper's cost model.
        """
        path = [start]
        current = start
        for _ in range(self.max_route_length):
            nxt = self.next_hop(current, key)
            if nxt is None:
                return path
            if nxt == current:
                raise RoutingError(
                    f"overlay returned {current!r} as its own next hop for {key!r}"
                )
            path.append(nxt)
            current = nxt
        raise RoutingError(
            f"route for key {key!r} from {start!r} exceeded "
            f"{self.max_route_length} hops"
        )

    def distance(self, node_id: NodeId, key: str) -> int:
        """Hop count from ``node_id`` to the authority for ``key``.

        This is the distance ``D`` used by the probability-based cut-off
        policies (§3.4) and the push-level experiments (§3.3).
        """
        return len(self.route(node_id, key)) - 1
