"""The overlay interface CUP depends on.

CUP is deliberately overlay-agnostic (§2.2 of the paper): it only assumes
that "anytime a node issues a query for key K, the query will be routed
along a well-defined structured path with a bounded number of hops from
the querying node to the authority node for K", and that each hop is
chosen deterministically.  This module captures exactly that contract.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Iterable, List, Optional

NodeId = Any


class RoutingError(RuntimeError):
    """Raised when an overlay cannot make routing progress.

    A correctly constructed overlay never raises this; it exists to turn
    would-be infinite forwarding loops (e.g. from a corrupted topology in
    a failure-injection test) into loud failures.
    """


class Overlay(ABC):
    """Deterministic structured routing substrate.

    Implementations must guarantee:

    * ``authority(key)`` is a pure function of the key and the current
      membership;
    * ``next_hop(node, key)`` returns a *neighbor* of ``node`` that is
      strictly closer to the authority (so routes are loop-free), or
      ``None`` when ``node`` is itself the authority;
    * routes are bounded by :attr:`max_route_length`.
    """

    #: Safety bound on route length; ``route`` raises beyond this.
    max_route_length = 10_000

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    @abstractmethod
    def node_ids(self) -> Iterable[NodeId]:
        """All current member node identifiers."""

    @abstractmethod
    def neighbors(self, node_id: NodeId) -> Iterable[NodeId]:
        """Direct overlay neighbors of ``node_id``."""

    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in set(self.node_ids())

    def __len__(self) -> int:
        return sum(1 for _ in self.node_ids())

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    @abstractmethod
    def authority(self, key: str) -> NodeId:
        """The node that owns ``key``'s slice of the global index."""

    @abstractmethod
    def next_hop(self, node_id: NodeId, key: str) -> Optional[NodeId]:
        """The neighbor to forward a query for ``key`` to.

        Returns ``None`` iff ``node_id`` is the authority for ``key``.
        """

    def route(self, start: NodeId, key: str) -> List[NodeId]:
        """Full query path from ``start`` to the authority, inclusive.

        The returned list begins with ``start`` and ends with
        ``authority(key)``; its length minus one is the hop distance used
        throughout the paper's cost model.
        """
        path = [start]
        current = start
        for _ in range(self.max_route_length):
            nxt = self.next_hop(current, key)
            if nxt is None:
                return path
            if nxt == current:
                raise RoutingError(
                    f"overlay returned {current!r} as its own next hop for {key!r}"
                )
            path.append(nxt)
            current = nxt
        raise RoutingError(
            f"route for key {key!r} from {start!r} exceeded "
            f"{self.max_route_length} hops"
        )

    def distance(self, node_id: NodeId, key: str) -> int:
        """Hop count from ``node_id`` to the authority for ``key``.

        This is the distance ``D`` used by the probability-based cut-off
        policies (§3.4) and the push-level experiments (§3.3).
        """
        return len(self.route(node_id, key)) - 1
