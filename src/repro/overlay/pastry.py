"""A Pastry overlay (Rowstron & Druschel, Middleware 2001).

The third of the four substrates the paper names (§2.2).  Pastry routes
by identifier *prefix*: node and key identifiers are strings of base-16
digits; each hop forwards to a node sharing at least one more leading
digit with the key, falling back to a numerically closer node when the
routing table has no longer-prefix entry.  Expected route length is
O(log_16 n).

As with our Chord, routing state is derived on demand from the global
membership rather than maintained by the join/leaf-set protocols: the
hop sequences match a converged Pastry ring, which is all CUP's
behaviour depends on.

Ownership and termination use a single total order — the *affinity* of a
node id for a key: ``(shared_prefix_digits, -circular_distance, id)``.
The authority for a key is the affinity maximum; every hop strictly
increases affinity, so routes are loop-free and end at the authority.
This folds Pastry's leaf-set tie-breaking into one deterministic rule
(documented simplification of the real protocol's final-hop handling).

Fast path
---------
The specification algorithm scans every member per routing decision
(kept verbatim as ``next_hop_reference`` / ``authority_reference``).
The fast path exploits a structural fact: members sharing ``l`` leading
digits with a key occupy one aligned, contiguous identifier block around
the key, so for *any* contiguous candidate interval around the key
position the affinity maximum is attained at the interval's nearest
member below or above the key.  The affinity maximum over the whole
membership — and over the "strictly longer prefix" subset that drives
prefix hops — is therefore decided by inspecting at most the two sorted
neighbors of the key position (plus one skip past the routing node
itself), turning each decision into one bisect over the interned
position array: O(log n) instead of O(n).  Shared-prefix length is a
single XOR/bit_length, not a per-digit loop, and the base class memo
serves repeat (node, key) decisions as dict probes, invalidated when a
membership change bumps ``epoch``.
"""

from __future__ import annotations

import bisect
import functools
import time
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.overlay.base import InternTable, NodeId, Overlay, RoutingError
from repro.overlay.hashing import hash_to_int

#: Base-16 digits, as in the Pastry paper (b = 4 bits per digit).
DIGIT_BITS = 4


class PastryOverlay(Overlay):
    """Prefix-routing overlay with numerically-closest ownership.

    Parameters
    ----------
    digits:
        Identifier length in base-16 digits (id space is
        ``16**digits``).  Eight digits (32 bits) comfortably avoids
        collisions for the network sizes the experiments use.
    """

    def __init__(self, digits: int = 8):
        if not 2 <= digits <= 16:
            raise ValueError(f"digits must be in [2, 16], got {digits}")
        super().__init__()
        self.digits = digits
        self.bits = digits * DIGIT_BITS
        self.size = 1 << self.bits
        self._id_of: Dict[NodeId, int] = {}
        self._node_at: Dict[int, NodeId] = {}
        self._members: List[Tuple[int, NodeId]] = []  # sorted by position
        # Interned key → identifier position (hashlib once per string;
        # membership-independent, so never invalidated).  A partial, not
        # a lambda, so the overlay stays picklable for checkpoints.
        self._key_position = InternTable(
            functools.partial(hash_to_int, bits=self.bits, salt="pastry-key")
        )
        # Parallel interned arrays derived from _members, rebuilt lazily
        # once per epoch: positions for bisect, ids for the result.
        self._positions: List[int] = []
        self._ids_sorted: List[NodeId] = []
        self._tables_epoch = -1

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, node_ids: Iterable[NodeId], digits: int = 8) -> "PastryOverlay":
        """Construct a converged overlay containing ``node_ids``.

        Bulk construction: members are collected unsorted and sorted
        once, so building n members is O(n log n) instead of the
        O(n^2 log n) of repeated per-join sorts.
        """
        overlay = cls(digits=digits)
        started = time.perf_counter()
        for node_id in node_ids:
            overlay._insert(node_id)
        overlay._members.sort()
        overlay._count_table_build(started)
        overlay._membership_changed()
        return overlay

    def _insert(self, node_id: NodeId) -> int:
        """Hash and record one member without re-sorting the member list."""
        if node_id in self._id_of:
            raise ValueError(f"node {node_id!r} is already a member")
        position = hash_to_int(str(node_id), self.bits, salt="pastry-node")
        if position in self._node_at:
            raise ValueError(
                f"identifier collision: {node_id!r} vs "
                f"{self._node_at[position]!r}"
            )
        self._id_of[node_id] = position
        self._node_at[position] = node_id
        self._members.append((position, node_id))
        return position

    def join(self, node_id: NodeId) -> None:
        self._insert(node_id)
        self._members.sort()
        self._membership_changed()

    def leave(self, node_id: NodeId) -> None:
        position = self._id_of.pop(node_id, None)
        if position is None:
            raise ValueError(f"node {node_id!r} is not a member")
        del self._node_at[position]
        self._members.remove((position, node_id))
        self._membership_changed()

    def _invalidate_tables(self) -> None:
        self._tables_epoch = -1

    def _sorted_tables(self) -> Tuple[List[int], List[NodeId]]:
        """Parallel (positions, ids) arrays, rebuilt once per epoch."""
        if self._tables_epoch != self.epoch:
            started = time.perf_counter()
            self._positions = [position for position, _ in self._members]
            self._ids_sorted = [node_id for _, node_id in self._members]
            self._tables_epoch = self.epoch
            self._count_table_build(started)
        return self._positions, self._ids_sorted

    # ------------------------------------------------------------------
    # Identifier arithmetic
    # ------------------------------------------------------------------

    def node_position(self, node_id: NodeId) -> int:
        return self._id_of[node_id]

    def key_position(self, key: str) -> int:
        return self._key_position(key)

    def shared_prefix(self, a: int, b: int) -> int:
        """Leading base-16 digits ``a`` and ``b`` have in common.

        One XOR and a bit_length: the highest differing bit pins the
        first differing digit, so no per-digit loop is needed.
        """
        x = a ^ b
        if x == 0:
            return self.digits
        return (self.bits - x.bit_length()) // DIGIT_BITS

    def _circular_distance(self, a: int, b: int) -> int:
        d = abs(a - b)
        return min(d, self.size - d)

    def _affinity(self, position: int, key_pos: int) -> Tuple[int, int, int]:
        """Total order of ownership: longer prefix, then closer, then id."""
        return (
            self.shared_prefix(position, key_pos),
            -self._circular_distance(position, key_pos),
            -position,
        )

    # ------------------------------------------------------------------
    # Overlay interface
    # ------------------------------------------------------------------

    def node_ids(self) -> Iterable[NodeId]:
        return self._id_of.keys()

    def neighbors(self, node_id: NodeId) -> Iterable[NodeId]:
        """Routing-table representatives plus the leaf set.

        The routing table holds, per (prefix row ``l``, digit ``d``), one
        representative member that shares exactly ``l`` leading digits
        with this node and has digit ``d`` at position ``l`` (the
        numerically closest such member, as a proximity stand-in).  The
        leaf set holds the two nearest members by identifier on each
        side.  Together these are the nodes this one forwards through in
        the common case; rare fallback hops (§ module docstring) may use
        other members, as real Pastry does via its neighborhood set.
        """
        position = self._id_of[node_id]
        out: Set[NodeId] = set()
        if len(self._members) > 1:
            index = self._members.index((position, node_id))
            for offset in (-2, -1, 1, 2):
                peer = self._members[(index + offset) % len(self._members)][1]
                if peer != node_id:
                    out.add(peer)
        best: Dict[Tuple[int, int], Tuple[int, NodeId]] = {}
        for other_pos, other_id in self._members:
            if other_id == node_id:
                continue
            row = self.shared_prefix(position, other_pos)
            if row >= self.digits:
                continue
            shift = (self.digits - 1 - row) * DIGIT_BITS
            digit = (other_pos >> shift) & 0xF
            distance = self._circular_distance(position, other_pos)
            slot = (row, digit)
            if slot not in best or distance < best[slot][0]:
                best[slot] = (distance, other_id)
        out.update(entry for _, entry in best.values())
        return out

    def _ring_candidates(self, key_pos: int) -> Tuple[int, int, int]:
        """(index of predecessor, index of successor, member count).

        Predecessor/successor of ``key_pos`` in circular sorted-position
        order (successor inclusive of an exact match).  Any contiguous
        candidate interval around the key attains its affinity maximum at
        one of these two members (see module docstring), which is what
        lets routing decisions avoid the full-membership scan.
        """
        positions, _ = self._sorted_tables()
        n = len(positions)
        index = bisect.bisect_left(positions, key_pos)
        return (index - 1) % n, index % n, n

    def _compute_authority(self, key: str) -> NodeId:
        if not self._members:
            raise RoutingError("empty overlay")
        key_pos = self.key_position(key)
        positions, ids = self._sorted_tables()
        pred, succ, _ = self._ring_candidates(key_pos)
        best_index = pred
        if succ != pred and (
            self._affinity(positions[succ], key_pos)
            > self._affinity(positions[pred], key_pos)
        ):
            best_index = succ
        return ids[best_index]

    def _compute_next_hop(self, node_id: NodeId, key: str) -> Optional[NodeId]:
        position = self._id_of.get(node_id)
        if position is None:
            raise RoutingError(f"node {node_id!r} is not a member")
        key_pos = self.key_position(key)
        positions, ids = self._sorted_tables()
        pred, succ, n = self._ring_candidates(key_pos)
        if n == 1:
            return None  # alone: this node owns everything

        # The global affinity maximum (the authority) is pred or succ;
        # if it is this node, the route terminates here.
        best_index = pred
        if succ != pred and (
            self._affinity(positions[succ], key_pos)
            > self._affinity(positions[pred], key_pos)
        ):
            best_index = succ
        if positions[best_index] == position:
            return None

        # Nearest members on each side of the key *excluding* this node:
        # every candidate subset that matters (longer-prefix block, full
        # membership) is a contiguous interval around the key, so its
        # affinity maximum is one of these two.
        if positions[pred] == position:
            pred = (pred - 1) % n
        if positions[succ] == position:
            succ = (succ + 1) % n
        candidates = (pred,) if succ == pred else (pred, succ)

        my_prefix = self.shared_prefix(position, key_pos)
        best_prefix_hop: Optional[Tuple[Tuple[int, int, int], int]] = None
        best_overall: Optional[Tuple[Tuple[int, int, int], int]] = None
        for index in candidates:
            affinity = self._affinity(positions[index], key_pos)
            if best_overall is None or affinity > best_overall[0]:
                best_overall = (affinity, index)
            if affinity[0] > my_prefix and (
                best_prefix_hop is None or affinity > best_prefix_hop[0]
            ):
                best_prefix_hop = (affinity, index)
        if best_prefix_hop is not None:
            return ids[best_prefix_hop[1]]
        # No longer-prefix member exists; move strictly up the affinity
        # order (numerically closer at the same prefix length).
        return ids[best_overall[1]]

    # ------------------------------------------------------------------
    # Reference (specification) routing — full-membership scans
    # ------------------------------------------------------------------

    def _affinity_reference(self, position: int, key_pos: int) -> Tuple[int, int, int]:
        """Affinity with the per-digit prefix loop (pre-fast-path form)."""
        shared = 0
        for i in range(self.digits):
            shift = (self.digits - 1 - i) * DIGIT_BITS
            if (position >> shift) & 0xF != (key_pos >> shift) & 0xF:
                break
            shared += 1
        return (
            shared,
            -self._circular_distance(position, key_pos),
            -position,
        )

    def authority_reference(self, key: str) -> NodeId:
        """The specification: affinity maximum over every member."""
        if not self._members:
            raise RoutingError("empty overlay")
        key_pos = hash_to_int(key, self.bits, salt="pastry-key")
        return max(
            self._members,
            key=lambda member: self._affinity_reference(member[0], key_pos),
        )[1]

    def next_hop_reference(self, node_id: NodeId, key: str) -> Optional[NodeId]:
        """The specification: scan every member per routing decision."""
        position = self._id_of.get(node_id)
        if position is None:
            raise RoutingError(f"node {node_id!r} is not a member")
        key_pos = hash_to_int(key, self.bits, salt="pastry-key")
        my_affinity = self._affinity_reference(position, key_pos)
        my_prefix = my_affinity[0]

        # Prefix hop: the closest member sharing at least one more digit.
        best_prefix_hop: Optional[Tuple[Tuple[int, int, int], NodeId]] = None
        # Fallback: the best-affinity member overall.
        best_overall: Tuple[Tuple[int, int, int], NodeId] = (my_affinity, node_id)
        for other_pos, other_id in self._members:
            if other_id == node_id:
                continue
            affinity = self._affinity_reference(other_pos, key_pos)
            if affinity > best_overall[0]:
                best_overall = (affinity, other_id)
            if affinity[0] > my_prefix:
                if best_prefix_hop is None or affinity > best_prefix_hop[0]:
                    best_prefix_hop = (affinity, other_id)
        if best_overall[1] == node_id:
            return None  # this node is the affinity maximum: the authority
        if best_prefix_hop is not None:
            return best_prefix_hop[1]
        # No longer-prefix member exists; move strictly up the affinity
        # order (numerically closer at the same prefix length).
        return best_overall[1]
