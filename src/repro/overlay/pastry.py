"""A Pastry overlay (Rowstron & Druschel, Middleware 2001).

The third of the four substrates the paper names (§2.2).  Pastry routes
by identifier *prefix*: node and key identifiers are strings of base-16
digits; each hop forwards to a node sharing at least one more leading
digit with the key, falling back to a numerically closer node when the
routing table has no longer-prefix entry.  Expected route length is
O(log_16 n).

As with our Chord, routing state is derived on demand from the global
membership rather than maintained by the join/leaf-set protocols: the
hop sequences match a converged Pastry ring, which is all CUP's
behaviour depends on.

Ownership and termination use a single total order — the *affinity* of a
node id for a key: ``(shared_prefix_digits, -circular_distance, id)``.
The authority for a key is the affinity maximum; every hop strictly
increases affinity, so routes are loop-free and end at the authority.
This folds Pastry's leaf-set tie-breaking into one deterministic rule
(documented simplification of the real protocol's final-hop handling).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.overlay.base import NodeId, Overlay, RoutingError
from repro.overlay.hashing import hash_to_int

#: Base-16 digits, as in the Pastry paper (b = 4 bits per digit).
DIGIT_BITS = 4


class PastryOverlay(Overlay):
    """Prefix-routing overlay with numerically-closest ownership.

    Parameters
    ----------
    digits:
        Identifier length in base-16 digits (id space is
        ``16**digits``).  Eight digits (32 bits) comfortably avoids
        collisions for the network sizes the experiments use.
    """

    def __init__(self, digits: int = 8):
        if not 2 <= digits <= 16:
            raise ValueError(f"digits must be in [2, 16], got {digits}")
        self.digits = digits
        self.bits = digits * DIGIT_BITS
        self.size = 1 << self.bits
        self.epoch = 0
        self._id_of: Dict[NodeId, int] = {}
        self._node_at: Dict[int, NodeId] = {}
        self._members: List[Tuple[int, NodeId]] = []  # sorted by position
        self._authority_cache: Dict[str, NodeId] = {}
        self._key_cache: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, node_ids: Iterable[NodeId], digits: int = 8) -> "PastryOverlay":
        overlay = cls(digits=digits)
        for node_id in node_ids:
            overlay.join(node_id)
        return overlay

    def join(self, node_id: NodeId) -> None:
        if node_id in self._id_of:
            raise ValueError(f"node {node_id!r} is already a member")
        position = hash_to_int(str(node_id), self.bits, salt="pastry-node")
        if position in self._node_at:
            raise ValueError(
                f"identifier collision: {node_id!r} vs "
                f"{self._node_at[position]!r}"
            )
        self._id_of[node_id] = position
        self._node_at[position] = node_id
        self._members.append((position, node_id))
        self._members.sort()
        self._membership_changed()

    def leave(self, node_id: NodeId) -> None:
        position = self._id_of.pop(node_id, None)
        if position is None:
            raise ValueError(f"node {node_id!r} is not a member")
        del self._node_at[position]
        self._members.remove((position, node_id))
        self._membership_changed()

    def _membership_changed(self) -> None:
        self.epoch += 1
        self._authority_cache.clear()

    # ------------------------------------------------------------------
    # Identifier arithmetic
    # ------------------------------------------------------------------

    def node_position(self, node_id: NodeId) -> int:
        return self._id_of[node_id]

    def key_position(self, key: str) -> int:
        position = self._key_cache.get(key)
        if position is None:
            position = hash_to_int(key, self.bits, salt="pastry-key")
            self._key_cache[key] = position
        return position

    def shared_prefix(self, a: int, b: int) -> int:
        """Leading base-16 digits ``a`` and ``b`` have in common."""
        for i in range(self.digits):
            shift = (self.digits - 1 - i) * DIGIT_BITS
            if (a >> shift) & 0xF != (b >> shift) & 0xF:
                return i
        return self.digits

    def _circular_distance(self, a: int, b: int) -> int:
        d = abs(a - b)
        return min(d, self.size - d)

    def _affinity(self, position: int, key_pos: int) -> Tuple[int, int, int]:
        """Total order of ownership: longer prefix, then closer, then id."""
        return (
            self.shared_prefix(position, key_pos),
            -self._circular_distance(position, key_pos),
            -position,
        )

    # ------------------------------------------------------------------
    # Overlay interface
    # ------------------------------------------------------------------

    def node_ids(self) -> Iterable[NodeId]:
        return self._id_of.keys()

    def neighbors(self, node_id: NodeId) -> Iterable[NodeId]:
        """Routing-table representatives plus the leaf set.

        The routing table holds, per (prefix row ``l``, digit ``d``), one
        representative member that shares exactly ``l`` leading digits
        with this node and has digit ``d`` at position ``l`` (the
        numerically closest such member, as a proximity stand-in).  The
        leaf set holds the two nearest members by identifier on each
        side.  Together these are the nodes this one forwards through in
        the common case; rare fallback hops (§ module docstring) may use
        other members, as real Pastry does via its neighborhood set.
        """
        position = self._id_of[node_id]
        out: Set[NodeId] = set()
        if len(self._members) > 1:
            index = self._members.index((position, node_id))
            for offset in (-2, -1, 1, 2):
                peer = self._members[(index + offset) % len(self._members)][1]
                if peer != node_id:
                    out.add(peer)
        best: Dict[Tuple[int, int], Tuple[int, NodeId]] = {}
        for other_pos, other_id in self._members:
            if other_id == node_id:
                continue
            row = self.shared_prefix(position, other_pos)
            if row >= self.digits:
                continue
            shift = (self.digits - 1 - row) * DIGIT_BITS
            digit = (other_pos >> shift) & 0xF
            distance = self._circular_distance(position, other_pos)
            slot = (row, digit)
            if slot not in best or distance < best[slot][0]:
                best[slot] = (distance, other_id)
        out.update(entry for _, entry in best.values())
        return out

    def authority(self, key: str) -> NodeId:
        owner = self._authority_cache.get(key)
        if owner is None:
            if not self._members:
                raise RoutingError("empty overlay")
            key_pos = self.key_position(key)
            owner = max(
                self._members,
                key=lambda member: self._affinity(member[0], key_pos),
            )[1]
            self._authority_cache[key] = owner
        return owner

    def next_hop(self, node_id: NodeId, key: str) -> Optional[NodeId]:
        position = self._id_of.get(node_id)
        if position is None:
            raise RoutingError(f"node {node_id!r} is not a member")
        key_pos = self.key_position(key)
        my_affinity = self._affinity(position, key_pos)
        my_prefix = my_affinity[0]

        # Prefix hop: the closest member sharing at least one more digit.
        best_prefix_hop: Optional[Tuple[Tuple[int, int, int], NodeId]] = None
        # Fallback: the best-affinity member overall.
        best_overall: Tuple[Tuple[int, int, int], NodeId] = (my_affinity, node_id)
        for other_pos, other_id in self._members:
            if other_id == node_id:
                continue
            affinity = self._affinity(other_pos, key_pos)
            if affinity > best_overall[0]:
                best_overall = (affinity, other_id)
            if affinity[0] > my_prefix:
                if best_prefix_hop is None or affinity > best_prefix_hop[0]:
                    best_prefix_hop = (affinity, other_id)
        if best_overall[1] == node_id:
            return None  # this node is the affinity maximum: the authority
        if best_prefix_hop is not None:
            return best_prefix_hop[1]
        # No longer-prefix member exists; move strictly up the affinity
        # order (numerically closer at the same prefix length).
        return best_overall[1]
