"""A Chord ring overlay (Stoica et al., SIGCOMM 2001).

The paper positions CUP as substrate-agnostic (§2.2): any structured
overlay with deterministic bounded-hop routing can host it.  This Chord
implementation exists to demonstrate that — the CUP protocol layer runs
unchanged over either :class:`~repro.overlay.can.CanOverlay` or this
class — and to let ablation benchmarks compare CUP's behaviour across
routing geometries (Chord's O(log n) greedy-by-identifier paths versus
CAN's O(sqrt n) grid paths).

Routing state is derived from the current membership, not maintained by
a stabilization protocol, so hop sequences are exactly those of a
converged Chord ring.  The fast path precomputes each member's finger
targets (its deduplicated descending-stride finger table) the first time
the member routes in an epoch; ``next_hop`` then scans that flat tuple
instead of bisecting the ring once per finger, and the base class memo
serves repeat (node, key) lookups as dict probes.  Membership changes
bump ``epoch``, which drops both the finger tables and the memo.
"""

from __future__ import annotations

import bisect
import functools
import time
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.overlay.base import InternTable, NodeId, Overlay, RoutingError
from repro.overlay.hashing import hash_to_int


class ChordOverlay(Overlay):
    """Chord ring with power-of-two finger routing.

    Parameters
    ----------
    bits:
        Identifier width ``m``; the ring has ``2**m`` positions.

    Node identifiers are arbitrary hashable values; each is mapped to a
    ring position with the uniform hash (collisions raise, since two
    co-located nodes would be indistinguishable to routing).
    """

    def __init__(self, bits: int = 32):
        if not 3 <= bits <= 64:
            raise ValueError(f"bits must be in [3, 64], got {bits}")
        super().__init__()
        self.bits = bits
        self.size = 1 << bits
        self._id_of: Dict[NodeId, int] = {}
        self._node_at: Dict[int, NodeId] = {}
        self._ring: List[int] = []  # sorted ring positions
        # Interned key → ring position (hashlib runs once per key string;
        # positions do not depend on membership, so never invalidated).
        # A partial, not a lambda: overlays live inside checkpointable
        # networks, and ``bits`` is fixed at construction anyway.
        self._key_position = InternTable(
            functools.partial(hash_to_int, bits=self.bits, salt="chord-key")
        )
        # position → deduplicated descending-stride finger targets,
        # built lazily per member per epoch.
        self._finger_table: Dict[int, Tuple[int, ...]] = {}

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, node_ids: Iterable[NodeId], bits: int = 32) -> "ChordOverlay":
        """Construct a converged ring containing ``node_ids``.

        Bulk construction: positions are inserted unsorted and the ring
        is sorted once, so building n members is O(n log n) instead of
        the O(n^2) of repeated ``join`` insertions.
        """
        overlay = cls(bits=bits)
        started = time.perf_counter()
        for node_id in node_ids:
            overlay._insert(node_id)
        overlay._ring = sorted(overlay._node_at)
        overlay._count_table_build(started)
        overlay._membership_changed()
        return overlay

    def _insert(self, node_id: NodeId) -> int:
        """Hash and record one member without touching the sorted ring."""
        if node_id in self._id_of:
            raise ValueError(f"node {node_id!r} is already a member")
        position = hash_to_int(str(node_id), self.bits, salt="chord-node")
        if position in self._node_at:
            raise ValueError(
                f"ring position collision: {node_id!r} vs "
                f"{self._node_at[position]!r} at {position}"
            )
        self._id_of[node_id] = position
        self._node_at[position] = node_id
        return position

    def join(self, node_id: NodeId) -> None:
        """Add a node at the ring position its identifier hashes to."""
        position = self._insert(node_id)
        bisect.insort(self._ring, position)
        self._membership_changed()

    def leave(self, node_id: NodeId) -> None:
        """Remove a node; its arc is absorbed by its successor."""
        position = self._id_of.pop(node_id, None)
        if position is None:
            raise ValueError(f"node {node_id!r} is not a member")
        del self._node_at[position]
        index = bisect.bisect_left(self._ring, position)
        del self._ring[index]
        self._membership_changed()

    def _invalidate_tables(self) -> None:
        self._finger_table.clear()

    # ------------------------------------------------------------------
    # Ring arithmetic
    # ------------------------------------------------------------------

    def ring_position(self, node_id: NodeId) -> int:
        """Ring position of a member node."""
        return self._id_of[node_id]

    def key_position(self, key: str) -> int:
        """Ring position ``key`` hashes to (interned)."""
        return self._key_position(key)

    def successor_position(self, position: int) -> int:
        """The first member position clockwise from ``position`` (inclusive)."""
        if not self._ring:
            raise RoutingError("empty ring")
        index = bisect.bisect_left(self._ring, position % self.size)
        if index == len(self._ring):
            index = 0
        return self._ring[index]

    @staticmethod
    def _in_open_interval(x: int, lo: int, hi: int, size: int) -> bool:
        """Whether ``x`` lies in the clockwise-open interval ``(lo, hi]``."""
        x, lo, hi = x % size, lo % size, hi % size
        if lo < hi:
            return lo < x <= hi
        return x > lo or x <= hi

    def _fingers(self, position: int) -> Tuple[int, ...]:
        """Deduplicated descending-stride finger targets of one member.

        Equivalent to probing ``successor_position(position + 2**i)`` for
        ``i = bits-1 .. 0`` on every routing decision: re-checking a
        duplicate target cannot change the closest-preceding-finger
        outcome, so deduplication preserves hop sequences exactly.
        """
        fingers = self._finger_table.get(position)
        if fingers is None:
            started = time.perf_counter()
            seen: Set[int] = set()
            ordered: List[int] = []
            for i in reversed(range(self.bits)):
                target = self.successor_position(position + (1 << i))
                if target != position and target not in seen:
                    seen.add(target)
                    ordered.append(target)
            fingers = tuple(ordered)
            self._finger_table[position] = fingers
            self._count_table_build(started)
        return fingers

    # ------------------------------------------------------------------
    # Overlay interface
    # ------------------------------------------------------------------

    def node_ids(self) -> Iterable[NodeId]:
        return self._id_of.keys()

    def neighbors(self, node_id: NodeId) -> Iterable[NodeId]:
        """Finger targets plus successor and predecessor.

        This is the set of nodes ``node_id`` can send to in one hop, i.e.
        the candidates CUP keeps interest-bit state for.
        """
        position = self._id_of[node_id]
        out: Set[NodeId] = set()
        if len(self._ring) == 1:
            return out
        for target in self._fingers(position):
            out.add(self._node_at[target])
        index = bisect.bisect_left(self._ring, position)
        predecessor = self._ring[index - 1]
        if predecessor != position:
            out.add(self._node_at[predecessor])
        return out

    def _compute_authority(self, key: str) -> NodeId:
        if not self._ring:
            raise RoutingError("empty ring")
        return self._node_at[self.successor_position(self.key_position(key))]

    def _compute_next_hop(self, node_id: NodeId, key: str) -> Optional[NodeId]:
        """Chord greedy routing: closest preceding finger, else successor."""
        position = self._id_of.get(node_id)
        if position is None:
            raise RoutingError(f"node {node_id!r} is not a member")
        key_pos = self.key_position(key)
        if self.successor_position(key_pos) == position:
            return None
        successor = self.successor_position(position + 1)
        if self._in_open_interval(key_pos, position, successor, self.size):
            return self._node_at[successor]
        # Closest preceding finger: the farthest finger that does not
        # overshoot the key, scanning from the largest stride down.
        size = self.size
        in_open = self._in_open_interval
        for finger in self._fingers(position):
            if in_open(finger, position, key_pos - 1, size):
                return self._node_at[finger]
        return self._node_at[successor]

    def next_hop_reference(self, node_id: NodeId, key: str) -> Optional[NodeId]:
        """The pre-fast-path algorithm: per-call finger bisects, no memo."""
        position = self._id_of.get(node_id)
        if position is None:
            raise RoutingError(f"node {node_id!r} is not a member")
        key_pos = hash_to_int(key, self.bits, salt="chord-key")
        if self.successor_position(key_pos) == position:
            return None
        successor = self.successor_position(position + 1)
        if self._in_open_interval(key_pos, position, successor, self.size):
            return self._node_at[successor]
        for i in reversed(range(self.bits)):
            finger = self.successor_position(position + (1 << i))
            if finger == position:
                continue
            if self._in_open_interval(finger, position, key_pos - 1, self.size):
                return self._node_at[finger]
        return self._node_at[successor]
