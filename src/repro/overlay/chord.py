"""A Chord ring overlay (Stoica et al., SIGCOMM 2001).

The paper positions CUP as substrate-agnostic (§2.2): any structured
overlay with deterministic bounded-hop routing can host it.  This Chord
implementation exists to demonstrate that — the CUP protocol layer runs
unchanged over either :class:`~repro.overlay.can.CanOverlay` or this
class — and to let ablation benchmarks compare CUP's behaviour across
routing geometries (Chord's O(log n) greedy-by-identifier paths versus
CAN's O(sqrt n) grid paths).

Routing state (successors and finger targets) is derived on demand from
the current membership via binary search over the sorted identifier ring,
rather than maintaining per-node finger tables with a stabilization
protocol.  The resulting hop sequences are exactly those of a converged
Chord ring; CUP's behaviour depends only on those hop sequences.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Optional, Set

from repro.overlay.base import NodeId, Overlay, RoutingError
from repro.overlay.hashing import hash_to_int


class ChordOverlay(Overlay):
    """Chord ring with power-of-two finger routing.

    Parameters
    ----------
    bits:
        Identifier width ``m``; the ring has ``2**m`` positions.

    Node identifiers are arbitrary hashable values; each is mapped to a
    ring position with the uniform hash (collisions raise, since two
    co-located nodes would be indistinguishable to routing).
    """

    def __init__(self, bits: int = 32):
        if not 3 <= bits <= 64:
            raise ValueError(f"bits must be in [3, 64], got {bits}")
        self.bits = bits
        self.size = 1 << bits
        self.epoch = 0
        self._id_of: Dict[NodeId, int] = {}
        self._node_at: Dict[int, NodeId] = {}
        self._ring: List[int] = []  # sorted ring positions
        self._authority_cache: Dict[str, NodeId] = {}
        self._key_cache: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, node_ids: Iterable[NodeId], bits: int = 32) -> "ChordOverlay":
        """Construct a converged ring containing ``node_ids``."""
        overlay = cls(bits=bits)
        for node_id in node_ids:
            overlay.join(node_id)
        return overlay

    def join(self, node_id: NodeId) -> None:
        """Add a node at the ring position its identifier hashes to."""
        if node_id in self._id_of:
            raise ValueError(f"node {node_id!r} is already a member")
        position = hash_to_int(str(node_id), self.bits, salt="chord-node")
        if position in self._node_at:
            raise ValueError(
                f"ring position collision: {node_id!r} vs "
                f"{self._node_at[position]!r} at {position}"
            )
        self._id_of[node_id] = position
        self._node_at[position] = node_id
        bisect.insort(self._ring, position)
        self._membership_changed()

    def leave(self, node_id: NodeId) -> None:
        """Remove a node; its arc is absorbed by its successor."""
        position = self._id_of.pop(node_id, None)
        if position is None:
            raise ValueError(f"node {node_id!r} is not a member")
        del self._node_at[position]
        index = bisect.bisect_left(self._ring, position)
        del self._ring[index]
        self._membership_changed()

    def _membership_changed(self) -> None:
        self.epoch += 1
        self._authority_cache.clear()

    # ------------------------------------------------------------------
    # Ring arithmetic
    # ------------------------------------------------------------------

    def ring_position(self, node_id: NodeId) -> int:
        """Ring position of a member node."""
        return self._id_of[node_id]

    def key_position(self, key: str) -> int:
        """Ring position ``key`` hashes to (memoized)."""
        position = self._key_cache.get(key)
        if position is None:
            position = hash_to_int(key, self.bits, salt="chord-key")
            self._key_cache[key] = position
        return position

    def successor_position(self, position: int) -> int:
        """The first member position clockwise from ``position`` (inclusive)."""
        if not self._ring:
            raise RoutingError("empty ring")
        index = bisect.bisect_left(self._ring, position % self.size)
        if index == len(self._ring):
            index = 0
        return self._ring[index]

    @staticmethod
    def _in_open_interval(x: int, lo: int, hi: int, size: int) -> bool:
        """Whether ``x`` lies in the clockwise-open interval ``(lo, hi]``."""
        x, lo, hi = x % size, lo % size, hi % size
        if lo < hi:
            return lo < x <= hi
        return x > lo or x <= hi

    # ------------------------------------------------------------------
    # Overlay interface
    # ------------------------------------------------------------------

    def node_ids(self) -> Iterable[NodeId]:
        return self._id_of.keys()

    def neighbors(self, node_id: NodeId) -> Iterable[NodeId]:
        """Finger targets plus successor and predecessor.

        This is the set of nodes ``node_id`` can send to in one hop, i.e.
        the candidates CUP keeps interest-bit state for.
        """
        position = self._id_of[node_id]
        out: Set[NodeId] = set()
        if len(self._ring) == 1:
            return out
        for i in range(self.bits):
            target = self.successor_position(position + (1 << i))
            if target != position:
                out.add(self._node_at[target])
        index = bisect.bisect_left(self._ring, position)
        predecessor = self._ring[index - 1]
        if predecessor != position:
            out.add(self._node_at[predecessor])
        return out

    def authority(self, key: str) -> NodeId:
        owner = self._authority_cache.get(key)
        if owner is None:
            if not self._ring:
                raise RoutingError("empty ring")
            owner = self._node_at[self.successor_position(self.key_position(key))]
            self._authority_cache[key] = owner
        return owner

    def next_hop(self, node_id: NodeId, key: str) -> Optional[NodeId]:
        """Chord greedy routing: closest preceding finger, else successor."""
        position = self._id_of.get(node_id)
        if position is None:
            raise RoutingError(f"node {node_id!r} is not a member")
        key_pos = self.key_position(key)
        if self.successor_position(key_pos) == position:
            return None
        successor = self.successor_position(position + 1)
        if self._in_open_interval(key_pos, position, successor, self.size):
            return self._node_at[successor]
        # Closest preceding finger: the farthest finger that does not
        # overshoot the key, scanning from the largest stride down.
        for i in reversed(range(self.bits)):
            finger = self.successor_position(position + (1 << i))
            if finger == position:
                continue
            if self._in_open_interval(finger, position, key_pos - 1, self.size):
                return self._node_at[finger]
        return self._node_at[successor]
