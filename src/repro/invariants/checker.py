"""Runtime invariant checking for a live CUP deployment.

The checker attaches to a fully wired
:class:`~repro.core.protocol.CupNetwork` and verifies, while the
simulation runs, the correctness properties the paper argues for:

**Per-key version monotonicity** (§2.3)
    At every node, the sequence numbers of index entries *applied* to
    the cache for one (key, replica) strictly increase.  The authority
    issues monotone sequences; FIFO links preserve them; the cache's
    own stale-discard guard is verified independently here rather than
    trusted.

**Interest-set consistency** (§2.6/§2.10)
    Interest bits at a node must describe its propagation-tree
    children: every neighbor with a bit set is a live member whose
    upstream parent (overlay ``next_hop``) for that key is this node.

**No update loss or duplication at quiescence** (§2.5)
    Once the network settles, every posted query has been answered
    exactly once (local hit or delivered response), and no node saw the
    same logical update twice.

**Cumulative cost balance** (§3.1)
    The checker keeps its own per-kind hop tally from an independent
    transport observer and requires it to match
    :class:`~repro.metrics.collector.MetricsCollector` exactly, along
    with the derived cost identities (miss + overhead = total, posted =
    hits + misses, ...).

Hazards and relaxation
----------------------

Some invariants only hold in benign conditions; adversarial scenarios
declare the hazards they introduce and the checker relaxes exactly the
affected checks:

========== ==========================================================
hazard      relaxed checks
========== ==========================================================
churn       interest-tree consistency, loss-freedom, duplicate
            detection (membership changes legitimately re-route
            queries and strand in-flight responses), and sequence
            monotonicity across authority changes (an ungraceful
            departure loses the directory's sequence counters, so the
            successor restarts streams at 1)
crash       same as churn (a crash is churn with a detection delay)
partition   loss-freedom and duplicate detection (messages are
            legitimately lost at the cut; retries can duplicate)
capacity    loss-freedom (responses can expire in queues) and
            monotonicity *across deletes* (the priority pump can
            legitimately reorder a delete past a queued refresh,
            reinstalling a dead entry until it expires)
loss        loss-freedom and duplicate detection (messages vanish in
            transit; NACK-triggered retransmissions legitimately
            re-deliver)
duplication duplicate detection only (the transport itself delivers
            some messages twice; the recovery layer's duplicate
            suppression is what keeps caches correct, and is verified
            by the sequence watermark audit instead)
reorder     duplicate detection (a retransmission can race its
            original past the jitter)
========== ==========================================================

Under an unreliable transport the loss-freedom check is replaced by the
opt-in :meth:`InvariantChecker.audit_convergence` quiescence audit:
every node still subscribed to a key (complete interest chain to the
authority) must hold the authority's final versions — or have recorded
a degraded read, the recovery layer's explicit "I gave up and pulled"
marker.

Everything else — structural cache consistency, local monotonicity,
cost balance — holds under every scenario and is always enforced.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Any, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.core.messages import UpdateType
from repro.sim.network import Message, NodeId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.entry import IndexEntry
    from repro.core.protocol import CupNetwork

#: Recognized scenario hazards (see module docstring for their effect).
HAZARDS: FrozenSet[str] = frozenset({
    "churn", "crash", "partition", "capacity",
    "loss", "duplication", "reorder",
})

#: Cap on remembered delivered-update fingerprints for duplicate
#: detection; beyond this the duplicate check stops (never wrongly
#: fires) so memory stays bounded on very long runs.
MAX_TRACKED_DELIVERIES = 500_000


@dataclasses.dataclass(frozen=True)
class Violation:
    """One observed invariant breach."""

    time: float
    invariant: str
    detail: str
    node: Any = None
    key: Optional[str] = None

    def __str__(self) -> str:
        where = ""
        if self.node is not None:
            where += f" node={self.node!r}"
        if self.key is not None:
            where += f" key={self.key!r}"
        return f"[t={self.time:.3f}] {self.invariant}{where}: {self.detail}"


class InvariantViolationError(AssertionError):
    """Raised on the first violation when ``raise_immediately`` is set."""

    def __init__(self, violation: Violation):
        super().__init__(str(violation))
        self.violation = violation


class InvariantChecker:
    """Observes one :class:`CupNetwork` and enforces protocol invariants.

    Do not construct directly in normal use —
    :meth:`CupNetwork.attach_invariants` wires the probes, the transport
    observer and the optional periodic audit in one step.

    Parameters
    ----------
    network:
        The deployment under check.
    hazards:
        Scenario-declared hazard set (subset of :data:`HAZARDS`);
        relaxes exactly the checks those hazards legitimately break.
    raise_immediately:
        When True (default), the first violation raises
        :class:`InvariantViolationError` at the moment it is observed —
        inside the offending event, so the stack points at the cause.
        When False, violations accumulate in :attr:`violations`.
    """

    def __init__(
        self,
        network: "CupNetwork",
        hazards: Iterable[str] = (),
        raise_immediately: bool = True,
    ):
        hazard_set = frozenset(hazards)
        unknown = hazard_set - HAZARDS
        if unknown:
            raise ValueError(
                f"unknown hazards: {sorted(unknown)}; choose from "
                f"{sorted(HAZARDS)}"
            )
        self.network = network
        self.hazards = hazard_set
        # Temporarily declared hazards (hazard -> expiry time, +inf for
        # indefinite): a fault injector opens a window around each
        # injected fault so exactly the affected checks relax for
        # exactly the fault's duration, instead of declaring the hazard
        # for the whole run.  Empty on the simulator's scenario path, so
        # the hot predicates below stay one truthiness test.
        self._hazard_windows: Dict[str, float] = {}
        self.raise_immediately = raise_immediately
        self.violations: List[Violation] = []
        #: Counters for reporting/tests.
        self.audits_run = 0
        self.entries_checked = 0
        self.updates_seen = 0
        self.membership_events = 0
        # Per-(node, key, replica) highest applied sequence number.
        self._watermarks: Dict[Tuple[Any, str, str], int] = {}
        # Fingerprints of delivered updates for duplicate detection.
        self._delivered: Set[tuple] = set()
        # Independent tallies, compared against MetricsCollector.  The
        # update tally is a flat list indexed by UpdateType (this
        # observer fires on every overlay hop; building a dict key per
        # hop would dominate checked runs).
        self._query_hops = 0
        self._clear_bit_hops = 0
        self._update_hop_tally = [0, 0, 0, 0]
        self._posted = 0
        self._immediate_hits = 0
        self._answers = 0

    # ------------------------------------------------------------------
    # Hazard windows (temporary declarations around injected faults)
    # ------------------------------------------------------------------

    def open_hazard_window(
        self, hazards: Iterable[str], duration: Optional[float] = None
    ) -> None:
        """Declare ``hazards`` temporarily, around an injected fault.

        With ``duration`` the window closes itself ``duration`` seconds
        from the network clock's *now*; without, it stays open until
        :meth:`close_hazard_window`.  Re-opening an already open window
        extends it (the later expiry wins) — overlapping fault
        injections must not shorten each other's grace.
        """
        hazard_set = frozenset(hazards)
        unknown = hazard_set - HAZARDS
        if unknown:
            raise ValueError(
                f"unknown hazards: {sorted(unknown)}; choose from "
                f"{sorted(HAZARDS)}"
            )
        if duration is not None and duration < 0:
            raise ValueError(f"duration must be >= 0, got {duration}")
        expiry = (
            float("inf") if duration is None
            else self.network.sim.now + duration
        )
        windows = self._hazard_windows
        for hazard in hazard_set:
            current = windows.get(hazard)
            if current is None or expiry > current:
                windows[hazard] = expiry

    def close_hazard_window(
        self, hazards: Optional[Iterable[str]] = None
    ) -> None:
        """Close the named windows (or every open one with ``None``)."""
        if hazards is None:
            self._hazard_windows.clear()
            return
        for hazard in hazards:
            self._hazard_windows.pop(hazard, None)

    def active_hazards(self) -> FrozenSet[str]:
        """The base hazard set plus every currently open window."""
        windows = self._hazard_windows
        if not windows:
            return self.hazards
        now = self.network.sim.now
        expired = [h for h, expiry in windows.items() if expiry < now]
        for hazard in expired:
            del windows[hazard]
        if not windows:
            return self.hazards
        return self.hazards | frozenset(windows)

    # ------------------------------------------------------------------
    # Hazard predicates
    # ------------------------------------------------------------------

    @property
    def _membership_unstable(self) -> bool:
        return bool(self.active_hazards() & {"churn", "crash"})

    @property
    def _lossy(self) -> bool:
        return bool(
            self.active_hazards()
            & {"churn", "crash", "partition", "capacity", "loss"}
        )

    @property
    def _dup_tolerant(self) -> bool:
        return self._lossy or bool(
            self.active_hazards() & {"duplication", "reorder"}
        )

    # ------------------------------------------------------------------
    # Violation plumbing
    # ------------------------------------------------------------------

    def _violate(
        self,
        invariant: str,
        detail: str,
        node: Any = None,
        key: Optional[str] = None,
    ) -> None:
        violation = Violation(
            time=self.network.sim.now, invariant=invariant, detail=detail,
            node=node, key=key,
        )
        self.violations.append(violation)
        if self.raise_immediately:
            raise InvariantViolationError(violation)

    @property
    def ok(self) -> bool:
        return not self.violations

    # ------------------------------------------------------------------
    # Transport observer (cost tally)
    # ------------------------------------------------------------------

    def on_send(self, src: NodeId, dst: NodeId, message: Message) -> None:
        """Independent hop tally; wired as a second transport observer."""
        kind = message.kind
        if kind == "update":
            self._update_hop_tally[message.update_type] += 1
        elif kind == "query":
            self._query_hops += 1
        elif kind == "clear_bit":
            self._clear_bit_hops += 1

    # ------------------------------------------------------------------
    # Node probes (called from CupNode when a checker is attached)
    # ------------------------------------------------------------------

    def query_posted(self, node_id: NodeId, key: str, answered: bool) -> None:
        self._posted += 1
        if answered:
            self._immediate_hits += 1

    def waiters_answered(self, node_id: NodeId, key: str, count: int) -> None:
        if count < 0:
            self._violate(
                "structural", f"negative waiter count {count}",
                node=node_id, key=key,
            )
        self._answers += count

    def update_delivered(
        self, node_id: NodeId, update: Any, sender: NodeId
    ) -> None:
        """Duplicate detection: one logical update reaches a node once.

        The fingerprint identifies the logical update (key, type,
        issuing instant and carried versions) — forks of one update sent
        to *different* nodes hash differently because the receiving node
        is part of the fingerprint.
        """
        self.updates_seen += 1
        if self._dup_tolerant or len(self._delivered) >= MAX_TRACKED_DELIVERIES:
            # Retries after loss — and a faulty transport's own
            # duplications — legitimately re-deliver; skip.
            return
        if getattr(update, "route", None) is not None:
            # Standard-caching responses ride per-query open connections:
            # two identical queries legitimately produce two identical
            # responses, so per-message duplication is not a defect there.
            return
        fingerprint = (
            node_id, sender, update.key, update.update_type,
            update.issued_at,
            tuple(sorted((e.replica_id, e.sequence) for e in update.entries)),
        )
        if fingerprint in self._delivered:
            self._violate(
                "no-duplication",
                f"update {update.update_type.value} issued at "
                f"t={update.issued_at:.3f} from {sender!r} delivered twice",
                node=node_id, key=update.key,
            )
        self._delivered.add(fingerprint)

    def entry_applied(self, node_id: NodeId, key: str, entry: "IndexEntry") -> None:
        """Version monotonicity: applied sequences strictly increase.

        Relaxed while membership is unstable: an *ungraceful* authority
        departure loses the directory (and its sequence counters, §2.9),
        so the successor authority legitimately restarts a replica's
        stream at sequence 1.  The watermark then tracks the maximum so
        the structural ``cached <= watermark`` audit stays sound.
        """
        mark_key = (node_id, key, entry.replica_id)
        last = self._watermarks.get(mark_key)
        if last is not None and entry.sequence <= last:
            if not self._membership_unstable:
                self._violate(
                    "version-monotonicity",
                    f"applied sequence {entry.sequence} after {last} for "
                    f"replica {entry.replica_id!r}",
                    node=node_id, key=key,
                )
            self._watermarks[mark_key] = max(last, entry.sequence)
            return
        self._watermarks[mark_key] = entry.sequence

    def entry_removed(self, node_id: NodeId, key: str, replica_id: str) -> None:
        if "capacity" in self.active_hazards():
            # The priority pump can send a delete past a queued refresh;
            # the stale reinstall that follows is documented protocol
            # behaviour (bounded by the entry lifetime), so the
            # watermark resets at the delete instead of firing.
            self._watermarks.pop((node_id, key, replica_id), None)

    # ------------------------------------------------------------------
    # Membership bookkeeping (called from CupNetwork churn operations)
    # ------------------------------------------------------------------

    def on_membership_change(self, event: str, node_id: NodeId) -> None:
        self.membership_events += 1
        if not self._membership_unstable:
            # Joins re-route keys just like departures do, so *any*
            # undeclared membership change is flagged here — better a
            # clear hazard-declaration violation now than a misleading
            # interest-consistency one at the next audit.
            self._violate(
                "hazard-declaration",
                f"membership event {event!r} in a run whose scenario "
                "declared no churn/crash hazard",
                node=node_id,
            )

    # ------------------------------------------------------------------
    # Structural audits (periodic and at quiescence)
    # ------------------------------------------------------------------

    def audit_network(self) -> None:
        """Walk every node's cache and channels; structural invariants.

        Safe to call at any simulation instant — these properties hold
        in flight, not only at quiescence.
        """
        network = self.network
        self.audits_run += 1
        check_tree = not self._membership_unstable
        live = set(network.nodes)
        for node_id, node in list(network.nodes.items()):
            for problem in node.cache.audit_consistency():
                self._violate("structural", problem, node=node_id)
            queued_counter, queued_actual = node.channels.pending_counts()
            if queued_counter != queued_actual:
                self._violate(
                    "structural",
                    f"channel pending counter {queued_counter} != actual "
                    f"queued {queued_actual}",
                    node=node_id,
                )
            for state in node.cache:
                self.entries_checked += len(state.entries)
                if (
                    node.coalesce
                    and state.local_waiters
                    and not state.pending_first_update
                ):
                    # Coalescing couples the two: a waiter exists exactly
                    # while the coalesced upstream query is outstanding.
                    self._violate(
                        "structural",
                        f"{state.local_waiters} local waiter(s) with no "
                        "pending first update to answer them",
                        node=node_id, key=state.key,
                    )
                for replica_id, entry in state.entries.items():
                    mark = self._watermarks.get(
                        (node_id, state.key, replica_id)
                    )
                    if mark is not None and entry.sequence > mark:
                        self._violate(
                            "version-monotonicity",
                            f"cached sequence {entry.sequence} exceeds the "
                            f"applied watermark {mark} (entry bypassed the "
                            "apply path)",
                            node=node_id, key=state.key,
                        )
                if node_id in state.interest:
                    self._violate(
                        "interest-consistency",
                        "node holds an interest bit for itself",
                        node=node_id, key=state.key,
                    )
                if check_tree:
                    self._audit_interest_tree(node_id, state, live)

    def _audit_interest_tree(
        self, node_id: NodeId, state, live: Set[NodeId]
    ) -> None:
        """§2.10: interest bits name live propagation-tree children."""
        overlay = self.network.overlay
        for child in state.interest:
            if child not in live:
                self._violate(
                    "interest-consistency",
                    f"interest bit set for departed node {child!r}",
                    node=node_id, key=state.key,
                )
                continue
            parent = overlay.next_hop(child, state.key)
            if parent != node_id:
                self._violate(
                    "interest-consistency",
                    f"interest bit set for {child!r}, whose upstream "
                    f"parent is {parent!r}",
                    node=node_id, key=state.key,
                )

    def check_quiescent(self) -> None:
        """Full end-of-run verification (structure, balance, loss)."""
        self.audit_network()
        self._check_cost_balance()
        if not self._lossy:
            self._check_loss_freedom()

    # -- convergence under an unreliable transport ----------------------

    def audit_convergence(self, slack: float = 15.0) -> None:
        """Quiescence audit: subscribed caches converged or degraded.

        The unreliable-transport analogue of loss-freedom: for every
        node still *subscribed* to a key — a complete interest chain to
        the authority, each hop's parent holding its child's bit — every
        settled authority version (issued more than ``slack`` seconds
        ago, so retransmissions and backoff have had time to run) must
        be cached at the node at that version or newer.  A node that
        gave up on a broken branch is excused iff its recovery layer
        recorded the degradation (``degraded_keys``) — silent staleness
        is exactly the failure mode this audit exists to catch.

        Nodes whose subscription chain is broken are excluded: an
        unsubscribed node legitimately goes stale (standard cache-
        expiry semantics serve it), and the chain itself is audited by
        the interest-tree checks.
        """
        if slack < 0:
            raise ValueError(f"slack must be >= 0, got {slack}")
        network = self.network
        now = network.sim.now
        overlay = network.overlay
        nodes = network.nodes
        cutoff = now - slack
        for node_id, node in nodes.items():
            recovery = node.recovery
            degraded = (
                recovery.degraded_keys if recovery is not None
                else frozenset()
            )
            for state in list(node.cache):
                key = state.key
                authority_id = overlay.authority(key)
                if authority_id == node_id:
                    continue
                authority = nodes.get(authority_id)
                if authority is None:
                    continue
                settled = [
                    entry
                    for entry in authority.authority_index.fresh_entries(
                        key, now
                    )
                    if entry.timestamp <= cutoff
                ]
                if not settled:
                    continue
                if not self._subscribed(node_id, key, authority_id):
                    continue
                if key in degraded:
                    continue
                cached = state.entries
                for entry in settled:
                    held = cached.get(entry.replica_id)
                    if held is None or held.sequence < entry.sequence:
                        self._violate(
                            "convergence",
                            "subscribed node is stale for replica "
                            f"{entry.replica_id!r}: holds sequence "
                            f"{held.sequence if held is not None else None}, "
                            f"authority settled at {entry.sequence}, and no "
                            "degraded read was recorded",
                            node=node_id, key=key,
                        )

    def _subscribed(
        self, node_id: NodeId, key: str, authority_id: NodeId
    ) -> bool:
        """Whether ``node_id`` has a complete interest chain for ``key``."""
        overlay = self.network.overlay
        nodes = self.network.nodes
        current = node_id
        seen = {current}
        while current != authority_id:
            parent = overlay.next_hop(current, key)
            if parent is None or parent in seen:
                return False
            parent_node = nodes.get(parent)
            if parent_node is None:
                return False
            parent_state = parent_node.cache.get(key)
            if parent_state is None or current not in parent_state.interest:
                return False
            seen.add(parent)
            current = parent
        return True

    # -- cost balance ---------------------------------------------------

    def _check_cost_balance(self) -> None:
        metrics = self.network.metrics
        for name, ours, theirs in (
            ("query_hops", self._query_hops, metrics.query_hops),
            ("clear_bit_hops", self._clear_bit_hops, metrics.clear_bit_hops),
            *(
                (
                    f"update_hops[{t.value}]",
                    self._update_hop_tally[t],
                    metrics.update_hops[t],
                )
                for t in UpdateType
            ),
            ("queries_posted", self._posted, metrics.queries_posted),
            ("local_hits", self._immediate_hits, metrics.local_hits),
            ("answers_delivered", self._answers, metrics.answers_delivered),
        ):
            if ours != theirs:
                self._violate(
                    "cost-balance",
                    f"independent {name} tally {ours} != collector {theirs}",
                )
        for name, lhs, rhs in metrics.audit_identities():
            if lhs != rhs:
                self._violate(
                    "cost-balance", f"identity {name} broken: {lhs} != {rhs}"
                )
        if metrics.answers_delivered > metrics.misses:
            # Each miss opens exactly one local waiter; answering more
            # waiters than misses means an answer was double-delivered.
            self._violate(
                "cost-balance",
                f"answers_delivered {metrics.answers_delivered} exceeds "
                f"misses {metrics.misses}",
            )
        transport = self.network.transport
        accounted = transport.delivered + transport.dropped + transport.blocked
        # Fault injection shifts the conservation identity: a duplicated
        # send is accounted twice without a second `sent`, and a lost
        # send is charged but never accounted.  A live transport sees
        # only its own process's half of the cluster traffic, so frames
        # that arrived off the wire (charged as `sent` by the remote
        # sender) are offered through its `received` counter — absent on
        # simulator transports, where every send is already local.
        offered = (
            transport.sent + transport.sent_direct
            + transport.duplicated - transport.lost
            + getattr(transport, "received", 0)
        )
        if accounted > offered:
            self._violate(
                "cost-balance",
                f"transport accounted for {accounted} messages but only "
                f"{offered} were offered (sent + direct + duplicated "
                "- lost + received)",
            )

    # -- loss freedom ---------------------------------------------------

    def _check_loss_freedom(self) -> None:
        metrics = self.network.metrics
        if metrics.local_hits + metrics.answers_delivered != metrics.queries_posted:
            self._violate(
                "no-loss",
                f"{metrics.queries_posted} queries posted but "
                f"{metrics.local_hits} hit + {metrics.answers_delivered} "
                "answered",
            )
        for node_id, node in self.network.nodes.items():
            for state in node.cache:
                if state.local_waiters:
                    self._violate(
                        "no-loss",
                        f"{state.local_waiters} local client(s) still "
                        "awaiting an answer at quiescence",
                        node=node_id, key=state.key,
                    )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def report(self) -> str:
        windows = sorted(self._hazard_windows)
        lines = [
            f"invariants: {'OK' if self.ok else 'VIOLATED'} "
            f"(hazards={sorted(self.hazards) or 'none'}, "
            + (f"windows={windows}, " if windows else "")
            + f"audits={self.audits_run}, updates={self.updates_seen}, "
            f"entries={self.entries_checked})"
        ]
        lines.extend(f"  {v}" for v in self.violations)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"InvariantChecker(hazards={sorted(self.hazards)}, "
            f"violations={len(self.violations)})"
        )
