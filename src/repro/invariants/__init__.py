"""Runtime protocol invariants for CUP simulations.

The checker observes a wired :class:`~repro.core.protocol.CupNetwork`
while it runs and asserts paper-level correctness properties *during*
execution — not just on the final metrics.  Attach one with
``network.attach_invariants()`` (or let the scenario runner do it).

See :mod:`repro.invariants.checker` for the invariant catalogue and the
hazard-based relaxation rules.
"""

from repro.invariants.checker import (
    HAZARDS,
    InvariantChecker,
    InvariantViolationError,
    Violation,
)

__all__ = [
    "HAZARDS",
    "InvariantChecker",
    "InvariantViolationError",
    "Violation",
]
