"""Durable state: simulation checkpoint/resume and live-node rejoin."""

from repro.persistence.checkpoint import (  # noqa: F401
    DEFAULT_EVERY_EVENTS,
    CheckpointError,
    CheckpointFormatError,
    FingerprintMismatch,
    atomic_write,
    checkpoint_info,
    load_checkpoint,
    restore_network,
    save_checkpoint,
    snapshot_network,
    verify_restored,
)
from repro.persistence.nodestore import (  # noqa: F401
    DEFAULT_SNAPSHOT_INTERVAL,
    STATE_FILENAME,
    NodeState,
    NodeStore,
    capture_state,
    sanitize_restored,
    state_from_blob,
    state_to_blob,
)
