"""Durable state for long simulations: checkpoint/resume."""

from repro.persistence.checkpoint import (  # noqa: F401
    DEFAULT_EVERY_EVENTS,
    CheckpointError,
    CheckpointFormatError,
    FingerprintMismatch,
    checkpoint_info,
    load_checkpoint,
    restore_network,
    save_checkpoint,
    snapshot_network,
    verify_restored,
)
