"""Durable state for a *live* CUP node: warm rejoin from disk.

A :class:`~repro.net.daemon.LiveNode` dies stateless by default — a
restart rejoins cold, its cached index entries, interest sets and
recovery watermarks gone.  This module gives the daemon the same
crash-durability the simulator got from the PR-8 checkpoint layer, with
the same discipline:

* **One file, always complete.**  Snapshots go through
  :func:`~repro.persistence.checkpoint.atomic_write` (temp file +
  ``os.replace``), so ``<state-dir>/node.state`` always holds the last
  *complete* snapshot; a ``kill -9`` mid-write cannot corrupt it.
* **Format + fingerprint gates.**  The blob is a one-line JSON header
  (format version, :func:`repro.experiments.runcache.code_fingerprint`,
  node identity) followed by a pickle payload; loads fail loudly on
  version skew, fingerprint skew, or a state file that belongs to a
  different node identity or mode — the existing
  :class:`~repro.persistence.checkpoint.CheckpointFormatError` /
  :class:`~repro.persistence.checkpoint.FingerprintMismatch` hierarchy.

What a snapshot holds is deliberately *not* the whole daemon (an asyncio
object graph does not pickle, and most of it is legitimately volatile):

========================  =============================================
persisted                 why a restart must not forget it
========================  =============================================
cache (entries+interest)  serve local hits immediately after rejoin;
                          know which keys to re-graft upstream
authority index           the owned index slice and its per-replica
                          sequence counters (restarting them at 1 would
                          make fresh updates look stale downstream)
member list               who to dial and re-``hello`` at boot
recovery watermarks       send/receive sequence state (see
                          :meth:`~repro.core.recovery.RecoveryManager.
                          export_state`)
========================  =============================================

Volatile state — open client connections, pending-first-update flags,
armed timers, retransmission buffers — is scrubbed by
:func:`sanitize_restored` at load: those all died with the process, and
pretending otherwise would leave a restored node waiting on answers
nobody owes it.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pickle
from typing import Optional, Tuple

from repro.experiments import runcache
from repro.persistence.checkpoint import (
    CheckpointFormatError,
    FingerprintMismatch,
    _split,
    atomic_write,
)

MAGIC = b"CUPNODE\n"
FORMAT_VERSION = 1

#: The single state file inside a node's ``--state-dir``.
STATE_FILENAME = "node.state"

#: Default write-behind cadence (seconds) when a state dir is configured
#: without one: frequent enough that a kill loses at most a few seconds
#: of update traffic, cheap enough to forget (one pickle of one node's
#: cache, not a network).
DEFAULT_SNAPSHOT_INTERVAL = 5.0


@dataclasses.dataclass
class NodeState:
    """The plain-data slice of a live node that survives a restart."""

    node_id: str
    mode: str
    members: Tuple[str, ...]
    cache: object  # repro.core.cache.NodeCache
    authority: object  # repro.replicas.authority.AuthorityIndex
    recovery: Optional[dict]  # RecoveryManager.export_state() or None
    saved_at: float


# ----------------------------------------------------------------------
# Capture / restore (object <-> plain state)
# ----------------------------------------------------------------------


def capture_state(daemon) -> NodeState:
    """Extract the durable slice of a running daemon.

    Duck-typed over the daemon surface (``node_id``, ``members``,
    ``config.mode``, ``clock.now`` and the hosted ``node``), so tests
    can capture from a stub without standing up sockets.  Never mutates
    the daemon.
    """
    node = daemon.node
    recovery = node.recovery
    return NodeState(
        node_id=daemon.node_id,
        mode=daemon.config.mode,
        members=tuple(sorted(daemon.members)),
        cache=node.cache,
        authority=node.authority_index,
        recovery=None if recovery is None else recovery.export_state(),
        saved_at=daemon.clock.now,
    )


def sanitize_restored(state: NodeState, now: float) -> int:
    """Scrub volatile bits from a loaded snapshot; return keys kept.

    Pending-first-update flags, local waiters and coalesced-response
    sets all referred to connections and timers that died with the old
    process; overlay memos (parent/distance/authority epochs) belong to
    an overlay that will be rebuilt from the rejoined membership.
    Expired entries are purged, and key states left with nothing worth
    keeping are dropped outright.
    """
    cache = state.cache
    for key in list(cache.states):
        key_state = cache.states[key]
        key_state.pending_first_update = False
        key_state.pending_since = 0.0
        key_state.local_waiters = 0
        key_state.waiting.clear()
        key_state.justification_deadlines.clear()
        key_state.parent_epoch = -1
        key_state.distance_epoch = -1
        key_state.authority_epoch = -1
        key_state._interest_sorted = None
        key_state.purge_expired(now)
        if key_state.is_discardable(now):
            del cache.states[key]
    return len(cache.states)


# ----------------------------------------------------------------------
# Blob format (header + pickle, as the PR-8 checkpoint layer)
# ----------------------------------------------------------------------


def state_to_blob(state: NodeState) -> bytes:
    """Serialize one :class:`NodeState` with the CUPNODE header."""
    payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    header = {
        "format": FORMAT_VERSION,
        "fingerprint": runcache.code_fingerprint(),
        "node_id": state.node_id,
        "mode": state.mode,
        "saved_at": state.saved_at,
        "members": len(state.members),
        "keys": len(state.cache.states),
    }
    head = json.dumps(header, sort_keys=True).encode("utf-8")
    return MAGIC + head + b"\n" + payload


def state_from_blob(
    blob: bytes, verify_fingerprint: bool = True, path=None
) -> NodeState:
    """Inverse of :func:`state_to_blob`, with the load gates applied."""
    header, payload = _split(blob, path=path, magic=MAGIC,
                             kind="node state file")
    where = f" in {os.fspath(path)}" if path is not None else ""
    version = header.get("format")
    if version != FORMAT_VERSION:
        raise CheckpointFormatError(
            f"node state format {version!r}{where} is not supported "
            f"(this code reads format {FORMAT_VERSION})"
        )
    if verify_fingerprint:
        current = runcache.code_fingerprint()
        stamped = header.get("fingerprint")
        if stamped != current:
            raise FingerprintMismatch(
                "node state was written by different code "
                f"(fingerprint {stamped} != current {current}); a warm "
                "rejoin would splice two code versions into one node"
            )
    try:
        state = pickle.loads(payload)
    except (pickle.UnpicklingError, EOFError, ValueError,
            AttributeError, ImportError, IndexError) as exc:
        raise CheckpointFormatError(
            f"corrupt node state payload{where}: "
            f"{type(exc).__name__}: {exc}"
        ) from exc
    if not isinstance(state, NodeState):
        raise CheckpointFormatError(
            f"node state payload{where} is a "
            f"{type(state).__name__}, not a NodeState"
        )
    return state


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------


class NodeStore:
    """Write-behind store for one daemon's durable state.

    One directory, one ``node.state`` file, atomic replacement on every
    save.  The daemon saves on a cadence and on graceful stop; at boot
    it loads (if a file exists) and warm-rejoins.
    """

    def __init__(self, state_dir, verify_fingerprint: bool = True):
        self.state_dir = os.fspath(state_dir)
        self.path = os.path.join(self.state_dir, STATE_FILENAME)
        self.verify_fingerprint = verify_fingerprint
        self.saves = 0

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def save(self, daemon) -> str:
        """Capture and atomically persist ``daemon``'s durable state."""
        blob = state_to_blob(capture_state(daemon))
        atomic_write(self.path, blob, prefix=".nodestate-")
        self.saves += 1
        return self.path

    def load(
        self,
        expect_node_id: Optional[str] = None,
        expect_mode: Optional[str] = None,
    ) -> Optional[NodeState]:
        """The stored state, or ``None`` when no snapshot exists yet.

        ``expect_node_id`` / ``expect_mode`` guard against pointing a
        daemon at some *other* node's state dir: ids double as dialable
        addresses, so adopting another identity's cache and watermarks
        would be silent corruption — it fails loudly instead.
        """
        if not self.exists():
            return None
        with open(self.path, "rb") as handle:
            blob = handle.read()
        state = state_from_blob(
            blob, verify_fingerprint=self.verify_fingerprint,
            path=self.path,
        )
        if expect_node_id is not None and state.node_id != expect_node_id:
            raise CheckpointFormatError(
                f"state file {self.path} belongs to node "
                f"{state.node_id!r}, not {expect_node_id!r}; refusing to "
                "adopt another identity's cache"
            )
        if expect_mode is not None and state.mode != expect_mode:
            raise CheckpointFormatError(
                f"state file {self.path} was written in mode "
                f"{state.mode!r}, not {expect_mode!r}"
            )
        return state

    def info(self) -> Optional[dict]:
        """The stored header without unpickling the payload (or None)."""
        if not self.exists():
            return None
        with open(self.path, "rb") as handle:
            blob = handle.read(1 << 16)
        header, _ = _split(blob, path=self.path, magic=MAGIC,
                           kind="node state file")
        return header
