"""Versioned, fingerprinted snapshots of a running simulation.

A checkpoint captures the *complete* deterministic state of a
:class:`~repro.core.protocol.CupNetwork` mid-run: the engine's event
heap, clock and tie-break counter; every buffered random stream with its
block position; the transport's links, drop/fault rules and counters;
each node's cache, authority index, channels and recovery state machine
(retransmission buffers, watermarks, armed backoff timers); keep-alive
deadlines; the compiled scenario runtime with its pending phase
transitions; and all metrics counters.  Restoring and finishing the run
produces a :class:`~repro.metrics.collector.MetricsSummary` byte-for-byte
identical to an uninterrupted run — the referee tests in
``tests/test_checkpoint.py`` hold that line for every built-in scenario,
chaos included.

The serialized form is a one-line JSON header (format version, code
fingerprint, clock) followed by a pickle of the whole network object
graph.  Two protections gate a load:

* **Format version** — the header's ``format`` must match this module's,
  so stale files fail loudly instead of unpickling garbage.
* **Code fingerprint** — the same
  :func:`repro.experiments.runcache.code_fingerprint` that keys the run
  cache.  A checkpoint is only as deterministic as the code that wrote
  it; resuming under changed simulation code would silently produce a
  hybrid run, so mismatches raise :class:`FingerprintMismatch` (override
  with ``verify_fingerprint=False`` for forensics).

Checkpoint files are written atomically (temp file + ``os.replace``), so
the configured path always holds a complete, restorable snapshot — a
``kill -9`` mid-write cannot corrupt the previous checkpoint.
"""

from __future__ import annotations

import contextlib
import json
import os
import pickle
import tempfile
from typing import TYPE_CHECKING, List, Optional

from repro.experiments import runcache

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.protocol import CupNetwork

MAGIC = b"CUPCKPT\n"
FORMAT_VERSION = 1

#: Auto-checkpoint cadence when a path is configured without one:
#: roughly every couple of seconds of wall time on the macro cell,
#: cheap enough to be forgotten and frequent enough that a kill loses
#: little.
DEFAULT_EVERY_EVENTS = 100_000


class CheckpointError(RuntimeError):
    """Base class for checkpoint save/load failures."""


class CheckpointFormatError(CheckpointError):
    """The blob is not a checkpoint, or its format version is unknown."""


class FingerprintMismatch(CheckpointError):
    """The checkpoint was written by different simulation code."""


# ----------------------------------------------------------------------
# Snapshot / restore (bytes)
# ----------------------------------------------------------------------


def snapshot_network(network: "CupNetwork") -> bytes:
    """Serialize the complete deterministic state of ``network``.

    Safe at any instant outside an event handler — including between
    the chunks of an auto-checkpointed run.  Snapshotting never mutates
    the simulation: no events are consumed, no streams advance.
    """
    sim = network.sim
    # A snapshot taken while the engine loop is (or appears) live must
    # not freeze ``_running=True`` into the restored object, where it
    # would make the first resumed run_until die as "not reentrant".
    was_running = sim._running
    sim._running = False
    try:
        payload = pickle.dumps(network, protocol=pickle.HIGHEST_PROTOCOL)
    finally:
        sim._running = was_running
    header = {
        "format": FORMAT_VERSION,
        "fingerprint": runcache.code_fingerprint(),
        "sim_now": sim.now,
        "sim_end": network.config.sim_end,
        "events_processed": sim.events_processed,
        "pending_events": sim.pending,
        "num_nodes": len(network.nodes),
        "mode": network.config.mode,
        "seed": network.config.seed,
    }
    head = json.dumps(header, sort_keys=True).encode("utf-8")
    return MAGIC + head + b"\n" + payload


def _describe(path) -> str:
    """``" in <path>"`` when a file is known, ``""`` for raw blobs."""
    return f" in {os.fspath(path)}" if path is not None else ""


def _split(blob: bytes, path=None, magic: bytes = MAGIC,
           kind: str = "checkpoint"):
    where = _describe(path)
    if not blob.startswith(magic):
        raise CheckpointFormatError(
            f"not a CUP {kind}{where} (bad magic bytes)"
        )
    end = blob.find(b"\n", len(magic))
    if end < 0:
        # Either the file was truncated inside the header line, or the
        # header exceeds the reader's buffer (checkpoint_info peeks a
        # bounded prefix) — both used to surface as a bare ValueError.
        raise CheckpointFormatError(
            f"corrupt {kind}{where}: no header terminator within "
            f"the first {len(blob)} bytes (truncated file or oversized "
            "header)"
        )
    try:
        header = json.loads(blob[len(magic):end].decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise CheckpointFormatError(
            f"corrupt {kind} header{where}: {exc}"
        ) from None
    if not isinstance(header, dict):
        raise CheckpointFormatError(
            f"corrupt {kind} header{where}: expected a JSON object, "
            f"got {type(header).__name__}"
        )
    return header, blob[end + 1:]


def restore_network(
    blob: bytes, verify_fingerprint: bool = True, path=None
) -> "CupNetwork":
    """Reconstruct the network a :func:`snapshot_network` blob captured.

    The restored network is fully independent of the original (tearing
    the original down — or the process that held it dying — loses
    nothing) and continues deterministically: ``run()`` picks up at the
    snapshot's clock without re-beginning the workload.
    """
    header, payload = _split(blob, path=path)
    where = _describe(path)
    version = header.get("format")
    if version != FORMAT_VERSION:
        raise CheckpointFormatError(
            f"checkpoint format {version!r}{where} is not supported "
            f"(this code reads format {FORMAT_VERSION})"
        )
    if verify_fingerprint:
        current = runcache.code_fingerprint()
        stamped = header.get("fingerprint")
        if stamped != current:
            raise FingerprintMismatch(
                "checkpoint was written by different simulation code "
                f"(fingerprint {stamped} != current {current}); resuming "
                "would splice two code versions into one run"
            )
    try:
        network = pickle.loads(payload)
    except (pickle.UnpicklingError, EOFError, ValueError,
            AttributeError, ImportError, IndexError) as exc:
        # A truncated or bit-rotted payload surfaces as any of these
        # depending on where the stream breaks; all of them mean the
        # same thing to a caller: this file is not restorable.
        raise CheckpointFormatError(
            f"corrupt checkpoint payload{where}: "
            f"{type(exc).__name__}: {exc}"
        ) from exc
    # Belt and braces: never trust a serialized loop flag.
    network.sim._running = False
    return network


# ----------------------------------------------------------------------
# Files
# ----------------------------------------------------------------------


def atomic_write(path, blob: bytes, prefix: str = ".checkpoint-") -> str:
    """Write ``blob`` to ``path`` atomically (temp file + ``os.replace``).

    ``path`` transitions atomically from its previous complete contents
    to the new ones; an interrupt mid-write leaves the previous file
    intact.  Shared by the simulation checkpointer and the live-node
    state store — one write discipline, one set of crash semantics.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=prefix)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob)
        os.replace(tmp, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise
    return path


def save_checkpoint(network: "CupNetwork", path) -> str:
    """Write a checkpoint of ``network`` to ``path`` atomically."""
    return atomic_write(path, snapshot_network(network))


def load_checkpoint(path, verify_fingerprint: bool = True) -> "CupNetwork":
    """Restore the network saved at ``path`` (see :func:`restore_network`)."""
    with open(path, "rb") as handle:
        blob = handle.read()
    return restore_network(
        blob, verify_fingerprint=verify_fingerprint, path=path
    )


def checkpoint_info(path) -> dict:
    """The header of the checkpoint at ``path``, without unpickling it.

    Cheap introspection for CLIs and operators: format, fingerprint,
    clock position, node count — enough to decide whether a resume is
    possible before committing to the full load.
    """
    with open(path, "rb") as handle:
        blob = handle.read(1 << 16)
    header, _ = _split(blob, path=path)
    return header


# ----------------------------------------------------------------------
# Post-restore audit
# ----------------------------------------------------------------------


def verify_restored(
    network: "CupNetwork", convergence_slack: Optional[float] = None
) -> List[str]:
    """Audit a freshly restored network; return (and raise on) problems.

    Every node's cache must pass its structural
    ``audit_consistency()``; when an invariant checker rode along in the
    snapshot, its full :meth:`audit_network` sweep runs too, and — when
    ``convergence_slack`` is given — its convergence audit.  Raises
    :class:`CheckpointError` listing every problem found, so a corrupt
    or version-skewed restore dies before it can burn compute on a
    doomed run.
    """
    problems: List[str] = []
    for node_id in network.nodes:
        for problem in network.nodes[node_id].cache.audit_consistency():
            problems.append(f"node {node_id!r}: {problem}")
    checker = network.invariants
    if checker is not None:
        before = len(checker.violations)
        checker.audit_network()
        if convergence_slack is not None:
            checker.audit_convergence(slack=convergence_slack)
        problems.extend(
            str(violation) for violation in checker.violations[before:]
        )
    if problems:
        raise CheckpointError(
            "restored network failed its consistency audit:\n  "
            + "\n  ".join(problems)
        )
    return problems
