"""``python -m repro`` entry point.

The ``__name__`` guard matters under ``--workers`` on spawn-based
multiprocessing platforms, where worker bootstrap imports the main
module: the CLI must only run in the parent process.
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
