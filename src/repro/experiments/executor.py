"""Parallel execution of independent simulation cells.

The paper's figures and tables are sweeps of *independent* cells — one
simulation per (push level, capacity, network size, policy, …) point —
so the sweep is embarrassingly parallel.  Harnesses declare their cells
(:class:`Cell`: a label, a :class:`CupConfig`, and optionally a
declarative §3.7 fault schedule) and submit them in one batch to
:func:`execute`, which:

1. deduplicates cells that resolve to the same run key (shared
   standard-caching twins are computed once, not once per worker);
2. serves whatever it can from the in-process memo and the persistent
   disk cache (:mod:`repro.experiments.runcache`);
3. fans the remaining cells out across a *supervised* worker pool
   (``workers=1`` falls back to a plain serial loop in-process);
4. flushes every fresh result into both cache layers **as it
   completes**, so an aborted sweep keeps its finished cells and a
   rerun (``repro sweep --resume``) re-runs only unfinished work;
5. returns ``{label: MetricsSummary}`` with deterministic content —
   results are keyed, so worker scheduling order can never leak into
   tables.

Supervision (:class:`Supervision`) is what lets a sweep outlive a
hostile machine: each in-flight cell is watched for worker death
(SIGKILL, OOM — the process vanishes and is respawned) and for
wall-clock hangs (``cell_timeout``); victims are retried with bounded
exponential backoff, and only when retries exhaust is the cell marked
failed — the rest of the batch still completes, and the failures
surface together as a :class:`SweepError`.  A test-only fault injector
(:class:`WorkerFault`) drives crash/hang drills through the exact
production path, the way ``LinkFaults`` drives the protocol tests.

Worker-count resolution: explicit ``workers=`` argument >
:func:`configure` (the CLI's ``--workers``) > ``$REPRO_WORKERS`` > 1.
"""

from __future__ import annotations

import atexit
import contextlib
import dataclasses
import heapq
import itertools
import multiprocessing
import os
import signal
import time
from collections import deque
from typing import (
    Dict,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro.core.protocol import CupConfig, CupNetwork
from repro.experiments import runcache, topology
from repro.experiments.runner import _cache_key, memo_get, memo_put
from repro.metrics.collector import MetricsSummary
from repro.scenarios.dsl import Scenario
from repro.workload.faults import (
    CapacityFaultSchedule,
    once_down_always_down,
    up_and_down,
)

WORKERS_ENV = "REPRO_WORKERS"

FAULT_CONFIGURATIONS = ("up-and-down", "once-down-always-down")


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """Declarative §3.7 capacity-fault schedule attached to a cell.

    Mirrors the arguments of the capacity harness: ``fraction`` of nodes
    drop to ``reduced`` outgoing capacity after ``warmup`` seconds of
    query traffic — repeatedly (*up-and-down*, alternating ``down_for``
    and ``stable_for``) or permanently (*once-down-always-down*).
    """

    configuration: str
    reduced: float
    fraction: float = 0.2
    warmup: float = 300.0
    down_for: float = 600.0
    stable_for: float = 300.0

    def __post_init__(self) -> None:
        if self.configuration not in FAULT_CONFIGURATIONS:
            raise ValueError(
                f"unknown configuration: {self.configuration!r}; choose "
                f"from {FAULT_CONFIGURATIONS}"
            )

    def key(self) -> tuple:
        return (
            self.configuration, self.reduced, self.fraction,
            self.warmup, self.down_for, self.stable_for,
        )


@dataclasses.dataclass(frozen=True)
class Cell:
    """One independent simulation in a sweep.

    A cell is either a plain config run, a config plus a declarative
    §3.7 fault schedule, or a config plus a :class:`Scenario` — the
    scenario's phases and overrides are applied on top of ``config``
    (which then acts as the deployment base) by
    :meth:`Scenario.build_config`.
    """

    label: Hashable
    config: CupConfig
    faults: Optional[FaultSpec] = None
    scenario: Optional[Scenario] = None

    def __post_init__(self) -> None:
        if self.faults is not None and self.scenario is not None:
            raise ValueError(
                "a cell takes either a fault schedule or a scenario, "
                "not both (express the faults as a CapacityFault phase)"
            )


def cell_key(cell: Cell) -> tuple:
    """Flat cache key identifying the cell's result across processes."""
    key = _cache_key(cell.config)
    if cell.faults is not None:
        key = key + ("faults",) + cell.faults.key()
    if cell.scenario is not None:
        key = key + ("scenario",) + cell.scenario.key()
    return key


def run_cell(cell: Cell) -> MetricsSummary:
    """Execute one cell from scratch, bypassing every result cache.

    Topology is the exception: churn-free cells lease their built
    overlay from the process-local snapshot cache
    (:mod:`repro.experiments.topology`), so a sweep pays the build and
    the route-memo warm-up once per distinct topology per worker, not
    once per cell.  Cells whose scenario declares a churn or crash
    hazard mutate membership and always build privately.
    """
    if cell.scenario is not None:
        scenario = cell.scenario
        config = scenario.build_config(base=cell.config)
        if scenario.hazards() & {"churn", "crash"}:
            net = CupNetwork(config)
        else:
            net = CupNetwork(config, topology=topology.lease(config))
        scenario.compile_onto(net)
        return net.run()
    if cell.faults is None:
        config = cell.config
        return CupNetwork(config, topology=topology.lease(config)).run()
    spec = cell.faults
    config = cell.config
    net = CupNetwork(config, topology=topology.lease(config))
    schedule = CapacityFaultSchedule(
        net.sim,
        list(net.nodes),
        net.set_node_capacity,
        fraction=spec.fraction,
        reduced=spec.reduced,
        rng=net.streams.get("faults"),
    )
    if spec.configuration == "up-and-down":
        up_and_down(
            schedule,
            start=config.query_start,
            end=config.query_end,
            warmup=spec.warmup,
            down_for=spec.down_for,
            stable_for=spec.stable_for,
        )
    else:
        once_down_always_down(
            schedule, start=config.query_start, warmup=spec.warmup
        )
    return net.run()


# ----------------------------------------------------------------------
# Worker-count configuration
# ----------------------------------------------------------------------

_workers: Optional[int] = None


def configure(workers: Optional[int]) -> None:
    """Set the process-wide default worker count (``None`` re-reads env)."""
    global _workers
    if workers is not None and workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    _workers = workers


def default_workers() -> int:
    """Configured worker count > ``$REPRO_WORKERS`` > 1 (serial)."""
    if _workers is not None:
        return _workers
    try:
        return max(1, int(os.environ.get(WORKERS_ENV, "1")))
    except ValueError:
        return 1


# ----------------------------------------------------------------------
# Supervision policy and reporting
# ----------------------------------------------------------------------


WORKER_FAULT_KINDS = ("sigkill", "hang")


@dataclasses.dataclass(frozen=True)
class WorkerFault:
    """Test-only fault injected into a worker *before* it runs a cell.

    ``sigkill`` makes the worker kill itself with ``SIGKILL`` (the
    process vanishes without cleanup — indistinguishable from the OOM
    killer); ``hang`` makes it sleep forever (indistinguishable from a
    livelocked cell).  The fault fires on the cell's first ``times``
    attempts and then stands down, so retry paths can be exercised
    end-to-end.  Faults ride along with the dispatched task — they are
    not part of the :class:`Cell` and can never leak into cache keys.
    """

    kind: str
    times: int = 1

    def __post_init__(self) -> None:
        if self.kind not in WORKER_FAULT_KINDS:
            raise ValueError(
                f"unknown worker fault kind: {self.kind!r}; choose "
                f"from {WORKER_FAULT_KINDS}"
            )
        if self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")


@dataclasses.dataclass(frozen=True)
class Supervision:
    """Retry/timeout policy for the supervised worker pool.

    ``cell_timeout`` is the per-attempt wall-clock budget (``None``
    disables hang detection); a cell that dies or times out is retried
    up to ``max_retries`` more times, waiting
    ``retry_backoff * 2**(attempt-1)`` seconds before each retry.
    ``poll_interval`` is how often the supervisor wakes when nothing is
    happening.
    """

    cell_timeout: Optional[float] = None
    max_retries: int = 2
    retry_backoff: float = 0.5
    poll_interval: float = 0.02

    def __post_init__(self) -> None:
        if self.cell_timeout is not None and self.cell_timeout <= 0:
            raise ValueError(
                f"cell_timeout must be positive, got {self.cell_timeout}"
            )
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.retry_backoff < 0:
            raise ValueError(
                f"retry_backoff must be >= 0, got {self.retry_backoff}"
            )
        if self.poll_interval <= 0:
            raise ValueError(
                f"poll_interval must be positive, got {self.poll_interval}"
            )


@dataclasses.dataclass
class CellReport:
    """Per-cell accounting from the last :func:`execute` batch.

    ``source`` is where the result came from: ``"memo"`` / ``"disk"``
    (cache hit — zero attempts), ``"run"`` (computed this batch), or
    ``"failed"`` (retries exhausted; ``error`` says why).
    ``wall_seconds`` accumulates across attempts, dead ones included.
    """

    label: Hashable
    source: str
    attempts: int = 0
    wall_seconds: float = 0.0
    error: Optional[str] = None

    @property
    def retries(self) -> int:
        return max(0, self.attempts - 1)


class SweepError(RuntimeError):
    """Some cells failed after exhausting their retries.

    Raised at the *end* of the batch: every other cell has already
    settled and flushed to the caches, so a follow-up run re-runs only
    the failures.  ``failures`` maps label to the failure reason;
    ``results`` holds the summaries of every cell that did succeed.
    """

    def __init__(self, failures, results):
        self.failures = dict(failures)
        self.results = dict(results)
        labels = ", ".join(repr(label) for label in self.failures)
        super().__init__(
            f"{len(self.failures)} cell(s) failed after retries: {labels}"
        )


_supervision: Optional[Supervision] = None


def configure_supervision(supervision: Optional[Supervision]) -> None:
    """Set the process-wide default supervision policy (``None`` resets)."""
    global _supervision
    _supervision = supervision


def default_supervision() -> Supervision:
    return _supervision if _supervision is not None else Supervision()


_last_report: List[CellReport] = []
_session_report: List[CellReport] = []


def last_report() -> List[CellReport]:
    """Per-cell reports from the most recent :func:`execute` batch."""
    return list(_last_report)


def drain_report() -> List[CellReport]:
    """All per-cell reports accumulated since the last drain.

    A sweep harness may issue several :func:`execute` batches; the CLI
    drains once before the sweep (to discard history) and once after
    (to print/export the whole sweep's accounting).
    """
    global _session_report
    report = _session_report
    _session_report = []
    return report


# ----------------------------------------------------------------------
# Batch execution
# ----------------------------------------------------------------------

CellsInput = Union[Iterable[Cell], Mapping[Hashable, CupConfig]]

# ----------------------------------------------------------------------
# Supervised persistent worker pool
# ----------------------------------------------------------------------
#
# A sweep is often submitted as several execute() batches (one per table
# row, or one per harness in a CLI `run all`).  Tearing the pool down
# between batches would discard every worker's warm state — imported
# modules and, above all, the per-process topology snapshot cache — so
# the pool persists across calls and is only rebuilt when the requested
# worker count changes.
#
# The pool is hand-rolled rather than multiprocessing.Pool because Pool
# cannot survive a worker dying mid-task: it respawns the process, but
# the in-flight imap_unordered item never completes and the sweep hangs
# forever.  Here each worker owns a dedicated task pipe and posts
# results on a shared queue, so the supervisor can detect death
# (is_alive) and hangs (wall-clock timeout), replace the worker, and
# retry or fail just that cell.


def _worker_main(tasks, results) -> None:
    """Worker loop: receive ``(token, cell, fault)``, post the outcome.

    Runs in the child process.  A ``None`` task — or the parent closing
    the pipe — is the shutdown signal.  Exceptions from the cell itself
    are posted back as failures (they are deterministic; retrying them
    would find the same bug), so only process death and hangs are
    retried by the supervisor.
    """
    while True:
        try:
            task = tasks.recv()
        except (EOFError, OSError):
            return
        if task is None:
            return
        token, cell, fault = task
        if fault is not None:
            if fault.kind == "sigkill":
                os.kill(os.getpid(), signal.SIGKILL)
            while True:  # hang
                time.sleep(3600.0)
        try:
            summary = run_cell(cell)
        except Exception as exc:
            results.put((token, False, f"{type(exc).__name__}: {exc}"))
        else:
            results.put((token, True, summary))


class _Worker:
    __slots__ = ("process", "conn", "token", "key", "cell", "started")

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn
        self.token: Optional[int] = None  # None = idle
        self.key: Optional[tuple] = None
        self.cell: Optional[Cell] = None
        self.started = 0.0


class _WorkerPool:
    """Fixed-size pool of supervised worker processes."""

    def __init__(self, processes: int):
        self.processes = processes
        self._ctx = multiprocessing.get_context()
        self._results = self._ctx.SimpleQueue()
        # Tokens are unique for the pool's lifetime, so a result posted
        # by a worker we have since given up on (timed out, superseded)
        # can never be mistaken for a live attempt — stale tokens are
        # simply not in the in-flight table and get dropped.
        self._tokens = itertools.count()
        self._workers = [self._spawn() for _ in range(processes)]

    # -- process lifecycle ---------------------------------------------

    def _spawn(self) -> _Worker:
        recv_end, send_end = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_worker_main,
            args=(recv_end, self._results),
            daemon=True,
        )
        process.start()
        recv_end.close()  # child keeps its copy; parent only sends
        return _Worker(process, send_end)

    def _retire(self, worker: _Worker) -> None:
        with contextlib.suppress(OSError):
            worker.conn.close()
        if worker.process.is_alive():
            worker.process.terminate()
        worker.process.join()

    def _replace(self, worker: _Worker) -> None:
        self._retire(worker)
        fresh = self._spawn()
        worker.process = fresh.process
        worker.conn = fresh.conn
        worker.token = None
        worker.key = None
        worker.cell = None

    def shutdown(self) -> None:
        """Terminate AND join every worker — no leaked processes."""
        for worker in self._workers:
            self._retire(worker)
        self._workers = []

    # -- supervised batch ----------------------------------------------

    def run_batch(self, items, supervision, faults, settle):
        """Run ``items`` (``[(key, cell)]``) under supervision.

        ``faults`` maps key to a :class:`WorkerFault`; ``settle(key,
        summary)`` is called as each cell completes.  Returns
        ``(failures, stats)``: key -> reason for cells whose retries
        exhausted, and key -> (attempts, wall_seconds) for every cell.
        """
        ready = deque(items)
        attempts = {key: 0 for key, _ in items}
        wall = {key: 0.0 for key, _ in items}
        # Retry heap entries carry a counter tiebreak: cell keys mix
        # None/str/float and would TypeError under tuple comparison.
        retries: list = []
        tiebreak = itertools.count()
        inflight: Dict[int, _Worker] = {}
        failures: Dict[tuple, str] = {}
        outstanding = len(items)

        while outstanding:
            progressed = False
            now = time.monotonic()

            # Promote retries whose backoff has elapsed.
            while retries and retries[0][0] <= now:
                _, _, key, cell = heapq.heappop(retries)
                ready.append((key, cell))

            # Hand ready cells to idle workers.
            for worker in self._workers:
                if not ready:
                    break
                if worker.token is not None:
                    continue
                key, cell = ready[0]
                token = next(self._tokens)
                fault = faults.get(key)
                if fault is not None and attempts[key] >= fault.times:
                    fault = None  # fault already fired its quota
                try:
                    worker.conn.send((token, cell, fault))
                except (OSError, BrokenPipeError):
                    # Worker died while idle; replace it and re-offer
                    # the cell on the next pass.
                    self._replace(worker)
                    progressed = True
                    continue
                ready.popleft()
                attempts[key] += 1
                worker.token = token
                worker.key = key
                worker.cell = cell
                worker.started = time.monotonic()
                inflight[token] = worker

            # Drain completions.
            while not self._results.empty():
                token, ok, payload = self._results.get()
                worker = inflight.pop(token, None)
                if worker is None:
                    continue  # stale: attempt was superseded
                key = worker.key
                wall[key] += time.monotonic() - worker.started
                worker.token = None
                worker.key = None
                worker.cell = None
                progressed = True
                outstanding -= 1
                if ok:
                    settle(key, payload)
                else:
                    failures[key] = payload

            # Supervise busy workers: death and hangs.
            now = time.monotonic()
            for worker in self._workers:
                if worker.token is None:
                    continue
                died = not worker.process.is_alive()
                timeout = supervision.cell_timeout
                hung = (
                    timeout is not None
                    and now - worker.started > timeout
                )
                if not (died or hung):
                    continue
                progressed = True
                key, cell = worker.key, worker.cell
                wall[key] += now - worker.started
                inflight.pop(worker.token, None)
                if died:
                    reason = (
                        "worker died mid-cell "
                        f"(exitcode {worker.process.exitcode})"
                    )
                else:
                    reason = (
                        f"cell exceeded {timeout:g}s wall-clock timeout"
                    )
                self._replace(worker)
                if attempts[key] > supervision.max_retries:
                    failures[key] = (
                        f"{reason}; retries exhausted after "
                        f"{attempts[key]} attempt(s)"
                    )
                    outstanding -= 1
                else:
                    delay = supervision.retry_backoff * (
                        2 ** (attempts[key] - 1)
                    )
                    heapq.heappush(
                        retries, (now + delay, next(tiebreak), key, cell)
                    )

            if not progressed:
                time.sleep(supervision.poll_interval)

        stats = {key: (attempts[key], wall[key]) for key, _ in items}
        return failures, stats


_pool: Optional[_WorkerPool] = None
_pool_processes = 0


def _get_pool(processes: int) -> _WorkerPool:
    global _pool, _pool_processes
    if _pool is not None and _pool_processes != processes:
        shutdown_pool()
    if _pool is None:
        _pool = _WorkerPool(processes)
        _pool_processes = processes
    return _pool


def shutdown_pool() -> None:
    """Terminate *and join* the persistent worker pool.

    Joining matters: on a KeyboardInterrupt mid-sweep this is what
    guarantees no orphaned workers keep burning CPU after the parent
    returns to the prompt.
    """
    global _pool, _pool_processes
    if _pool is not None:
        _pool.shutdown()
        _pool = None
        _pool_processes = 0


atexit.register(shutdown_pool)


def _normalize(cells: CellsInput) -> List[Cell]:
    if isinstance(cells, Mapping):
        normalized = [
            Cell(label, config) for label, config in cells.items()
        ]
    else:
        normalized = list(cells)
    labels = [cell.label for cell in normalized]
    if len(set(labels)) != len(labels):
        raise ValueError("duplicate cell labels in batch")
    return normalized


def _run_keyed(item: Tuple[tuple, Cell]) -> Tuple[tuple, MetricsSummary]:
    key, cell = item
    return key, run_cell(cell)


def execute(
    cells: CellsInput,
    workers: Optional[int] = None,
    use_cache: bool = True,
    supervision: Optional[Supervision] = None,
    worker_faults: Optional[Mapping[Hashable, WorkerFault]] = None,
) -> Dict[Hashable, MetricsSummary]:
    """Run a batch of cells, returning ``{label: summary}``.

    ``cells`` is a sequence of :class:`Cell` or a ``{label: CupConfig}``
    mapping.  Labels must be unique; cells whose *run key* coincides are
    computed once and share the result object.  The returned dict
    preserves the submission order of its labels.

    ``supervision`` overrides the process default
    (:func:`configure_supervision`); ``worker_faults`` maps labels to
    test-only :class:`WorkerFault` injections.  Each completed cell is
    flushed to the caches immediately; if any cell exhausts its retries
    a :class:`SweepError` carrying the survivors is raised once the
    whole batch has settled.  Per-cell accounting for the batch is
    available afterwards from :func:`last_report`.
    """
    global _last_report
    batch = _normalize(cells)
    keys = {cell.label: cell_key(cell) for cell in batch}
    disk = runcache.active() if use_cache else None
    policy = supervision if supervision is not None else default_supervision()
    faults_by_label = dict(worker_faults or {})
    unknown = set(faults_by_label) - {cell.label for cell in batch}
    if unknown:
        raise ValueError(
            "worker_faults name labels not in the batch: "
            f"{sorted(unknown, key=repr)}"
        )

    resolved: Dict[tuple, MetricsSummary] = {}
    pending: Dict[tuple, Cell] = {}
    sources: Dict[tuple, str] = {}
    for cell in batch:
        key = keys[cell.label]
        if key in resolved or key in pending:
            continue
        if use_cache:
            memo = memo_get(key)
            if memo is not None:
                resolved[key] = memo
                sources[key] = "memo"
                continue
            if disk is not None:
                stored = disk.get(key)
                if stored is not None:
                    resolved[key] = stored
                    memo_put(key, stored)
                    sources[key] = "disk"
                    continue
        pending[key] = cell
        sources[key] = "run"

    failures_by_key: Dict[tuple, str] = {}
    stats: Dict[tuple, Tuple[int, float]] = {}
    if pending:
        count = default_workers() if workers is None else max(1, workers)
        items = list(pending.items())

        def settle(key: tuple, summary: MetricsSummary) -> None:
            # Persist each cell as it completes, not when the batch
            # ends: an interrupted sweep keeps every finished cell.
            resolved[key] = summary
            if use_cache:
                memo_put(key, summary)
                if disk is not None:
                    disk.put(key, summary)

        if count > 1 and len(items) > 1:
            faults_by_key = {
                keys[label]: fault
                for label, fault in faults_by_label.items()
                if keys[label] in pending
            }
            # The persistent pool is sized by the requested worker count
            # (not the batch): a sweep's batches reuse the same workers
            # and their warm topology snapshots.
            pool = _get_pool(count)
            try:
                failures_by_key, stats = pool.run_batch(
                    items, policy, faults_by_key, settle
                )
            except BaseException:
                # A hard abort (KeyboardInterrupt above all) must not
                # leak workers: tear the whole pool down — terminate
                # and join — before propagating.
                shutdown_pool()
                raise
        else:
            for item in items:
                started = time.monotonic()
                settle(*_run_keyed(item))
                stats[item[0]] = (1, time.monotonic() - started)

    report: List[CellReport] = []
    results: Dict[Hashable, MetricsSummary] = {}
    failures: Dict[Hashable, str] = {}
    for cell in batch:
        key = keys[cell.label]
        n, seconds = stats.get(key, (0, 0.0))
        if key in failures_by_key:
            reason = failures_by_key[key]
            failures[cell.label] = reason
            report.append(
                CellReport(cell.label, "failed", n, seconds, reason)
            )
        else:
            results[cell.label] = resolved[key]
            report.append(
                CellReport(cell.label, sources.get(key, "run"), n, seconds)
            )
    _last_report = report
    _session_report.extend(report)
    if failures:
        raise SweepError(failures, results)
    return results
