"""Parallel execution of independent simulation cells.

The paper's figures and tables are sweeps of *independent* cells — one
simulation per (push level, capacity, network size, policy, …) point —
so the sweep is embarrassingly parallel.  Harnesses declare their cells
(:class:`Cell`: a label, a :class:`CupConfig`, and optionally a
declarative §3.7 fault schedule) and submit them in one batch to
:func:`execute`, which:

1. deduplicates cells that resolve to the same run key (shared
   standard-caching twins are computed once, not once per worker);
2. serves whatever it can from the in-process memo and the persistent
   disk cache (:mod:`repro.experiments.runcache`);
3. fans the remaining cells out across a ``multiprocessing`` pool
   (``workers=1`` falls back to a plain serial loop in-process);
4. stores every fresh result back into both cache layers;
5. returns ``{label: MetricsSummary}`` with deterministic content —
   results are keyed, so worker scheduling order can never leak into
   tables.

Worker-count resolution: explicit ``workers=`` argument >
:func:`configure` (the CLI's ``--workers``) > ``$REPRO_WORKERS`` > 1.
"""

from __future__ import annotations

import atexit
import dataclasses
import multiprocessing
import os
from typing import (
    Dict,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro.core.protocol import CupConfig, CupNetwork
from repro.experiments import runcache, topology
from repro.experiments.runner import _cache_key, memo_get, memo_put
from repro.metrics.collector import MetricsSummary
from repro.scenarios.dsl import Scenario
from repro.workload.faults import (
    CapacityFaultSchedule,
    once_down_always_down,
    up_and_down,
)

WORKERS_ENV = "REPRO_WORKERS"

FAULT_CONFIGURATIONS = ("up-and-down", "once-down-always-down")


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """Declarative §3.7 capacity-fault schedule attached to a cell.

    Mirrors the arguments of the capacity harness: ``fraction`` of nodes
    drop to ``reduced`` outgoing capacity after ``warmup`` seconds of
    query traffic — repeatedly (*up-and-down*, alternating ``down_for``
    and ``stable_for``) or permanently (*once-down-always-down*).
    """

    configuration: str
    reduced: float
    fraction: float = 0.2
    warmup: float = 300.0
    down_for: float = 600.0
    stable_for: float = 300.0

    def __post_init__(self) -> None:
        if self.configuration not in FAULT_CONFIGURATIONS:
            raise ValueError(
                f"unknown configuration: {self.configuration!r}; choose "
                f"from {FAULT_CONFIGURATIONS}"
            )

    def key(self) -> tuple:
        return (
            self.configuration, self.reduced, self.fraction,
            self.warmup, self.down_for, self.stable_for,
        )


@dataclasses.dataclass(frozen=True)
class Cell:
    """One independent simulation in a sweep.

    A cell is either a plain config run, a config plus a declarative
    §3.7 fault schedule, or a config plus a :class:`Scenario` — the
    scenario's phases and overrides are applied on top of ``config``
    (which then acts as the deployment base) by
    :meth:`Scenario.build_config`.
    """

    label: Hashable
    config: CupConfig
    faults: Optional[FaultSpec] = None
    scenario: Optional[Scenario] = None

    def __post_init__(self) -> None:
        if self.faults is not None and self.scenario is not None:
            raise ValueError(
                "a cell takes either a fault schedule or a scenario, "
                "not both (express the faults as a CapacityFault phase)"
            )


def cell_key(cell: Cell) -> tuple:
    """Flat cache key identifying the cell's result across processes."""
    key = _cache_key(cell.config)
    if cell.faults is not None:
        key = key + ("faults",) + cell.faults.key()
    if cell.scenario is not None:
        key = key + ("scenario",) + cell.scenario.key()
    return key


def run_cell(cell: Cell) -> MetricsSummary:
    """Execute one cell from scratch, bypassing every result cache.

    Topology is the exception: churn-free cells lease their built
    overlay from the process-local snapshot cache
    (:mod:`repro.experiments.topology`), so a sweep pays the build and
    the route-memo warm-up once per distinct topology per worker, not
    once per cell.  Cells whose scenario declares a churn or crash
    hazard mutate membership and always build privately.
    """
    if cell.scenario is not None:
        scenario = cell.scenario
        config = scenario.build_config(base=cell.config)
        if scenario.hazards() & {"churn", "crash"}:
            net = CupNetwork(config)
        else:
            net = CupNetwork(config, topology=topology.lease(config))
        scenario.compile_onto(net)
        return net.run()
    if cell.faults is None:
        config = cell.config
        return CupNetwork(config, topology=topology.lease(config)).run()
    spec = cell.faults
    config = cell.config
    net = CupNetwork(config, topology=topology.lease(config))
    schedule = CapacityFaultSchedule(
        net.sim,
        list(net.nodes),
        net.set_node_capacity,
        fraction=spec.fraction,
        reduced=spec.reduced,
        rng=net.streams.get("faults"),
    )
    if spec.configuration == "up-and-down":
        up_and_down(
            schedule,
            start=config.query_start,
            end=config.query_end,
            warmup=spec.warmup,
            down_for=spec.down_for,
            stable_for=spec.stable_for,
        )
    else:
        once_down_always_down(
            schedule, start=config.query_start, warmup=spec.warmup
        )
    return net.run()


# ----------------------------------------------------------------------
# Worker-count configuration
# ----------------------------------------------------------------------

_workers: Optional[int] = None


def configure(workers: Optional[int]) -> None:
    """Set the process-wide default worker count (``None`` re-reads env)."""
    global _workers
    if workers is not None and workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    _workers = workers


def default_workers() -> int:
    """Configured worker count > ``$REPRO_WORKERS`` > 1 (serial)."""
    if _workers is not None:
        return _workers
    try:
        return max(1, int(os.environ.get(WORKERS_ENV, "1")))
    except ValueError:
        return 1


# ----------------------------------------------------------------------
# Batch execution
# ----------------------------------------------------------------------

CellsInput = Union[Iterable[Cell], Mapping[Hashable, CupConfig]]

# ----------------------------------------------------------------------
# Persistent worker pool
# ----------------------------------------------------------------------
#
# A sweep is often submitted as several execute() batches (one per table
# row, or one per harness in a CLI `run all`).  Tearing the pool down
# between batches would discard every worker's warm state — imported
# modules and, above all, the per-process topology snapshot cache — so
# the pool persists across calls and is only rebuilt when the requested
# worker count changes.

_pool = None
_pool_processes = 0


def _get_pool(processes: int):
    global _pool, _pool_processes
    if _pool is not None and _pool_processes != processes:
        shutdown_pool()
    if _pool is None:
        _pool = multiprocessing.get_context().Pool(processes=processes)
        _pool_processes = processes
    return _pool


def shutdown_pool() -> None:
    """Terminate the persistent worker pool (tests, process exit)."""
    global _pool, _pool_processes
    if _pool is not None:
        _pool.terminate()
        _pool.join()
        _pool = None
        _pool_processes = 0


atexit.register(shutdown_pool)


def _normalize(cells: CellsInput) -> List[Cell]:
    if isinstance(cells, Mapping):
        normalized = [
            Cell(label, config) for label, config in cells.items()
        ]
    else:
        normalized = list(cells)
    labels = [cell.label for cell in normalized]
    if len(set(labels)) != len(labels):
        raise ValueError("duplicate cell labels in batch")
    return normalized


def _run_keyed(item: Tuple[tuple, Cell]) -> Tuple[tuple, MetricsSummary]:
    key, cell = item
    return key, run_cell(cell)


def execute(
    cells: CellsInput,
    workers: Optional[int] = None,
    use_cache: bool = True,
) -> Dict[Hashable, MetricsSummary]:
    """Run a batch of cells, returning ``{label: summary}``.

    ``cells`` is a sequence of :class:`Cell` or a ``{label: CupConfig}``
    mapping.  Labels must be unique; cells whose *run key* coincides are
    computed once and share the result object.  The returned dict
    preserves the submission order of its labels.
    """
    batch = _normalize(cells)
    keys = {cell.label: cell_key(cell) for cell in batch}
    disk = runcache.active() if use_cache else None

    resolved: Dict[tuple, MetricsSummary] = {}
    pending: Dict[tuple, Cell] = {}
    for cell in batch:
        key = keys[cell.label]
        if key in resolved or key in pending:
            continue
        if use_cache:
            memo = memo_get(key)
            if memo is not None:
                resolved[key] = memo
                continue
            if disk is not None:
                stored = disk.get(key)
                if stored is not None:
                    resolved[key] = stored
                    memo_put(key, stored)
                    continue
        pending[key] = cell

    if pending:
        count = default_workers() if workers is None else max(1, workers)
        items = list(pending.items())

        def settle(key: tuple, summary: MetricsSummary) -> None:
            # Persist each cell as it completes, not when the batch
            # ends: an interrupted sweep keeps every finished cell.
            resolved[key] = summary
            if use_cache:
                memo_put(key, summary)
                if disk is not None:
                    disk.put(key, summary)

        if count > 1 and len(items) > 1:
            # The persistent pool is sized by the requested worker count
            # (not the batch): a sweep's batches reuse the same workers
            # and their warm topology snapshots.
            pool = _get_pool(count)
            for key, summary in pool.imap_unordered(
                _run_keyed, items, chunksize=1
            ):
                settle(key, summary)
        else:
            for item in items:
                settle(*_run_keyed(item))

    return {cell.label: resolved[keys[cell.label]] for cell in batch}
