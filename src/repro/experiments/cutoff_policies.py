"""Table 1: total cost for varying cut-off policies (§3.4).

Compares standard caching, the linear and logarithmic probability-based
policies across α values, the log-based second-chance policy, and the
optimal push level, at query rates λ ∈ {1, 10, 100, 1000}.  Each cell
shows total cost with the value normalized by standard caching in
parentheses — the paper's layout.

Shape claims checked:

* second-chance beats every probability-based policy at every rate;
* second-chance lands near the optimal-push-level total;
* the probability-based policies are α-sensitive at low rates and
  insensitive at high rates;
* all CUP policies converge toward a small fraction of standard caching
  as the rate grows.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.policies import (
    CutoffPolicy,
    LinearPolicy,
    LogarithmicPolicy,
    SecondChancePolicy,
)
from repro.experiments.base import ExperimentResult
from repro.experiments.config import Scale, resolve_scale
from repro.experiments.executor import Cell, execute
from repro.experiments.push_level import default_levels, run_push_level
from repro.metrics.report import Table, format_ratio


def paper_policy_roster() -> List[CutoffPolicy]:
    """The policies of Table 1, in the paper's row order."""
    return [
        LinearPolicy(alpha=0.25),
        LinearPolicy(alpha=0.10),
        LinearPolicy(alpha=0.01),
        LinearPolicy(alpha=0.001),
        LogarithmicPolicy(alpha=0.5),
        LogarithmicPolicy(alpha=0.25),
        LogarithmicPolicy(alpha=0.10),
        LogarithmicPolicy(alpha=0.01),
        SecondChancePolicy(),
    ]


class CutoffPolicyResult(ExperimentResult):
    """Total cost per (policy row, rate column)."""

    def __init__(self, paper_rates: List[float]):
        super().__init__()
        self.paper_rates = paper_rates
        #: row label -> {paper_rate: total_cost}
        self.totals: Dict[str, Dict[float, int]] = {}
        self.row_order: List[str] = []

    def add(self, row: str, paper_rate: float, total: int) -> None:
        if row not in self.totals:
            self.totals[row] = {}
            self.row_order.append(row)
        self.totals[row][paper_rate] = total

    def normalized(self, row: str, paper_rate: float) -> float:
        return (
            self.totals[row][paper_rate]
            / self.totals["standard caching"][paper_rate]
        )

    def format_table(self) -> str:
        headers = ["Policy"] + [
            f"λ={r:g} total (norm)" for r in self.paper_rates
        ]
        table = Table(self.title, headers)
        for row in self.row_order:
            cells: List[object] = [row]
            for rate in self.paper_rates:
                total = self.totals[row].get(rate)
                if total is None:
                    cells.append("-")
                else:
                    baseline = self.totals["standard caching"][rate]
                    cells.append(format_ratio(total, baseline))
            table.add_row(*cells)
        return table.render()


def run_cutoff_policies(
    scale: Optional[Scale] = None,
    paper_rates: Sequence[float] = (1.0, 10.0, 100.0, 1000.0),
    policies: Optional[List[CutoffPolicy]] = None,
    seed: int = 42,
    workers: Optional[int] = None,
) -> CutoffPolicyResult:
    """Reproduce Table 1."""
    scale = scale or resolve_scale()
    base = scale.config(seed=seed)
    rates = [r for r in paper_rates if r <= scale.max_rate]
    policies = policies if policies is not None else paper_policy_roster()
    result = CutoffPolicyResult(rates)
    result.title = (
        f"Table 1: total cost per cut-off policy "
        f"(n={base.num_nodes}, scale={scale.name})"
    )

    # Coarse level grid for the "optimal push level" row (the paper also
    # reports the best level found by sweeping).
    level_grid = default_levels(base.num_nodes)[::2]

    cells = []
    for paper_rate in rates:
        rate = scale.rate(paper_rate)
        cells.append(Cell(
            ("standard caching", paper_rate),
            base.variant(mode="standard", query_rate=rate),
        ))
        cells.extend(
            Cell(
                (policy.name, paper_rate),
                base.variant(policy=policy, query_rate=rate),
            )
            for policy in policies
        )
    summaries = execute(cells, workers=workers)
    # One batch for every rate's level sweep (max-of-cells wall-clock).
    push = run_push_level(
        scale, paper_rates=rates, levels=level_grid, seed=seed,
        workers=workers,
    )

    for paper_rate in rates:
        std = summaries[("standard caching", paper_rate)]
        result.add("standard caching", paper_rate, std.total_cost)
        for policy in policies:
            summary = summaries[(policy.name, paper_rate)]
            result.add(policy.name, paper_rate, summary.total_cost)
        result.add(
            "optimal push level", paper_rate, push.optimal_total(paper_rate)
        )

    second = SecondChancePolicy().name
    for paper_rate in rates:
        prob_rows = [
            p.name for p in policies
            if isinstance(p, (LinearPolicy, LogarithmicPolicy))
        ]
        if prob_rows:
            best_prob = min(
                result.totals[row][paper_rate] for row in prob_rows
            )
            result.expect(
                f"λ={paper_rate:g}: second-chance beats every "
                f"probability-based policy",
                result.totals[second][paper_rate] <= best_prob,
            )
        result.expect(
            f"λ={paper_rate:g}: second-chance within 25% of the optimal "
            f"push level",
            result.totals[second][paper_rate]
            <= 1.25 * result.totals["optimal push level"][paper_rate],
        )
        # Our standard-caching baseline benefits more from intermediate
        # path caching than the paper's (see EXPERIMENTS.md), so at the
        # lowest rate CUP only ties it; at higher rates it must win.
        if paper_rate <= min(rates):
            result.expect(
                f"λ={paper_rate:g}: second-chance within 10% of standard "
                f"caching even at the least favorable rate",
                result.normalized(second, paper_rate) <= 1.10,
            )
        else:
            result.expect(
                f"λ={paper_rate:g}: second-chance beats standard caching",
                result.normalized(second, paper_rate) < 1.0,
            )
    if len(rates) >= 2:
        result.expect(
            "second-chance normalized cost improves (or holds) as the "
            "rate grows",
            result.normalized(second, rates[-1])
            <= result.normalized(second, rates[0]) + 0.05,
        )
    return result
