"""The §3.1 economics, measured: justified-update fractions vs query rate.

The paper's cost model makes three quantified claims that its tables only
exercise implicitly:

1. an update is justified with probability ``1 - e^(-ΛT)``, so the
   justified fraction rises with the query rate;
2. as long as at least half of pushed updates are justified, CUP's
   overhead is completely recovered (each justified hop saves two);
3. the investment return therefore grows with the rate.

This harness sweeps λ under the second-chance policy, reports measured
justified fractions (per-node accounting — a conservative lower bound of
the paper's subtree definition), overhead recovery, and the analytical
probability at the tree root for comparison.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.costmodel import justification_probability
from repro.experiments.base import ExperimentResult, monotone_nondecreasing
from repro.experiments.config import Scale, resolve_scale
from repro.experiments.executor import Cell, execute
from repro.metrics.report import Table


class JustificationResult(ExperimentResult):
    """Measured update economics per query rate."""

    def __init__(self) -> None:
        super().__init__()
        self.rates: List[float] = []
        self.justified_fraction: List[float] = []
        self.analytical_root: List[float] = []
        self.saved_per_overhead: List[float] = []
        self.recovered: List[bool] = []

    def add(self, rate: float, fraction: float, analytical: float,
            saved_ratio: float) -> None:
        self.rates.append(rate)
        self.justified_fraction.append(fraction)
        self.analytical_root.append(analytical)
        self.saved_per_overhead.append(saved_ratio)
        self.recovered.append(fraction >= 0.5)

    def format_table(self) -> str:
        table = Table(
            self.title,
            ["paper-λ", "justified fraction", "analytic P(root)",
             ">=50% (recovered)", "saved/overhead"],
        )
        for i, rate in enumerate(self.rates):
            table.add_row(
                f"{rate:g}",
                f"{self.justified_fraction[i]:.2%}",
                f"{self.analytical_root[i]:.2%}",
                "yes" if self.recovered[i] else "no",
                f"{self.saved_per_overhead[i]:.2f}",
            )
        return table.render()


def run_justification(
    scale: Optional[Scale] = None,
    paper_rates: Sequence[float] = (0.1, 1.0, 10.0, 100.0),
    seed: int = 42,
    workers: Optional[int] = None,
) -> JustificationResult:
    """Measure §3.1's update economics across query rates."""
    scale = scale or resolve_scale()
    rates = [r for r in paper_rates if r <= scale.max_rate]
    result = JustificationResult()
    result.title = (
        f"§3.1 economics: justified updates vs query rate "
        f"(n={scale.num_nodes}, second-chance, scale={scale.name})"
    )
    cells = []
    for paper_rate in rates:
        config = scale.config(seed=seed, query_rate=scale.rate(paper_rate))
        cells.append(Cell(("cup", paper_rate), config))
        cells.append(Cell(
            ("std", paper_rate), config.variant(mode="standard")
        ))
    summaries = execute(cells, workers=workers)
    for paper_rate in rates:
        cup = summaries[("cup", paper_rate)]
        std = summaries[("std", paper_rate)]
        analytical = justification_probability(
            scale.rate(paper_rate), scale.entry_lifetime
        )
        result.add(
            paper_rate,
            cup.justified_fraction,
            analytical,
            cup.saved_miss_ratio(std),
        )

    result.expect(
        "justified fraction rises with the query rate",
        monotone_nondecreasing(result.justified_fraction, slack=0.05),
    )
    result.expect(
        "second-chance keeps propagation above the 50% break-even at "
        "high rates (per-node measure; a lower bound of the paper's "
        "subtree definition)",
        all(f >= 0.5 for f in result.justified_fraction[-2:]),
    )
    result.expect(
        "investment return grows with the rate",
        result.saved_per_overhead[-1] > result.saved_per_overhead[0],
    )
    result.expect(
        "the break-even law holds empirically: clearly above 50% "
        "justified implies overhead recovered (saved/overhead >= 1)",
        all(
            ratio >= 0.9
            for fraction, ratio in zip(
                result.justified_fraction, result.saved_per_overhead
            )
            if fraction >= 0.55
        ),
    )
    result.expect(
        "measured per-node fraction stays below the analytical root "
        "probability (ours is the conservative bound)",
        all(
            measured <= analytic + 0.05
            for measured, analytic in zip(
                result.justified_fraction, result.analytical_root
            )
        ),
    )
    return result
