"""Process-local topology snapshot cache for sweep execution.

A sweep's cells usually differ in protocol knobs (query rate, policy,
capacity) while sharing one overlay topology, yet every
:class:`~repro.core.protocol.CupNetwork` construction used to rebuild
that topology from scratch — at n = 65536 the overlay build alone costs
longer than many cells' steady state, and the lazily filled routing
memos (next-hop, authority) are thrown away with it.

Routing is a pure function of membership: two runs over the same built
overlay object produce byte-identical results (the fast-path property
suite referees the memos against the reference algorithms, and the
snapshot-reuse tests referee whole-run summaries).  So the executor
leases one built overlay per distinct topology from this cache and
passes it to ``CupNetwork(config, topology=...)``; each worker process
then pays the build (and the route-memo warm-up) once per topology
instead of once per cell.

Safety: a leased snapshot must never change membership.  ``CupNetwork``
guards its churn entry points when built from a snapshot, and the
executor only leases for cells whose scenario declares no churn/crash
hazard.  The cache key covers exactly the config fields that shape the
overlay; the root seed participates only when the topology actually
consumes randomness (incremental CAN construction), so e.g. a Chord
sweep over seeds still shares one snapshot.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

from repro.core.protocol import CupConfig, build_overlay
from repro.overlay.base import Overlay

#: Built overlays retained per process.  Snapshots are read-mostly and
#: shared, so the bound is about memory, not correctness; at the default
#: bound even n = 65536 topologies stay in the tens of megabytes.
MAX_SNAPSHOTS = 4

_snapshots: "OrderedDict[tuple, Overlay]" = OrderedDict()
#: (hits, misses) counters, exposed for tests and sweep reports.
stats = {"hits": 0, "misses": 0}


def snapshot_key(config: CupConfig) -> Tuple:
    """The topology identity of ``config``.

    Covers overlay type, size and dimensionality; the seed joins the key
    only for the incremental (non-power-of-two) CAN construction, the
    one build path that draws from the topology random stream.
    """
    if config.overlay_type == "can":
        n = config.num_nodes
        if n & (n - 1) == 0:
            return ("can-grid", n, config.can_dims)
        return ("can-random", n, config.can_dims, config.seed)
    return (config.overlay_type, config.num_nodes)


def lease(config: CupConfig) -> Overlay:
    """A built overlay for ``config`` — cached, or built and cached.

    The returned object may be shared with other networks in this
    process; it must not undergo membership changes (CupNetwork enforces
    this when given a ``topology=``).
    """
    key = snapshot_key(config)
    overlay = _snapshots.get(key)
    if overlay is not None:
        _snapshots.move_to_end(key)
        stats["hits"] += 1
        return overlay
    stats["misses"] += 1
    overlay = build_overlay(config)
    _snapshots[key] = overlay
    while len(_snapshots) > MAX_SNAPSHOTS:
        _snapshots.popitem(last=False)
    return overlay


def leased(config: CupConfig) -> Optional[Overlay]:
    """The cached snapshot for ``config`` without building on a miss."""
    return _snapshots.get(snapshot_key(config))


def clear() -> None:
    """Drop every snapshot (tests; memory pressure)."""
    _snapshots.clear()
    stats["hits"] = 0
    stats["misses"] = 0
