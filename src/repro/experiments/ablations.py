"""Ablation experiments: isolating CUP's design choices.

The paper motivates several mechanisms qualitatively; these harnesses
measure each one's contribution separately:

* **Coalescing** (§1, §4 "open connection problem") — standard caching
  vs. standard + CUP's query coalescing vs. full CUP: how much of the
  win is bursts collapsing, how much is update propagation?
* **Overlay substrate** (§2.2) — CUP over CAN vs. over Chord: the
  protocol is substrate-agnostic; gains should appear on both, with
  absolute costs scaled by the substrates' route lengths.
* **Capacity mechanism** (§2.8 vs §3.7) — probabilistic fractional
  forwarding vs. the rate-limited pump with priority reordering: the
  pump defers updates instead of dropping them.
* **Key-popularity skew** — uniform vs. Zipf multi-key workloads at the
  same aggregate rate.  Per-key CUP trees are independent, so the
  *relative* CUP-vs-standard economics turn out skew-insensitive, while
  absolute traffic shrinks with skew for both protocols (hot keys are
  served from caches; cold keys are cut off cheaply).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.base import ExperimentResult
from repro.experiments.config import Scale, resolve_scale
from repro.experiments.executor import execute
from repro.metrics.collector import MetricsSummary
from repro.metrics.report import Table


class AblationResult(ExperimentResult):
    """Generic labelled-row result for ablation tables."""

    def __init__(self, title: str, headers: List[str]):
        super().__init__()
        self.title = title
        self.headers = headers
        self.rows: List[List[object]] = []

    def add_row(self, *cells: object) -> None:
        self.rows.append(list(cells))

    def format_table(self) -> str:
        table = Table(self.title, self.headers)
        for row in self.rows:
            table.add_row(*row)
        return table.render()


def run_coalescing_ablation(
    scale: Optional[Scale] = None, paper_rate: float = 10.0, seed: int = 42,
    workers: Optional[int] = None,
) -> AblationResult:
    """Standard vs standard+coalescing vs CUP at one operating point."""
    scale = scale or resolve_scale()
    base = scale.config(seed=seed, query_rate=scale.rate(paper_rate))
    result = AblationResult(
        f"Ablation: query coalescing (n={base.num_nodes}, "
        f"paper-λ={paper_rate:g}, scale={scale.name})",
        ["variant", "miss cost", "overhead", "total", "misses",
         "coalesced"],
    )
    variants = {
        "standard (open connections)": base.variant(mode="standard"),
        "standard + coalescing": base.variant(mode="standard-coalescing"),
        "full CUP (second-chance)": base,
    }
    summaries: Dict[str, MetricsSummary] = execute(variants, workers=workers)
    for label, summary in summaries.items():
        result.add_row(
            label, summary.miss_cost, summary.overhead_cost,
            summary.total_cost, summary.misses, summary.coalesced_queries,
        )
    std = summaries["standard (open connections)"]
    coal = summaries["standard + coalescing"]
    cup = summaries["full CUP (second-chance)"]
    result.expect(
        "coalescing alone never exceeds plain standard caching",
        coal.total_cost <= std.total_cost * 1.02,
    )
    result.expect(
        "update propagation adds savings beyond coalescing",
        cup.miss_cost < coal.miss_cost,
    )
    result.expect(
        "coalescing happens only in coalescing variants",
        std.coalesced_queries == 0 and cup.coalesced_queries >= 0,
    )
    return result


def run_overlay_ablation(
    scale: Optional[Scale] = None, paper_rate: float = 1.0, seed: int = 42,
    workers: Optional[int] = None,
) -> AblationResult:
    """CUP over CAN vs over Chord: substrate-agnosticism check."""
    scale = scale or resolve_scale()
    base = scale.config(seed=seed, query_rate=scale.rate(paper_rate))
    result = AblationResult(
        f"Ablation: overlay substrate (n={base.num_nodes}, "
        f"paper-λ={paper_rate:g}, scale={scale.name})",
        ["overlay", "CUP miss", "STD miss", "miss ratio",
         "CUP latency", "STD latency"],
    )
    overlays = ("can", "chord", "pastry")
    cells = {}
    for overlay in overlays:
        cells[("cup", overlay)] = base.variant(overlay_type=overlay)
        cells[("std", overlay)] = base.variant(
            overlay_type=overlay, mode="standard"
        )
    summaries = execute(cells, workers=workers)
    ratios = {}
    for overlay in overlays:
        cup = summaries[("cup", overlay)]
        std = summaries[("std", overlay)]
        ratio = cup.miss_cost / max(std.miss_cost, 1)
        ratios[overlay] = ratio
        result.add_row(
            overlay, cup.miss_cost, std.miss_cost, f"{ratio:.2f}",
            f"{cup.miss_latency:.2f}", f"{std.miss_latency:.2f}",
        )
        result.expect(
            f"CUP reduces miss cost over {overlay}", ratio < 1.0
        )
    return result


def run_capacity_mechanism_ablation(
    scale: Optional[Scale] = None, paper_rate: float = 10.0, seed: int = 42,
    workers: Optional[int] = None,
) -> AblationResult:
    """Fractional forwarding (§3.7) vs the rate pump (§2.8)."""
    scale = scale or resolve_scale()
    base = scale.config(seed=seed, query_rate=scale.rate(paper_rate))
    summaries = execute({
        "full": base,
        # A rate low enough to bite: roughly one update per entry
        # lifetime per channel at the subscribed-tree sizes these runs
        # produce.
        "rate": base.variant(capacity_rate=2.0),
        "fractional": base.variant(capacity_fraction=0.5),
    }, workers=workers)
    full = summaries["full"]
    rate_limited = summaries["rate"]
    fractional = summaries["fractional"]
    result = AblationResult(
        f"Ablation: capacity mechanism (n={base.num_nodes}, "
        f"paper-λ={paper_rate:g}, scale={scale.name})",
        ["variant", "miss cost", "overhead", "total", "suppressed"],
    )
    for label, summary in [
        ("unlimited capacity", full),
        ("rate pump, 2 updates/s/node", rate_limited),
        ("fractional forwarding, c=0.5", fractional),
    ]:
        result.add_row(
            label, summary.miss_cost, summary.overhead_cost,
            summary.total_cost, summary.updates_suppressed,
        )
    result.expect(
        "limiting capacity cannot reduce miss cost",
        min(rate_limited.miss_cost, fractional.miss_cost)
        >= full.miss_cost * 0.95,
    )
    result.expect(
        "fractional forwarding drops updates (suppression counted)",
        fractional.updates_suppressed > 0,
    )
    result.expect(
        "the rate pump defers instead of dropping (no suppression)",
        rate_limited.updates_suppressed == 0,
    )
    return result


def run_aggregation_ablation(
    scale: Optional[Scale] = None,
    paper_rate: float = 1.0,
    replicas: int = 10,
    seed: int = 42,
    workers: Optional[int] = None,
) -> AblationResult:
    """§3.6's authority-side overhead-reduction techniques.

    With many replicas per key, per-replica refresh propagation dominates
    CUP's total cost (Table 3).  The paper proposes two mitigations the
    authority can apply: propagate only a *sample* of refreshes, or
    *aggregate* refreshes arriving within a threshold window into one
    batched update.  This harness sweeps both at a high replica count.
    """
    scale = scale or resolve_scale()
    lifetime = scale.entry_lifetime
    base = scale.config(
        seed=seed, query_rate=scale.rate(paper_rate),
        replicas_per_key=replicas,
    )
    result = AblationResult(
        f"Ablation: refresh aggregation & sampling "
        f"({replicas} replicas/key, n={base.num_nodes}, "
        f"paper-λ={paper_rate:g}, scale={scale.name})",
        ["variant", "miss cost", "overhead", "total", "misses"],
    )
    variants = [
        ("no mitigation", base),
        (
            f"aggregate, window L/16 ({lifetime / 16:g}s)",
            base.variant(refresh_aggregation_window=lifetime / 16),
        ),
        (
            f"aggregate, window L/4 ({lifetime / 4:g}s)",
            base.variant(refresh_aggregation_window=lifetime / 4),
        ),
        ("sample 50% of refreshes",
         base.variant(refresh_sample_fraction=0.5)),
        ("sample 20% of refreshes",
         base.variant(refresh_sample_fraction=0.2)),
    ]
    summaries: Dict[str, MetricsSummary] = execute(
        dict(variants), workers=workers
    )
    for label, summary in summaries.items():
        result.add_row(
            label, summary.miss_cost, summary.overhead_cost,
            summary.total_cost, summary.misses,
        )
    plain = summaries["no mitigation"]
    wide = summaries[f"aggregate, window L/4 ({lifetime / 4:g}s)"]
    narrow = summaries[f"aggregate, window L/16 ({lifetime / 16:g}s)"]
    sampled = summaries["sample 20% of refreshes"]
    result.expect(
        "aggregation reduces update overhead",
        wide.overhead_cost < plain.overhead_cost,
    )
    result.expect(
        "a wider window reduces overhead more",
        wide.overhead_cost <= narrow.overhead_cost,
    )
    result.expect(
        "sampling reduces update overhead",
        sampled.overhead_cost < plain.overhead_cost,
    )
    result.expect(
        "mitigations keep total cost at or below the unmitigated run",
        min(wide.total_cost, sampled.total_cost) <= plain.total_cost,
    )
    return result


def run_zipf_ablation(
    scale: Optional[Scale] = None,
    paper_rate: float = 10.0,
    total_keys: int = 16,
    exponents: Sequence[float] = (0.0, 0.8, 1.4),
    seed: int = 42,
    workers: Optional[int] = None,
) -> AblationResult:
    """CUP-vs-standard economics under key-popularity skew.

    Finding (stated as checked expectations): absolute traffic shrinks
    with skew for *both* protocols — hot keys are answered from warm
    caches, cold keys are cut off after two idle intervals — while the
    CUP/standard cost ratio stays roughly constant, because per-key CUP
    trees are independent and the ratio is set by per-tree economics,
    not by how queries are apportioned across trees.
    """
    scale = scale or resolve_scale()
    base = scale.config(
        seed=seed, query_rate=scale.rate(paper_rate), total_keys=total_keys
    )
    result = AblationResult(
        f"Ablation: key-popularity skew ({total_keys} keys, "
        f"n={base.num_nodes}, paper-λ={paper_rate:g}, scale={scale.name})",
        ["Zipf s", "CUP total", "STD total", "total ratio", "miss ratio"],
    )
    cells = {}
    for s in exponents:
        distribution = "uniform" if s == 0.0 else "zipf"
        cells[("cup", s)] = base.variant(
            key_distribution=distribution, zipf_s=s
        )
        cells[("std", s)] = base.variant(
            key_distribution=distribution, zipf_s=s, mode="standard"
        )
    summaries = execute(cells, workers=workers)
    ratios = []
    cup_totals = []
    std_totals = []
    for s in exponents:
        cup = summaries[("cup", s)]
        std = summaries[("std", s)]
        total_ratio = cup.total_cost / max(std.total_cost, 1)
        miss_ratio = cup.miss_cost / max(std.miss_cost, 1)
        ratios.append(total_ratio)
        cup_totals.append(cup.total_cost)
        std_totals.append(std.total_cost)
        result.add_row(
            f"{s:g}", cup.total_cost, std.total_cost,
            f"{total_ratio:.2f}", f"{miss_ratio:.2f}",
        )
    result.expect(
        "skew reduces absolute CUP traffic (hot keys cached, cold keys "
        "cut off)",
        cup_totals[-1] < cup_totals[0],
    )
    result.expect(
        "skew reduces absolute standard-caching traffic too",
        std_totals[-1] < std_totals[0],
    )
    result.expect(
        "the CUP/standard cost ratio is roughly skew-insensitive "
        "(per-key trees are independent)",
        abs(ratios[-1] - ratios[0]) <= 0.10,
    )
    return result
