"""Shared execution helpers for the experiment harnesses.

Runs are deterministic functions of their :class:`CupConfig`, so results
are cached at two layers: a per-process memo (several experiments share
their standard-caching baselines — e.g. Table 1 normalizes every policy
row by the same baseline run — and the benchmark suite re-invokes
harnesses) and the persistent on-disk cache of
:mod:`repro.experiments.runcache`, which survives across processes and
is shared with the parallel executor.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.policies import CutoffPolicy
from repro.core.protocol import CupConfig
from repro.metrics.collector import MetricsSummary

_CACHE: Dict[tuple, MetricsSummary] = {}


def _cache_key(config: CupConfig) -> tuple:
    policy = config.policy
    policy_key = policy.name if isinstance(policy, CutoffPolicy) else policy
    return (
        config.num_nodes, config.overlay_type, config.can_dims,
        config.link_delay, config.link_delay_jitter,
        config.mode, policy_key, config.replica_independent_cutoff,
        config.track_justification,
        config.capacity_fraction, config.capacity_rate, config.pfu_timeout,
        config.refresh_aggregation_window, config.refresh_sample_fraction,
        config.priority_profile,
        config.resolved_total_keys(), config.replicas_per_key,
        config.entry_lifetime, config.stagger_replicas,
        config.query_rate, config.key_distribution, config.zipf_s,
        config.query_start, config.query_duration, config.drain,
        config.seed, config.gc_interval, config.failure_sweep_interval,
    )


def memo_get(key: tuple) -> Optional[MetricsSummary]:
    """In-process memo lookup (the executor shares this layer)."""
    return _CACHE.get(key)


def memo_put(key: tuple, summary: MetricsSummary) -> None:
    """Record a finished run in the in-process memo."""
    _CACHE[key] = summary


def run_config(config: CupConfig, use_cache: bool = True) -> MetricsSummary:
    """Build the network for ``config``, run it, return the summary.

    Lookup order: per-process memo, then the persistent disk cache (when
    one is active), then an actual simulation run — whose result feeds
    both layers.  A single-cell batch through the executor: one code
    path owns the cache layering.
    """
    from repro.experiments.executor import Cell, execute

    return execute([Cell("run", config)], use_cache=use_cache)["run"]


def run_pair(config: CupConfig) -> Tuple[MetricsSummary, MetricsSummary]:
    """Run ``config`` and its standard-caching twin on the same workload.

    The twin differs only in ``mode`` — seeds and therefore the full
    arrival/key/node sequence are identical, which is what makes the
    paper's normalized comparisons meaningful.

    Both cells go through the executor as one batch, so with workers
    configured they run concurrently, and the twin — which many
    experiments share — is deduplicated against every cache layer
    rather than recomputed per call (or per worker).
    """
    from repro.experiments.executor import Cell, execute

    results = execute([
        Cell("cup", config),
        Cell("std", config.variant(mode="standard")),
    ])
    return results["cup"], results["std"]


def clear_cache() -> None:
    """Forget memoized runs (tests use this to force re-execution)."""
    _CACHE.clear()
