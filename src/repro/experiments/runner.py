"""Shared execution helpers for the experiment harnesses.

Runs are deterministic functions of their :class:`CupConfig`, so results
are memoized per process: several experiments share their
standard-caching baselines (e.g. Table 1 normalizes every policy row by
the same baseline run), and the benchmark suite re-invokes harnesses.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.policies import CutoffPolicy
from repro.core.protocol import CupConfig, CupNetwork
from repro.metrics.collector import MetricsSummary

_CACHE: Dict[tuple, MetricsSummary] = {}


def _cache_key(config: CupConfig) -> tuple:
    policy = config.policy
    policy_key = policy.name if isinstance(policy, CutoffPolicy) else policy
    return (
        config.num_nodes, config.overlay_type, config.can_dims,
        config.link_delay, config.link_delay_jitter,
        config.mode, policy_key, config.replica_independent_cutoff,
        config.capacity_fraction, config.capacity_rate, config.pfu_timeout,
        config.refresh_aggregation_window, config.refresh_sample_fraction,
        config.resolved_total_keys(), config.replicas_per_key,
        config.entry_lifetime, config.stagger_replicas,
        config.query_rate, config.key_distribution, config.zipf_s,
        config.query_start, config.query_duration, config.drain,
        config.seed, config.gc_interval, config.failure_sweep_interval,
    )


def run_config(config: CupConfig, use_cache: bool = True) -> MetricsSummary:
    """Build the network for ``config``, run it, return the summary."""
    key = _cache_key(config)
    if use_cache:
        cached = _CACHE.get(key)
        if cached is not None:
            return cached
    summary = CupNetwork(config).run()
    if use_cache:
        _CACHE[key] = summary
    return summary


def run_pair(config: CupConfig) -> Tuple[MetricsSummary, MetricsSummary]:
    """Run ``config`` and its standard-caching twin on the same workload.

    The twin differs only in ``mode`` — seeds and therefore the full
    arrival/key/node sequence are identical, which is what makes the
    paper's normalized comparisons meaningful.
    """
    cup = run_config(config)
    std = run_config(config.variant(mode="standard"))
    return cup, std


def clear_cache() -> None:
    """Forget memoized runs (tests use this to force re-execution)."""
    _CACHE.clear()
